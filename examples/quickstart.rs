//! Quickstart: a 13-broker overlay (the paper's Fig. 7 tree), one
//! subscription, one event — showing summary propagation, BROCLI event
//! routing and two-tier delivery.
//!
//! Run with: `cargo run --example quickstart`

use subsum::broker::SummaryPubSub;
use subsum::net::Topology;
use subsum::types::{stock_schema, Event, NumOp, StrOp, Subscription};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The exact 13-broker tree from the paper's worked example (§4.2).
    let topology = Topology::fig7_tree();
    let schema = stock_schema();
    let mut system = SummaryPubSub::new(topology, schema.clone(), 1000)?;

    // A consumer at broker 4 (paper's broker 5's neighbor) wants OTE
    // trades in a tight price band — the paper's Fig. 3 subscription.
    let sub = Subscription::builder(&schema)
        .str_pattern("exchange", "N*SE")?
        .str_op("symbol", StrOp::Eq, "OTE")?
        .num("price", NumOp::Lt, 8.70)?
        .num("price", NumOp::Gt, 8.30)?
        .build()?;
    let id = system.subscribe(3, &sub)?;
    println!("subscribed {id} at broker 3: {sub}");

    // Propagate subscription summaries (Algorithm 2).
    let outcome = system.propagate()?;
    println!(
        "propagation: {} hops, {} bytes",
        outcome.hops(),
        outcome.metrics.payload_bytes
    );
    for send in &outcome.sends {
        println!(
            "  iteration {}: broker {} -> broker {} ({} bytes)",
            send.iteration, send.from, send.to, send.bytes
        );
    }

    // A producer at broker 0 publishes the paper's Fig. 2 event.
    let event = Event::builder(&schema)
        .str("exchange", "NYSE")?
        .str("symbol", "OTE")?
        .date("when", 1_057_055_125)?
        .num("price", 8.40)?
        .int("volume", 132_700)?
        .num("high", 8.80)?
        .num("low", 8.22)?
        .build();
    let out = system.publish(0, &event);

    println!("event routed via brokers {:?}", out.routing.visits);
    println!(
        "hops: {} forwards + {} notifications",
        out.routing.forward_hops, out.routing.notify_hops
    );
    for d in &out.deliveries {
        println!("delivered to subscription {} at broker {}", d.id, d.owner);
    }
    assert_eq!(out.deliveries.len(), 1, "exactly our subscription matches");
    Ok(())
}
