//! A query console: subscriptions written in the textual query language,
//! matched live against a simulated market feed.
//!
//! Run with a query:
//!
//! ```text
//! cargo run --example query_console -- 'symbol = "OTE" && price < 9.0'
//! ```
//!
//! or without arguments to use a set of demo queries.

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum::broker::SummaryPubSub;
use subsum::net::Topology;
use subsum::types::Subscription;
use subsum::workload::StockFeed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut feed = StockFeed::new();
    let schema = feed.schema().clone();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries: Vec<String> = if args.is_empty() {
        [
            r#"symbol = "OTE" && price < 9.0"#,
            r#"exchange ~ "N*SE" && volume > 250000"#,
            r#"symbol prefix "I" && price > 10.0"#,
            r#"high >= 20.0 and low <= 19.0"#,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        args
    };

    let mut system = SummaryPubSub::new(Topology::cable_wireless_24(), schema.clone(), 1000)?;
    let mut registered = Vec::new();
    for (k, q) in queries.iter().enumerate() {
        match Subscription::parse_query(&schema, q) {
            Ok(sub) => {
                let broker = (k % 24) as u16;
                let id = system.subscribe(broker, &sub)?;
                println!("[{id}] @broker {broker}: {q}");
                registered.push((id, q.clone()));
            }
            Err(e) => {
                eprintln!("rejected `{q}`: {e}");
            }
        }
    }
    if registered.is_empty() {
        return Err("no valid queries".into());
    }
    system.propagate()?;

    println!("\n--- feed ---");
    let mut rng = StdRng::seed_from_u64(7);
    let mut hits = 0;
    for k in 0..300 {
        let quote = feed.quote(&mut rng);
        let out = system.publish((k % 24) as u16, &quote);
        for d in &out.deliveries {
            let q = &registered.iter().find(|(id, _)| *id == d.id).unwrap().1;
            println!("match [{}] {quote}\n      by: {q}", d.id);
            hits += 1;
        }
    }
    println!("--- {hits} matches over 300 quotes ---");
    Ok(())
}
