//! A live stock-ticker scenario on the threaded broker runtime: 24
//! brokers (one per backbone PoP), traders subscribing price bands, a
//! market feed publishing quotes — the workload the paper's introduction
//! motivates.
//!
//! Run with: `cargo run --example stock_ticker`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use subsum::broker::runtime::BrokerNetwork;
use subsum::net::Topology;
use subsum::workload::StockFeed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = Topology::cable_wireless_24();
    let mut feed = StockFeed::new();
    let schema = feed.schema().clone();
    let net = BrokerNetwork::start(topology, schema, 10_000)?;
    let mut rng = StdRng::seed_from_u64(42);

    // 120 traders, five per broker, each with a symbol + price-band
    // subscription.
    let mut subscriptions = 0;
    for broker in 0..24u16 {
        for _ in 0..5 {
            let sub = feed.trader_subscription(&mut rng);
            net.subscribe(broker, &sub)?;
            subscriptions += 1;
        }
    }
    println!("registered {subscriptions} trader subscriptions");

    // One propagation period: brokers exchange subscription summaries.
    let stats = net.propagate();
    println!(
        "summary propagation: {} hops, {} bytes (vs {} bytes of raw subscriptions)",
        stats.hops,
        stats.bytes,
        subscriptions * 50 * 23 // naive broadcast estimate
    );

    // The market opens: 200 quotes from random exchange gateways.
    let mut total_deliveries = 0;
    let mut matched_quotes = 0;
    for _ in 0..200 {
        let quote = feed.quote(&mut rng);
        let gateway = rng.gen_range(0..24u16);
        let deliveries = net.publish(gateway, &quote);
        if !deliveries.is_empty() {
            matched_quotes += 1;
            total_deliveries += deliveries.len();
        }
    }
    println!("published 200 quotes: {matched_quotes} matched, {total_deliveries} deliveries");
    assert!(
        total_deliveries > 0,
        "a realistic feed must trigger traders"
    );

    net.shutdown();
    Ok(())
}
