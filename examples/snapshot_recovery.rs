//! Crash-recovery demo: persist the broker state to disk, "restart", and
//! continue serving the same subscriptions.
//!
//! Run with: `cargo run --example snapshot_recovery`

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum::broker::SummaryPubSub;
use subsum::net::Topology;
use subsum::workload::StockFeed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut feed = StockFeed::new();
    let schema = feed.schema().clone();
    let mut rng = StdRng::seed_from_u64(11);

    // A running deployment with live subscriptions.
    let mut system = SummaryPubSub::new(Topology::cable_wireless_24(), schema.clone(), 1000)?;
    for b in 0..24u16 {
        for _ in 0..3 {
            system.subscribe(b, &feed.trader_subscription(&mut rng))?;
        }
    }
    system.propagate()?;
    println!("running: {} subscriptions", system.subscription_count());

    // Persist the durable state.
    let path = std::env::temp_dir().join("subsum_snapshot.bin");
    let snapshot = system.to_snapshot();
    std::fs::write(&path, &snapshot)?;
    println!("snapshot: {} bytes -> {}", snapshot.len(), path.display());

    // "Crash" — drop the system — then restore and re-propagate.
    drop(system);
    let bytes = std::fs::read(&path)?;
    let mut restored = SummaryPubSub::from_snapshot(&bytes)?;
    restored.propagate()?;
    println!("restored: {} subscriptions", restored.subscription_count());

    // Service continues: quotes keep matching the persisted traders.
    let mut deliveries = 0;
    for k in 0..100 {
        let quote = feed.quote(&mut rng);
        deliveries += restored.publish((k % 24) as u16, &quote).deliveries.len();
    }
    println!("post-recovery: {deliveries} deliveries over 100 quotes");
    assert!(deliveries > 0);
    std::fs::remove_file(&path).ok();
    Ok(())
}
