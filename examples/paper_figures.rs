//! Regenerates a reduced version of every figure in the paper's
//! evaluation (§5) and prints the tables — the same engine the full
//! benchmark harness drives, at example-friendly sizes.
//!
//! Run with: `cargo run --release --example paper_figures`

use subsum::experiments::{run_all, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::fast();
    println!(
        "overlay: {} brokers, {} links, max degree {}\n",
        cfg.topology.len(),
        cfg.topology.edge_count(),
        cfg.topology.max_degree()
    );
    for table in run_all(&cfg) {
        println!("{table}");
    }
    println!("full-size runs: cargo run --release -p subsum-experiments --bin repro -- all");
}
