//! A news-alert scenario showcasing the string-pattern machinery: SACS
//! covering (`m*t` standing in for `microsoft`), generalization-induced
//! false positives, and the home broker's exact verification filtering
//! them out before any consumer is notified.
//!
//! Run with: `cargo run --example news_alerts`

use subsum::broker::SummaryPubSub;
use subsum::core::SummaryStats;
use subsum::net::Topology;
use subsum::types::{AttrKind, Event, Schema, StrOp, Subscription};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::builder()
        .attr("topic", AttrKind::String)?
        .attr("source", AttrKind::String)?
        .attr("headline", AttrKind::String)?
        .build();
    let mut system = SummaryPubSub::new(Topology::fig7_tree(), schema.clone(), 100)?;

    // Broker 2 hosts three tech watchers.
    let exact_ms = Subscription::builder(&schema)
        .str_op("topic", StrOp::Eq, "microsoft")?
        .build()?;
    let exact_mn = Subscription::builder(&schema)
        .str_op("topic", StrOp::Eq, "micronet")?
        .build()?;
    let glob = Subscription::builder(&schema)
        .str_pattern("topic", "m*t")?
        .build()?;
    let id_ms = system.subscribe(2, &exact_ms)?;
    let id_mn = system.subscribe(2, &exact_mn)?;
    let id_glob = system.subscribe(2, &glob)?;

    // Broker 9 watches anything from wire services (prefix) about
    // markets (containment).
    let wires = Subscription::builder(&schema)
        .str_op("source", StrOp::Prefix, "reuters")?
        .str_op("headline", StrOp::Contains, "market")?
        .build()?;
    let id_wires = system.subscribe(9, &wires)?;

    let outcome = system.propagate()?;
    println!("propagation: {} hops", outcome.hops());

    // The glob `m*t` covers both exact topics: broker 2's SACS for
    // `topic` collapses to a single generalized row.
    let own = &outcome.stored[2].summary;
    let stats = SummaryStats::of(own);
    println!(
        "broker 2 summary: {} string rows for {} subscriptions",
        stats.pattern_rows,
        own.subscription_count()
    );

    // Publish: a microsoft story — all three watchers at broker 2 match.
    let story = Event::builder(&schema)
        .str("topic", "microsoft")?
        .str("source", "reuters-europe")?
        .str("headline", "market reacts to earnings")?
        .build();
    let out = system.publish(12, &story);
    let mut ids: Vec<_> = out.deliveries.iter().map(|d| d.id).collect();
    ids.sort();
    println!("microsoft story delivered to {ids:?}");
    assert_eq!(ids, {
        let mut v = vec![id_ms, id_glob, id_wires];
        v.sort();
        v
    });

    // Publish: a "mattel" story — the generalized row `m*t` flags all
    // three candidates at remote brokers, but broker 2's exact store
    // rejects the two equality watchers (false positives).
    let story = Event::builder(&schema).str("topic", "mat")?.build();
    let out = system.publish(12, &story);
    let delivered: Vec<_> = out.deliveries.iter().map(|d| d.id).collect();
    println!(
        "'mat' story: delivered {:?}, filtered {} false positives",
        delivered,
        out.false_positives.len()
    );
    assert_eq!(delivered, vec![id_glob]);
    assert!(out.false_positives.contains(&id_ms));
    assert!(out.false_positives.contains(&id_mn));
    let _ = id_mn;
    Ok(())
}
