//! # subsum — subscription summarization for publish/subscribe systems
//!
//! A from-scratch Rust implementation of Triantafillou & Economides,
//! *Subscription Summarization: A New Paradigm for Efficient
//! Publish/Subscribe Systems* (ICDCS 2004), together with the substrates
//! its evaluation depends on. This facade crate re-exports the workspace:
//!
//! * [`types`] — events, subscriptions, glob patterns with covering,
//!   interval algebra, bit-packed subscription ids;
//! * [`core`] — the AACS/SACS summary structures, the Algorithm 1
//!   matcher, merging, the size model and wire codec;
//! * [`net`] — broker overlay topologies and traffic metering;
//! * [`broker`] — Algorithm 2 summary propagation, Algorithm 3 event
//!   routing, the end-to-end [`SummaryPubSub`] system and a threaded
//!   [`runtime::BrokerNetwork`](broker::runtime::BrokerNetwork);
//! * [`siena`] — the reconstructed Siena-style and broadcast baselines;
//! * [`workload`] — Table 2 workload generators, popularity workloads and
//!   a stock feed;
//! * [`experiments`] — regeneration of every figure in the paper's §5;
//! * [`telemetry`] — pipeline-stage tracing, latency histograms and
//!   exportable run reports across the broker stack.
//!
//! # Quickstart
//!
//! ```
//! use subsum::broker::SummaryPubSub;
//! use subsum::net::Topology;
//! use subsum::types::{stock_schema, Subscription, Event, NumOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut system = SummaryPubSub::new(
//!     Topology::cable_wireless_24(), stock_schema(), 1000)?;
//! let schema = system.schema().clone();
//!
//! let sub = Subscription::builder(&schema)
//!     .num("price", NumOp::Lt, 9.0)?
//!     .build()?;
//! let id = system.subscribe(7, &sub)?;
//! system.propagate()?;
//!
//! let event = Event::builder(&schema).num("price", 8.4)?.build();
//! let out = system.publish(0, &event);
//! assert_eq!(out.deliveries[0].id, id);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use subsum_broker as broker;
pub use subsum_core as core;
pub use subsum_experiments as experiments;
pub use subsum_net as net;
pub use subsum_siena as siena;
pub use subsum_telemetry as telemetry;
pub use subsum_types as types;
pub use subsum_workload as workload;

pub use subsum_broker::SummaryPubSub;
