//! Broker overlay topologies.
//!
//! The paper's experiments run on "a number of real and artificial
//! topologies", reporting results for an overlay like the 24-node backbone
//! of Cable & Wireless plc (§5.2 "Tested Topologies"). This module
//! provides:
//!
//! * [`Topology::cable_wireless_24`] — a representative 24-node ISP
//!   backbone model (the original C&W map is no longer published; see
//!   DESIGN.md for the substitution rationale);
//! * [`Topology::fig7_tree`] — the exact 13-broker tree of the paper's
//!   Fig. 7 worked example;
//! * artificial families: lines, rings, stars, balanced trees, grids,
//!   connected random graphs and Barabási–Albert preferential attachment.

use std::collections::VecDeque;
use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a broker inside a [`Topology`] (mirrors
/// `subsum_types::BrokerId`; kept as a plain index here so the network
/// substrate has no dependency on the type layer).
pub type NodeId = u16;

/// Errors from topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// An edge referenced a node outside `0..n`.
    NodeOutOfRange(NodeId),
    /// An edge connected a node to itself.
    SelfLoop(NodeId),
    /// The graph is not connected.
    Disconnected,
    /// A topology must have at least one node.
    Empty,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NodeOutOfRange(v) => write!(f, "edge endpoint {v} out of range"),
            TopologyError::SelfLoop(v) => write!(f, "self loop at node {v}"),
            TopologyError::Disconnected => write!(f, "topology is not connected"),
            TopologyError::Empty => write!(f, "topology has no nodes"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected, connected broker overlay graph.
///
/// # Example
///
/// ```
/// use subsum_net::Topology;
/// let t = Topology::fig7_tree();
/// assert_eq!(t.len(), 13);
/// assert_eq!(t.max_degree(), 5);
/// // Paper: node 5 (0-based 4) is the degree-5 hub.
/// assert_eq!(t.degree(4), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    adj: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds a topology from an edge list over nodes `0..n`.
    ///
    /// # Errors
    ///
    /// Rejects empty graphs, out-of-range endpoints, self loops and
    /// disconnected graphs. Duplicate edges are ignored.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a as usize >= n {
                return Err(TopologyError::NodeOutOfRange(a));
            }
            if b as usize >= n {
                return Err(TopologyError::NodeOutOfRange(b));
            }
            if a == b {
                return Err(TopologyError::SelfLoop(a));
            }
            if !adj[a as usize].contains(&b) {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let t = Topology { adj };
        if !t.is_connected() {
            return Err(TopologyError::Disconnected);
        }
        Ok(t)
    }

    /// The number of brokers.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` if the topology has no nodes (unreachable through
    /// the constructors).
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// The neighbors of `v`, sorted.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// The degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// The maximum degree over all brokers (the iteration count of the
    /// paper's Algorithm 2).
    pub fn max_degree(&self) -> usize {
        (0..self.len() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterates over all undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(a, list)| {
            list.iter()
                .filter(move |&&b| (a as NodeId) < b)
                .map(move |&b| (a as NodeId, b))
        })
    }

    /// The number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges().count()
    }

    /// Whether every broker can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return false;
        }
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::from([0 as NodeId]);
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    queue.push_back(w);
                }
            }
        }
        count == self.len()
    }

    /// BFS hop distances from `from` to every broker.
    pub fn distances(&self, from: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.len()];
        dist[from as usize] = 0;
        let mut queue = VecDeque::from([from]);
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// All-pairs BFS distances (`result[a][b]` = hops from `a` to `b`).
    pub fn all_pairs_distances(&self) -> Vec<Vec<u32>> {
        (0..self.len() as NodeId)
            .map(|v| self.distances(v))
            .collect()
    }

    /// The mean hop distance over all ordered pairs of distinct brokers —
    /// the `average number of hops` of the paper's broadcast cost formula.
    pub fn mean_pairwise_distance(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        for v in 0..n as NodeId {
            for d in self.distances(v) {
                total += d as u64;
            }
        }
        total as f64 / (n as f64 * (n as f64 - 1.0))
    }

    /// The graph diameter in hops.
    pub fn diameter(&self) -> u32 {
        (0..self.len() as NodeId)
            .flat_map(|v| self.distances(v))
            .max()
            .unwrap_or(0)
    }

    /// A BFS shortest-path (spanning) tree rooted at `root`: `parent[v]`
    /// is `None` for the root and `Some(p)` otherwise. Ties resolve to
    /// the lowest-numbered parent, making trees deterministic — this is
    /// the per-source spanning tree of Siena's subscription propagation.
    pub fn shortest_path_tree(&self, root: NodeId) -> Vec<Option<NodeId>> {
        let mut parent = vec![None; self.len()];
        let mut seen = vec![false; self.len()];
        seen[root as usize] = true;
        let mut queue = VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    parent[w as usize] = Some(v);
                    queue.push_back(w);
                }
            }
        }
        parent
    }

    /// The path from `v` to the root of a tree given by `parent`,
    /// inclusive of both endpoints.
    pub fn path_to_root(parent: &[Option<NodeId>], mut v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        while let Some(p) = parent[v as usize] {
            path.push(p);
            v = p;
        }
        path
    }

    /// The number of tree edges in the minimal subtree of `parent`
    /// (rooted at the tree root) spanning `targets` — the hop count of a
    /// reverse-path multicast from the root to the targets.
    pub fn multicast_edges(parent: &[Option<NodeId>], targets: &[NodeId]) -> usize {
        let mut in_subtree = vec![false; parent.len()];
        let mut edges = 0;
        for &t in targets {
            let mut v = t;
            while !in_subtree[v as usize] {
                in_subtree[v as usize] = true;
                match parent[v as usize] {
                    Some(p) => {
                        edges += 1;
                        v = p;
                    }
                    None => break,
                }
            }
        }
        edges
    }

    // ------------------------------------------------------------------
    // Named topologies.
    // ------------------------------------------------------------------

    /// The 13-broker tree of the paper's Fig. 7 worked example (nodes are
    /// 0-based: paper broker *k* is node *k − 1*). Node 4 (paper's broker
    /// 5) is the degree-5 hub; nodes 7 and 10 (paper's 8 and 11) have
    /// degree 3.
    pub fn fig7_tree() -> Self {
        // Paper (1-based): 2-1, 2-5, 3-5, 4-5, 5-6, 5-7, 7-8, 8-9, 8-10,
        // 10-11, 11-12, 11-13.
        Topology::from_edges(
            13,
            &[
                (1, 0),
                (1, 4),
                (2, 4),
                (3, 4),
                (4, 5),
                (4, 6),
                (6, 7),
                (7, 8),
                (7, 9),
                (9, 10),
                (10, 11),
                (10, 12),
            ],
        )
        .expect("fig7 tree is valid")
    }

    /// A representative 24-node ISP backbone modeled on the US Cable &
    /// Wireless network used by the paper (hub-and-spoke continental
    /// backbone; max degree 8, mean degree ≈ 3.3).
    pub fn cable_wireless_24() -> Self {
        Topology::from_edges(
            24,
            &[
                // Northeast hub (0) and neighbors.
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 5),
                (0, 8),
                (0, 20),
                (2, 3),
                (3, 4),
                (3, 8),
                (4, 8),
                // Southeast hub (8).
                (8, 9),
                (8, 10),
                (5, 8),
                (8, 18),
                // Midwest hub (5).
                (5, 6),
                (5, 7),
                (5, 10),
                (5, 12),
                (5, 17),
                (5, 18),
                // Southern hub (10).
                (9, 10),
                (9, 11),
                (10, 11),
                (10, 12),
                (10, 15),
                (10, 17),
                // Mountain hub (12).
                (12, 13),
                (12, 17),
                (12, 20),
                (12, 23),
                // West coast hubs (15, 20).
                (14, 15),
                (15, 16),
                (15, 20),
                (15, 23),
                (19, 20),
                (20, 21),
                (20, 22),
                (21, 22),
                (7, 21),
                (19, 23),
            ],
        )
        .expect("backbone topology is valid")
    }

    /// A larger 33-node ISP backbone model (the paper cites single-ISP
    /// CDNs "which number from 20 to 33 backbone nodes", naming Cable &
    /// Wireless and AT&T): three regional hub clusters with redundant
    /// inter-region trunks, max degree 7.
    pub fn isp_backbone_33() -> Self {
        Topology::from_edges(
            33,
            &[
                // East region: hub 0 with a secondary hub 4.
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (4, 5),
                (4, 6),
                (4, 7),
                (2, 3),
                (6, 7),
                (5, 8),
                (8, 9),
                // Central region: hub 11 with secondary hub 15.
                (11, 10),
                (11, 12),
                (11, 13),
                (11, 14),
                (11, 15),
                (15, 16),
                (15, 17),
                (15, 18),
                (13, 14),
                (17, 18),
                (16, 19),
                (19, 20),
                (12, 21),
                // West region: hub 22 with secondary hub 26.
                (22, 23),
                (22, 24),
                (22, 25),
                (22, 26),
                (26, 27),
                (26, 28),
                (26, 29),
                (24, 25),
                (28, 29),
                (27, 30),
                (30, 31),
                (29, 32),
                // Inter-region trunks (redundant pairs).
                (0, 11),
                (5, 10),
                (9, 13),
                (11, 22),
                (15, 26),
                (21, 24),
                (20, 23),
            ],
        )
        .expect("backbone topology is valid")
    }

    /// A path of `n` brokers.
    pub fn line(n: usize) -> Self {
        let edges: Vec<_> = (1..n as NodeId).map(|v| (v - 1, v)).collect();
        Topology::from_edges(n, &edges).expect("line is valid")
    }

    /// A cycle of `n ≥ 3` brokers.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 nodes");
        let mut edges: Vec<_> = (1..n as NodeId).map(|v| (v - 1, v)).collect();
        edges.push((n as NodeId - 1, 0));
        Topology::from_edges(n, &edges).expect("ring is valid")
    }

    /// A star: broker 0 connected to all others.
    pub fn star(n: usize) -> Self {
        let edges: Vec<_> = (1..n as NodeId).map(|v| (0, v)).collect();
        Topology::from_edges(n, &edges).expect("star is valid")
    }

    /// A balanced tree with the given branching factor and depth
    /// (depth 0 = a single root).
    pub fn balanced_tree(arity: usize, depth: usize) -> Self {
        assert!(arity >= 1);
        let mut edges = Vec::new();
        let mut next: NodeId = 1;
        let mut frontier = vec![0 as NodeId];
        for _ in 0..depth {
            let mut new_frontier = Vec::new();
            for &p in &frontier {
                for _ in 0..arity {
                    edges.push((p, next));
                    new_frontier.push(next);
                    next += 1;
                }
            }
            frontier = new_frontier;
        }
        Topology::from_edges(next as usize, &edges).expect("balanced tree is valid")
    }

    /// A `w × h` grid.
    pub fn grid(w: usize, h: usize) -> Self {
        assert!(w >= 1 && h >= 1);
        let at = |x: usize, y: usize| (y * w + x) as NodeId;
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((at(x, y), at(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((at(x, y), at(x, y + 1)));
                }
            }
        }
        Topology::from_edges(w * h, &edges).expect("grid is valid")
    }

    /// A connected random graph: a random spanning tree plus
    /// `extra_edges` uniformly random non-tree edges.
    pub fn random_connected<R: Rng>(n: usize, extra_edges: usize, rng: &mut R) -> Self {
        assert!(n >= 2);
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.shuffle(rng);
        let mut edges = Vec::with_capacity(n - 1 + extra_edges);
        for i in 1..n {
            let parent = order[rng.gen_range(0..i)];
            edges.push((parent, order[i]));
        }
        let mut added = 0;
        let mut guard = 0;
        while added < extra_edges && guard < extra_edges * 50 + 100 {
            guard += 1;
            let a = rng.gen_range(0..n as NodeId);
            let b = rng.gen_range(0..n as NodeId);
            if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
                edges.push((a, b));
                added += 1;
            }
        }
        Topology::from_edges(n, &edges).expect("random connected graph is valid")
    }

    /// Barabási–Albert preferential attachment: each new node attaches to
    /// `m` existing nodes with probability proportional to degree.
    pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> Self {
        assert!(m >= 1 && n > m);
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        // Endpoint multiset for preferential sampling.
        let mut endpoints: Vec<NodeId> = Vec::new();
        // Seed: a small clique of m + 1 nodes.
        for a in 0..=(m as NodeId) {
            for b in 0..a {
                edges.push((b, a));
                endpoints.push(a);
                endpoints.push(b);
            }
        }
        for v in (m as NodeId + 1)..n as NodeId {
            let mut chosen = Vec::with_capacity(m);
            let mut guard = 0;
            while chosen.len() < m && guard < 1000 {
                guard += 1;
                let pick = endpoints[rng.gen_range(0..endpoints.len())];
                if pick != v && !chosen.contains(&pick) {
                    chosen.push(pick);
                }
            }
            for &c in &chosen {
                edges.push((c, v));
                endpoints.push(c);
                endpoints.push(v);
            }
        }
        Topology::from_edges(n, &edges).expect("BA graph is valid")
    }

    /// Brokers sorted by decreasing degree (ties by ascending id) — the
    /// visit order preference of the paper's Algorithm 3.
    pub fn by_degree_desc(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.len() as NodeId).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig7_tree_matches_paper() {
        let t = Topology::fig7_tree();
        assert_eq!(t.len(), 13);
        assert_eq!(t.edge_count(), 12);
        // Paper degrees (1-based broker k = node k-1):
        // degree 1: brokers 1, 3, 4, 6, 9, 12, 13.
        for b in [1u16, 3, 4, 6, 9, 12, 13] {
            assert_eq!(t.degree(b - 1), 1, "broker {b}");
        }
        // degree 2: brokers 2, 7, 10.
        for b in [2u16, 7, 10] {
            assert_eq!(t.degree(b - 1), 2, "broker {b}");
        }
        // degree 3: brokers 8, 11. degree 5: broker 5.
        assert_eq!(t.degree(7), 3);
        assert_eq!(t.degree(10), 3);
        assert_eq!(t.degree(4), 5);
        assert_eq!(t.max_degree(), 5);
    }

    #[test]
    fn cable_wireless_properties() {
        let t = Topology::cable_wireless_24();
        assert_eq!(t.len(), 24);
        assert!(t.is_connected());
        assert!(t.max_degree() >= 6 && t.max_degree() <= 8);
        let mean_deg = 2.0 * t.edge_count() as f64 / t.len() as f64;
        assert!((2.5..4.0).contains(&mean_deg), "mean degree {mean_deg}");
        assert!(t.diameter() <= 6);
    }

    #[test]
    fn isp_backbone_33_properties() {
        let t = Topology::isp_backbone_33();
        assert_eq!(t.len(), 33);
        assert!(t.is_connected());
        assert!(
            (5..=8).contains(&t.max_degree()),
            "max degree {}",
            t.max_degree()
        );
        let mean_deg = 2.0 * t.edge_count() as f64 / t.len() as f64;
        assert!((2.0..4.0).contains(&mean_deg), "mean degree {mean_deg}");
        assert!(t.diameter() <= 8, "diameter {}", t.diameter());
    }

    #[test]
    fn from_edges_validation() {
        assert_eq!(
            Topology::from_edges(0, &[]).unwrap_err(),
            TopologyError::Empty
        );
        assert_eq!(
            Topology::from_edges(2, &[(0, 2)]).unwrap_err(),
            TopologyError::NodeOutOfRange(2)
        );
        assert_eq!(
            Topology::from_edges(2, &[(1, 1)]).unwrap_err(),
            TopologyError::SelfLoop(1)
        );
        assert_eq!(
            Topology::from_edges(3, &[(0, 1)]).unwrap_err(),
            TopologyError::Disconnected
        );
        // Duplicate edges collapse.
        let t = Topology::from_edges(2, &[(0, 1), (1, 0)]).unwrap();
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn distances_on_line() {
        let t = Topology::line(5);
        assert_eq!(t.distances(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.distances(2), vec![2, 1, 0, 1, 2]);
        assert_eq!(t.diameter(), 4);
        // Mean over ordered pairs of the line 0..5: 2·(1+2+3+4+1+2+3+...)/20 = 2.
        assert_eq!(t.mean_pairwise_distance(), 2.0);
    }

    #[test]
    fn ring_and_star() {
        let r = Topology::ring(6);
        assert_eq!(r.diameter(), 3);
        assert!(r.edges().count() == 6);
        let s = Topology::star(7);
        assert_eq!(s.degree(0), 6);
        assert_eq!(s.diameter(), 2);
        assert_eq!(s.max_degree(), 6);
    }

    #[test]
    fn balanced_tree_shape() {
        let t = Topology::balanced_tree(2, 3);
        assert_eq!(t.len(), 15);
        assert_eq!(t.edge_count(), 14);
        assert_eq!(t.degree(0), 2);
        assert_eq!(t.diameter(), 6);
    }

    #[test]
    fn grid_shape() {
        let g = Topology::grid(3, 4);
        assert_eq!(g.len(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(g.diameter(), 2 + 3);
    }

    #[test]
    fn spanning_tree_paths() {
        let t = Topology::fig7_tree();
        let parent = t.shortest_path_tree(0);
        // Node 0 (paper broker 1) reaches node 12 (broker 13) through
        // 1 → 2 → 5 → 7 → 8 → 11 → 13 in paper terms.
        let path = Topology::path_to_root(&parent, 12);
        assert_eq!(path.len() as u32, t.distances(0)[12] + 1);
        assert_eq!(*path.last().unwrap(), 0);
    }

    #[test]
    fn multicast_edge_counts() {
        let t = Topology::fig7_tree();
        let parent = t.shortest_path_tree(0);
        // Multicast to a single leaf = its distance.
        assert_eq!(
            Topology::multicast_edges(&parent, &[12]) as u32,
            t.distances(0)[12]
        );
        // Multicast to two leaves sharing a path costs less than the sum.
        let both = Topology::multicast_edges(&parent, &[11, 12]);
        let sum = t.distances(0)[11] as usize + t.distances(0)[12] as usize;
        assert!(both < sum);
        assert_eq!(Topology::multicast_edges(&parent, &[0]), 0);
        assert_eq!(Topology::multicast_edges(&parent, &[]), 0);
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 5, 24, 60] {
            let t = Topology::random_connected(n, n / 2, &mut rng);
            assert_eq!(t.len(), n);
            assert!(t.is_connected());
            assert!(t.edge_count() >= n - 1);
        }
    }

    #[test]
    fn barabasi_albert_shape() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = Topology::barabasi_albert(50, 2, &mut rng);
        assert_eq!(t.len(), 50);
        assert!(t.is_connected());
        // Preferential attachment produces at least one well-connected hub.
        assert!(t.max_degree() >= 6);
    }

    #[test]
    fn by_degree_desc_order() {
        let t = Topology::fig7_tree();
        let order = t.by_degree_desc();
        assert_eq!(order[0], 4); // degree 5 hub first.
        assert_eq!(t.degree(order[1]), 3);
        assert_eq!(t.degree(order[2]), 3);
        assert!(order[1] < order[2]); // tie broken by id.
        assert_eq!(t.degree(*order.last().unwrap()), 1);
    }

    #[test]
    fn all_pairs_symmetry() {
        let t = Topology::cable_wireless_24();
        let d = t.all_pairs_distances();
        for (a, row) in d.iter().enumerate() {
            for (b, &dist) in row.iter().enumerate() {
                assert_eq!(dist, d[b][a]);
            }
            assert_eq!(row[a], 0);
        }
    }
}
