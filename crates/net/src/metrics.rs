//! Network cost accounting: bytes, messages and hops.
//!
//! The paper's primary metrics (§5) are (i) network bandwidth in bytes
//! exchanged, (ii) storage, (iii) hop counts for subscription propagation
//! and (iv) hop counts for event routing, where *one hop is any message
//! sent from one broker to another, whether or not they are overlay
//! neighbors* (§5.2.1). [`NetMetrics`] accumulates these quantities;
//! algorithms call [`NetMetrics::record`] for every broker→broker message.

use serde::{Deserialize, Serialize};

use crate::topology::NodeId;

/// Accumulated traffic counters for one experiment run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetMetrics {
    /// Total broker→broker messages (the paper's hop count).
    pub messages: u64,
    /// Total payload bytes, weighted by the overlay path length each
    /// message traverses (bandwidth actually consumed by links).
    pub link_bytes: u64,
    /// Total payload bytes at the application layer (unweighted).
    pub payload_bytes: u64,
    /// Messages sent per broker.
    pub sent_per_broker: Vec<u64>,
    /// Messages received per broker.
    pub received_per_broker: Vec<u64>,
    /// Bytes sent per broker (unweighted payload).
    pub bytes_per_broker: Vec<u64>,
}

impl NetMetrics {
    /// Creates zeroed counters for `n` brokers.
    pub fn new(n: usize) -> Self {
        NetMetrics {
            messages: 0,
            link_bytes: 0,
            payload_bytes: 0,
            sent_per_broker: vec![0; n],
            received_per_broker: vec![0; n],
            bytes_per_broker: vec![0; n],
        }
    }

    /// Records one broker→broker message of `bytes` payload traversing
    /// `path_len` overlay links (1 for neighbor sends; the BFS distance
    /// for direct non-neighbor sends, which the underlay still carries
    /// across that many links).
    pub fn record(&mut self, from: NodeId, to: NodeId, bytes: usize, path_len: u32) {
        self.messages += 1;
        self.payload_bytes += bytes as u64;
        self.link_bytes += bytes as u64 * u64::from(path_len.max(1));
        self.sent_per_broker[from as usize] += 1;
        self.received_per_broker[to as usize] += 1;
        self.bytes_per_broker[from as usize] += bytes as u64;
    }

    /// Merges counters from another run segment.
    ///
    /// Segments may cover different broker populations (e.g. a run that
    /// grew its overlay between periods): the per-broker vectors grow to
    /// the larger population, zero-padding the brokers the smaller
    /// segment never saw.
    pub fn merge(&mut self, other: &NetMetrics) {
        let n = self.sent_per_broker.len().max(other.sent_per_broker.len());
        self.sent_per_broker.resize(n, 0);
        self.received_per_broker.resize(n, 0);
        self.bytes_per_broker.resize(n, 0);
        self.messages += other.messages;
        self.link_bytes += other.link_bytes;
        self.payload_bytes += other.payload_bytes;
        for i in 0..other.sent_per_broker.len() {
            self.sent_per_broker[i] += other.sent_per_broker[i];
            self.received_per_broker[i] += other.received_per_broker[i];
            self.bytes_per_broker[i] += other.bytes_per_broker[i];
        }
    }

    /// The most-loaded broker's sent+received message count (load
    /// balancing metric for the virtual-degree ablation).
    pub fn max_broker_load(&self) -> u64 {
        self.sent_per_broker
            .iter()
            .zip(&self.received_per_broker)
            .map(|(s, r)| s + r)
            .max()
            .unwrap_or(0)
    }

    /// Mean messages per broker (sent + received).
    pub fn mean_broker_load(&self) -> f64 {
        if self.sent_per_broker.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .sent_per_broker
            .iter()
            .zip(&self.received_per_broker)
            .map(|(s, r)| s + r)
            .sum();
        total as f64 / self.sent_per_broker.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = NetMetrics::new(3);
        m.record(0, 1, 100, 1);
        m.record(0, 2, 50, 3);
        assert_eq!(m.messages, 2);
        assert_eq!(m.payload_bytes, 150);
        assert_eq!(m.link_bytes, 100 + 150);
        assert_eq!(m.sent_per_broker, vec![2, 0, 0]);
        assert_eq!(m.received_per_broker, vec![0, 1, 1]);
        assert_eq!(m.bytes_per_broker, vec![150, 0, 0]);
    }

    #[test]
    fn zero_path_len_counts_as_one_link() {
        let mut m = NetMetrics::new(2);
        m.record(0, 1, 10, 0);
        assert_eq!(m.link_bytes, 10);
    }

    #[test]
    fn merge_sums() {
        let mut a = NetMetrics::new(2);
        a.record(0, 1, 10, 1);
        let mut b = NetMetrics::new(2);
        b.record(1, 0, 20, 2);
        a.merge(&b);
        assert_eq!(a.messages, 2);
        assert_eq!(a.payload_bytes, 30);
        assert_eq!(a.link_bytes, 10 + 40);
        assert_eq!(a.max_broker_load(), 2);
        assert_eq!(a.mean_broker_load(), 2.0);
    }

    #[test]
    fn merge_disjoint_broker_sets_is_a_union() {
        // Segments whose active brokers never overlap: the merge is the
        // disjoint union of the per-broker vectors.
        let mut a = NetMetrics::new(4);
        a.record(0, 1, 10, 1);
        let mut b = NetMetrics::new(4);
        b.record(2, 3, 20, 1);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.sent_per_broker, vec![1, 0, 1, 0]);
        assert_eq!(ab.received_per_broker, vec![0, 1, 0, 1]);
        assert_eq!(ab.bytes_per_broker, vec![10, 0, 20, 0]);
        // Commutative on disjoint segments.
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ba, ab);
    }

    #[test]
    fn merge_overlapping_broker_sets_sums_shared_brokers() {
        let mut a = NetMetrics::new(3);
        a.record(0, 1, 10, 1);
        a.record(1, 2, 5, 1);
        let mut b = NetMetrics::new(3);
        b.record(1, 0, 20, 2);
        a.merge(&b);
        assert_eq!(a.sent_per_broker, vec![1, 2, 0]);
        assert_eq!(a.received_per_broker, vec![1, 1, 1]);
        assert_eq!(a.bytes_per_broker, vec![10, 25, 0]);
        assert_eq!(a.messages, 3);
        assert_eq!(a.payload_bytes, 35);
    }

    #[test]
    fn merge_with_empty_is_identity_and_remerge_adds_again() {
        let mut a = NetMetrics::new(2);
        a.record(0, 1, 10, 1);
        let before = a.clone();
        a.merge(&NetMetrics::new(2));
        assert_eq!(a, before, "merging an empty segment changes nothing");
        a.merge(&NetMetrics::new(0));
        assert_eq!(a, before, "zero-broker segment changes nothing");
        // Counters are additive, not idempotent: re-merging the same
        // segment doubles it. Guard that explicitly so callers fold each
        // segment exactly once.
        let mut twice = before.clone();
        twice.merge(&before);
        assert_eq!(twice.messages, 2 * before.messages);
        assert_eq!(twice.payload_bytes, 2 * before.payload_bytes);
        assert_eq!(twice.sent_per_broker, vec![2, 0]);
    }

    #[test]
    fn merge_mismatched_sizes_grows_to_larger_population() {
        let mut a = NetMetrics::new(2);
        a.record(0, 1, 10, 1);
        let mut b = NetMetrics::new(4);
        b.record(3, 2, 20, 2);
        a.merge(&b);
        assert_eq!(a.sent_per_broker, vec![1, 0, 0, 1]);
        assert_eq!(a.received_per_broker, vec![0, 1, 1, 0]);
        assert_eq!(a.bytes_per_broker, vec![10, 0, 0, 20]);
        assert_eq!(a.messages, 2);
        // Merging a smaller population into a larger one pads the same way.
        let mut c = NetMetrics::new(1);
        c.record(0, 0, 5, 1);
        a.merge(&c);
        assert_eq!(a.sent_per_broker, vec![2, 0, 0, 1]);
        assert_eq!(a.payload_bytes, 35);
    }
}
