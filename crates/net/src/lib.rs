//! Broker overlay network substrate for the subscription-summarization
//! reproduction.
//!
//! The paper evaluates its algorithms on broker overlays such as the
//! 24-node US Cable & Wireless backbone (§5.2). This crate provides:
//!
//! * [`Topology`] — undirected connected overlays with the named instances
//!   the experiments need (the Fig. 7 example tree, a 24-node backbone
//!   model) and artificial families (lines, rings, stars, trees, grids,
//!   random connected, Barabási–Albert), plus the graph algorithms the
//!   propagation/routing layers build on (BFS distances, per-source
//!   spanning trees, multicast subtree sizes);
//! * [`NetMetrics`] — byte/message/hop accounting following the paper's
//!   conventions (a hop is any broker→broker message);
//! * [`EventQueue`] — a deterministic discrete-event queue that sequences
//!   simulated message deliveries reproducibly;
//! * [`FaultPlan`] / [`LossyNet`] — seeded, replayable fault injection
//!   (drops, duplicates, delays, link cuts, partitions, broker crashes)
//!   layered onto the event queue.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod fault;
mod metrics;
mod sim;
mod topology;

pub use fault::{
    mix64, CrashEvent, DeliveryDecision, Envelope, FaultPlan, FaultStats, LinkCut, LinkProfile,
    LossyNet, PartitionWindow, SplitMix64,
};
pub use metrics::NetMetrics;
pub use sim::EventQueue;
pub use topology::{NodeId, Topology, TopologyError};
