//! Deterministic fault injection for the simulated broker overlay.
//!
//! The propagation protocol of the paper assumes reliable links and
//! always-up brokers; a production deployment has neither. This module
//! models the failure dimension as a *seeded, replayable plan*:
//!
//! * per-link message **drop / duplicate / delay** probabilities
//!   ([`LinkProfile`]), with per-link overrides;
//! * scheduled **link cuts** ([`LinkCut`]) and **partitions**
//!   ([`PartitionWindow`]) that sever groups of links for a time window;
//! * **broker crash/restart** windows ([`CrashEvent`]) during which a
//!   broker is down and every message addressed to it is lost.
//!
//! Determinism is the load-bearing property: every per-message decision
//! is a *pure function* of `(seed, link, message sequence number)`,
//! derived through a splitmix64 finalizer ([`mix64`]), so a run replays
//! exactly regardless of how the caller interleaves sends — there is no
//! shared PRNG stream to perturb.
//!
//! [`LossyNet`] layers a [`FaultPlan`] onto the deterministic
//! [`EventQueue`](crate::EventQueue): `send` applies the plan (drop,
//! duplicate, extra delay, link/partition state), `pop` suppresses
//! deliveries to crashed brokers, and [`FaultStats`] counts every
//! decision so two runs with one seed are byte-for-byte comparable.

use std::collections::BTreeMap;
use std::sync::Arc;

use subsum_telemetry::trace::{SpanKind, TraceCtx, Tracer};

use crate::sim::EventQueue;
use crate::topology::NodeId;

/// The 64-bit splitmix finalizer: a cheap, high-quality bijective mixer.
///
/// Used to derive independent per-message random streams from
/// `(seed, link, seq)` without any shared mutable PRNG state.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A splitmix64 PRNG: the stream `mix64(seed + k·φ)` for `k = 1, 2, …`.
///
/// # Example
///
/// ```
/// use subsum_net::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let p = a.next_f64();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// A uniform draw from `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, bound)`; returns 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Modulo bias is irrelevant at fault-plan scales.
            self.next_u64() % bound
        }
    }
}

/// Per-link fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Probability a message on the link is silently dropped.
    pub drop: f64,
    /// Probability a delivered message is duplicated (one extra copy).
    pub duplicate: f64,
    /// Maximum extra delivery delay in ticks, drawn uniformly from
    /// `[0, max_extra_delay]`.
    pub max_extra_delay: u64,
}

impl LinkProfile {
    /// A fault-free link.
    pub fn reliable() -> Self {
        LinkProfile {
            drop: 0.0,
            duplicate: 0.0,
            max_extra_delay: 0,
        }
    }
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile::reliable()
    }
}

/// A scheduled cut of one link: messages sent on `(a, b)` (either
/// direction) during `[from, until)` are lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkCut {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// First tick of the cut window.
    pub from: u64,
    /// First tick after the cut heals.
    pub until: u64,
}

/// A scheduled partition: during `[from, until)` every link between a
/// broker inside `island` and one outside it is severed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// The brokers on one side of the partition.
    pub island: Vec<NodeId>,
    /// First tick of the partition window.
    pub from: u64,
    /// First tick after the partition heals.
    pub until: u64,
}

impl PartitionWindow {
    fn severs(&self, time: u64, a: NodeId, b: NodeId) -> bool {
        time >= self.from
            && time < self.until
            && self.island.contains(&a) != self.island.contains(&b)
    }
}

/// A scheduled broker crash: the broker is down during
/// `[at, restart_at)`, loses its in-memory state, and every message
/// delivered to it in that window is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The crashing broker.
    pub broker: NodeId,
    /// Crash tick.
    pub at: u64,
    /// Restart tick (`u64::MAX` for a permanent failure).
    pub restart_at: u64,
}

/// The fate of one offered message under a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryDecision {
    /// Extra delay of each delivered copy; empty means the message was
    /// dropped. One entry is a normal delivery, two a duplication.
    pub copies: Vec<u64>,
}

/// A seeded, fully deterministic fault schedule for one simulation run.
///
/// # Example
///
/// ```
/// use subsum_net::{FaultPlan, LinkProfile};
/// let mut plan = FaultPlan::reliable(7);
/// plan.default_link = LinkProfile { drop: 0.5, duplicate: 0.0, max_extra_delay: 0 };
/// // Decisions are pure functions of (seed, link, seq): replay is exact.
/// assert_eq!(plan.decide(0, 1, 0), plan.decide(0, 1, 0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of every probabilistic decision.
    pub seed: u64,
    /// Fault profile of links without an override.
    pub default_link: LinkProfile,
    /// Per-link overrides, keyed by the canonical (smaller, larger)
    /// endpoint pair.
    pub link_overrides: BTreeMap<(NodeId, NodeId), LinkProfile>,
    /// Scheduled single-link cuts.
    pub cuts: Vec<LinkCut>,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionWindow>,
    /// Scheduled broker crashes.
    pub crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// A plan with no faults at all (useful as the oracle baseline).
    pub fn reliable(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_link: LinkProfile::reliable(),
            link_overrides: BTreeMap::new(),
            cuts: Vec::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// The fault profile in force on link `(a, b)`.
    pub fn profile(&self, a: NodeId, b: NodeId) -> LinkProfile {
        let key = (a.min(b), a.max(b));
        self.link_overrides
            .get(&key)
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Whether the link `(a, b)` is up at `time` (no cut, no partition).
    pub fn link_up(&self, time: u64, a: NodeId, b: NodeId) -> bool {
        let key = (a.min(b), a.max(b));
        let cut = self
            .cuts
            .iter()
            .any(|c| (c.a.min(c.b), c.a.max(c.b)) == key && time >= c.from && time < c.until);
        !cut && !self.partitions.iter().any(|p| p.severs(time, a, b))
    }

    /// Whether `broker` is crashed (down) at `time`.
    pub fn crashed(&self, time: u64, broker: NodeId) -> bool {
        self.crashes
            .iter()
            .any(|c| c.broker == broker && time >= c.at && time < c.restart_at)
    }

    /// The fate of the `seq`-th message offered on the directed link
    /// `from → to`: a pure function of `(seed, from, to, seq)`, so every
    /// run with the same plan replays the same decisions in any
    /// interleaving.
    pub fn decide(&self, from: NodeId, to: NodeId, seq: u64) -> DeliveryDecision {
        let profile = self.profile(from, to);
        let link_key = ((from as u64) << 16) | to as u64;
        let mut rng = SplitMix64::new(self.seed ^ mix64(link_key ^ mix64(seq)));
        if rng.next_f64() < profile.drop {
            return DeliveryDecision { copies: Vec::new() };
        }
        let mut copies = Vec::with_capacity(2);
        copies.push(rng.next_below(profile.max_extra_delay.saturating_add(1)));
        if rng.next_f64() < profile.duplicate {
            copies.push(rng.next_below(profile.max_extra_delay.saturating_add(1)));
        }
        DeliveryDecision { copies }
    }
}

/// Counters of every fault decision taken during a run. Two runs with
/// the same plan and send schedule produce identical stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Messages offered to [`LossyNet::send`].
    pub offered: u64,
    /// Copies actually delivered by [`LossyNet::pop`].
    pub delivered: u64,
    /// Messages dropped by the per-link loss probability.
    pub dropped: u64,
    /// Messages lost to a link cut or partition window.
    pub link_dropped: u64,
    /// Copies lost because the receiver was crashed at delivery time.
    pub crash_dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
}

impl FaultStats {
    /// Sums counters from another run segment (e.g. per-broker or
    /// per-period stats folded into a run total). Field-wise addition,
    /// so merging is associative and commutative.
    pub fn merge(&mut self, other: &FaultStats) {
        self.offered += other.offered;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.link_dropped += other.link_dropped;
        self.crash_dropped += other.crash_dropped;
        self.duplicated += other.duplicated;
    }
}

/// One in-flight message of a [`LossyNet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending broker.
    pub from: NodeId,
    /// Receiving broker.
    pub to: NodeId,
    /// Whether this is a control event exempt from the fault plan
    /// (scheduled by the simulation driver, not broker traffic).
    pub control: bool,
    /// Causal trace context carried alongside the payload. Runtime
    /// metadata only: it never enters the wire codec, so encoded bytes
    /// are identical with tracing on or off.
    pub trace: TraceCtx,
    /// The message.
    pub payload: M,
}

/// A lossy, deterministic message network: an [`EventQueue`] whose
/// deliveries pass through a [`FaultPlan`].
///
/// # Example
///
/// ```
/// use subsum_net::{FaultPlan, LossyNet};
/// let mut net: LossyNet<&str> = LossyNet::new(FaultPlan::reliable(1));
/// net.send(0, 1, 5, "hello");
/// let (t, env) = net.pop().unwrap();
/// assert_eq!((t, env.from, env.to, env.payload), (5, 0, 1, "hello"));
/// ```
#[derive(Debug)]
pub struct LossyNet<M> {
    queue: EventQueue<Envelope<M>>,
    plan: FaultPlan,
    /// Per-directed-link sequence counters feeding [`FaultPlan::decide`].
    seq: BTreeMap<(NodeId, NodeId), u64>,
    stats: FaultStats,
    /// Optional causal tracer; `None` means every trace hook is a no-op
    /// and sends behave exactly as before tracing existed.
    tracer: Option<Arc<Tracer>>,
}

impl<M: Clone> LossyNet<M> {
    /// Creates an empty network governed by `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        LossyNet {
            queue: EventQueue::new(),
            plan,
            seq: BTreeMap::new(),
            stats: FaultStats::default(),
            tracer: None,
        }
    }

    /// Attaches a causal tracer: subsequent sends and pops record
    /// enqueue/dequeue/drop/dup spans into its per-broker flight
    /// recorders. Fault decisions are unaffected.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The governing fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault counters so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.queue.now()
    }

    /// Number of in-flight envelopes (including control events).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Offers a broker message on link `from → to` with base transit
    /// `delay`; the plan decides drop, duplication and extra delay.
    pub fn send(&mut self, from: NodeId, to: NodeId, delay: u64, payload: M) {
        self.send_traced(from, to, delay, TraceCtx::NONE, payload);
    }

    /// [`LossyNet::send`] carrying a causal trace context: fault
    /// decisions are byte-identical to the untraced path, but if a
    /// tracer is attached the fate of the message is recorded — a drop
    /// span on link/fault loss, an enqueue span for the delivered copy,
    /// a dup span per extra copy — and each in-flight envelope's parent
    /// is re-pointed at its own enqueue span so receivers chain
    /// causally.
    pub fn send_traced(&mut self, from: NodeId, to: NodeId, delay: u64, ctx: TraceCtx, payload: M) {
        self.stats.offered += 1;
        if !self.plan.link_up(self.now(), from, to) {
            self.stats.link_dropped += 1;
            self.record(ctx, from, SpanKind::Drop);
            return;
        }
        let seq = self.seq.entry((from, to)).or_insert(0);
        let decision = self.plan.decide(from, to, *seq);
        *seq += 1;
        if decision.copies.is_empty() {
            self.stats.dropped += 1;
            self.record(ctx, from, SpanKind::Drop);
            return;
        }
        self.stats.duplicated += decision.copies.len() as u64 - 1;
        for (i, extra) in decision.copies.into_iter().enumerate() {
            let kind = if i == 0 {
                SpanKind::Enqueue
            } else {
                SpanKind::Dup
            };
            let span = self.record(ctx, from, kind);
            self.queue.push_after(
                delay.saturating_add(extra),
                Envelope {
                    from,
                    to,
                    control: false,
                    trace: TraceCtx {
                        trace: ctx.trace,
                        parent: span,
                    },
                    payload: payload.clone(),
                },
            );
        }
    }

    /// Schedules a control event at `broker` after `delay` ticks,
    /// exempt from the fault plan (crash/restart/timer events must fire
    /// even on a dead broker or severed link).
    pub fn schedule(&mut self, broker: NodeId, delay: u64, payload: M) {
        self.schedule_traced(broker, delay, TraceCtx::NONE, payload);
    }

    /// [`LossyNet::schedule`] carrying a causal trace context.
    pub fn schedule_traced(&mut self, broker: NodeId, delay: u64, ctx: TraceCtx, payload: M) {
        self.queue.push_after(
            delay,
            Envelope {
                from: broker,
                to: broker,
                control: true,
                trace: ctx,
                payload,
            },
        );
    }

    /// Pops the next deliverable envelope, advancing the clock. Broker
    /// messages addressed to a crashed receiver are consumed and counted
    /// as `crash_dropped`, never returned. With a tracer attached, a
    /// crash loss records a crash-drop span at the dead receiver and a
    /// delivery records a dequeue span the returned envelope's parent is
    /// re-pointed at.
    pub fn pop(&mut self) -> Option<(u64, Envelope<M>)> {
        while let Some((time, mut env)) = self.queue.pop() {
            if !env.control && self.plan.crashed(time, env.to) {
                self.stats.crash_dropped += 1;
                self.record(env.trace, env.to, SpanKind::CrashDrop);
                continue;
            }
            if !env.control {
                self.stats.delivered += 1;
            }
            let span = self.record(env.trace, env.to, SpanKind::Dequeue);
            if span != 0 {
                env.trace.parent = span;
            }
            return Some((time, env));
        }
        None
    }

    /// Records one span at the current simulation time, if a tracer is
    /// attached; returns 0 otherwise (the "no span" parent sentinel).
    fn record(&self, ctx: TraceCtx, broker: NodeId, kind: SpanKind) -> u32 {
        match &self.tracer {
            Some(t) => t.record_ctx(ctx, broker, kind, self.queue.now()),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniform_ish() {
        let mut rng = SplitMix64::new(0xDEAD_BEEF);
        let draws: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
        assert!(draws.iter().all(|p| (0.0..1.0).contains(p)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
        let mut again = SplitMix64::new(0xDEAD_BEEF);
        assert_eq!(again.next_f64(), draws[0]);
    }

    #[test]
    fn decisions_are_pure_functions_of_identity() {
        let mut plan = FaultPlan::reliable(99);
        plan.default_link = LinkProfile {
            drop: 0.3,
            duplicate: 0.3,
            max_extra_delay: 7,
        };
        for seq in 0..50 {
            assert_eq!(plan.decide(2, 3, seq), plan.decide(2, 3, seq));
        }
        // Different links and different seqs draw independent streams.
        let all_same = (0..50).all(|s| plan.decide(2, 3, s) == plan.decide(3, 2, s));
        assert!(!all_same, "directed links must not share a stream");
    }

    #[test]
    fn drop_rate_is_respected() {
        let mut plan = FaultPlan::reliable(5);
        plan.default_link = LinkProfile {
            drop: 0.25,
            duplicate: 0.0,
            max_extra_delay: 0,
        };
        let dropped = (0..4000)
            .filter(|&s| plan.decide(0, 1, s).copies.is_empty())
            .count();
        let rate = dropped as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.04, "drop rate {rate}");
    }

    #[test]
    fn lossy_net_reliable_plan_delivers_everything() {
        let mut net: LossyNet<u32> = LossyNet::new(FaultPlan::reliable(1));
        for i in 0..10 {
            net.send(0, 1, i, i as u32);
        }
        let mut got = Vec::new();
        while let Some((_, env)) = net.pop() {
            got.push(env.payload);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(net.stats().delivered, 10);
        assert_eq!(net.stats().dropped, 0);
    }

    #[test]
    fn lossy_net_same_seed_same_stats() {
        let mut plan = FaultPlan::reliable(0xFA57);
        plan.default_link = LinkProfile {
            drop: 0.2,
            duplicate: 0.2,
            max_extra_delay: 4,
        };
        let run = |plan: &FaultPlan| {
            let mut net: LossyNet<u64> = LossyNet::new(plan.clone());
            for i in 0..200 {
                net.send((i % 4) as NodeId, ((i + 1) % 4) as NodeId, 1, i);
            }
            let mut order = Vec::new();
            while let Some((t, env)) = net.pop() {
                order.push((t, env.from, env.to, env.payload));
            }
            (*net.stats(), order)
        };
        assert_eq!(run(&plan), run(&plan));
    }

    #[test]
    fn link_cuts_and_partitions_sever_traffic() {
        let mut plan = FaultPlan::reliable(3);
        plan.cuts.push(LinkCut {
            a: 0,
            b: 1,
            from: 0,
            until: 10,
        });
        plan.partitions.push(PartitionWindow {
            island: vec![2],
            from: 0,
            until: 10,
        });
        assert!(!plan.link_up(5, 0, 1));
        assert!(!plan.link_up(5, 1, 0), "cuts are undirected");
        assert!(plan.link_up(10, 0, 1), "cut heals");
        assert!(!plan.link_up(5, 2, 3), "partition severs island links");
        assert!(plan.link_up(5, 3, 4), "links outside the island survive");

        let mut net: LossyNet<()> = LossyNet::new(plan);
        net.send(0, 1, 1, ());
        net.send(3, 4, 1, ());
        assert_eq!(net.stats().link_dropped, 1);
        assert_eq!(net.pending(), 1);
    }

    #[test]
    fn crashed_receiver_loses_messages_but_control_survives() {
        let mut plan = FaultPlan::reliable(4);
        plan.crashes.push(CrashEvent {
            broker: 1,
            at: 0,
            restart_at: 100,
        });
        assert!(plan.crashed(0, 1));
        assert!(!plan.crashed(100, 1), "restart ends the window");
        let mut net: LossyNet<&str> = LossyNet::new(plan);
        net.send(0, 1, 5, "lost");
        net.schedule(1, 6, "control");
        let (t, env) = net.pop().unwrap();
        assert_eq!((t, env.payload, env.control), (6, "control", true));
        assert_eq!(net.pop(), None);
        assert_eq!(net.stats().crash_dropped, 1);
    }

    #[test]
    fn fault_stats_merge_sums_fieldwise_and_default_is_identity() {
        let a = FaultStats {
            offered: 10,
            delivered: 7,
            dropped: 1,
            link_dropped: 1,
            crash_dropped: 1,
            duplicated: 2,
        };
        let b = FaultStats {
            offered: 5,
            delivered: 5,
            dropped: 0,
            link_dropped: 0,
            crash_dropped: 0,
            duplicated: 1,
        };
        let mut sum = a;
        sum.merge(&b);
        assert_eq!(
            sum,
            FaultStats {
                offered: 15,
                delivered: 12,
                dropped: 1,
                link_dropped: 1,
                crash_dropped: 1,
                duplicated: 3,
            }
        );
        // Identity and commutativity.
        let mut id = a;
        id.merge(&FaultStats::default());
        assert_eq!(id, a);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ba, sum);
    }

    #[test]
    fn tracer_records_enqueue_and_dequeue_without_perturbing_faults() {
        use std::sync::Arc;
        use subsum_telemetry::trace::Tracer;

        let mut plan = FaultPlan::reliable(0xFA57);
        plan.default_link = LinkProfile {
            drop: 0.2,
            duplicate: 0.2,
            max_extra_delay: 4,
        };

        // Baseline run without a tracer.
        let mut plain: LossyNet<u64> = LossyNet::new(plan.clone());
        for i in 0..100 {
            plain.send((i % 4) as NodeId, ((i + 1) % 4) as NodeId, 1, i);
        }
        let mut plain_order = Vec::new();
        while let Some((t, env)) = plain.pop() {
            plain_order.push((t, env.from, env.to, env.payload));
        }

        // Traced run: every message gets its own sampled trace.
        let tracer = Arc::new(Tracer::new(4, 1024, 7, 1));
        let mut traced: LossyNet<u64> = LossyNet::new(plan);
        traced.set_tracer(Arc::clone(&tracer));
        for i in 0..100 {
            let ctx = tracer.new_root();
            traced.send_traced((i % 4) as NodeId, ((i + 1) % 4) as NodeId, 1, ctx, i);
        }
        let mut traced_order = Vec::new();
        while let Some((t, env)) = traced.pop() {
            assert!(env.trace.trace.is_traced());
            assert_ne!(env.trace.parent, 0, "parent re-pointed at dequeue span");
            traced_order.push((t, env.from, env.to, env.payload));
        }

        assert_eq!(
            plain.stats(),
            traced.stats(),
            "tracing must not perturb faults"
        );
        assert_eq!(plain_order, traced_order);

        let spans = tracer.spans();
        let count = |k: SpanKind| spans.iter().filter(|s| s.kind == k).count() as u64;
        let stats = traced.stats();
        assert_eq!(
            count(SpanKind::Enqueue),
            stats.offered - stats.dropped - stats.link_dropped
        );
        assert_eq!(count(SpanKind::Drop), stats.dropped + stats.link_dropped);
        assert_eq!(count(SpanKind::Dup), stats.duplicated);
        assert_eq!(count(SpanKind::Dequeue), stats.delivered);
    }

    #[test]
    fn tracer_records_crash_drop_at_the_dead_receiver() {
        use std::sync::Arc;
        use subsum_telemetry::trace::Tracer;

        let mut plan = FaultPlan::reliable(4);
        plan.crashes.push(CrashEvent {
            broker: 1,
            at: 0,
            restart_at: 100,
        });
        let tracer = Arc::new(Tracer::new(2, 64, 1, 1));
        let mut net: LossyNet<&str> = LossyNet::new(plan);
        net.set_tracer(Arc::clone(&tracer));
        net.send_traced(0, 1, 5, tracer.new_root(), "lost");
        assert_eq!(net.pop(), None);
        let spans = tracer.spans();
        assert!(spans
            .iter()
            .any(|s| s.kind == SpanKind::CrashDrop && s.broker == 1));
    }

    #[test]
    fn untraced_context_records_no_spans() {
        use std::sync::Arc;
        use subsum_telemetry::trace::Tracer;

        let tracer = Arc::new(Tracer::new(2, 64, 1, 1));
        let mut net: LossyNet<u8> = LossyNet::new(FaultPlan::reliable(1));
        net.set_tracer(Arc::clone(&tracer));
        net.send(0, 1, 1, 42);
        let (_, env) = net.pop().unwrap();
        assert_eq!(env.trace, TraceCtx::NONE);
        assert!(tracer.spans().is_empty());
    }

    #[test]
    fn duplication_injects_extra_copies() {
        let mut plan = FaultPlan::reliable(11);
        plan.default_link = LinkProfile {
            drop: 0.0,
            duplicate: 1.0,
            max_extra_delay: 0,
        };
        let mut net: LossyNet<u8> = LossyNet::new(plan);
        net.send(0, 1, 1, 9);
        assert_eq!(net.pending(), 2);
        assert_eq!(net.stats().duplicated, 1);
    }
}
