//! A minimal deterministic discrete-event queue.
//!
//! The propagation and routing algorithms of the paper are round- or
//! message-driven; [`EventQueue`] sequences their message deliveries
//! deterministically: events pop in timestamp order, ties resolving in
//! insertion (FIFO) order, so every simulation run is exactly
//! reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A timestamped entry in the queue.
#[derive(Debug)]
struct Scheduled<M> {
    time: u64,
    seq: u64,
    payload: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic earliest-first event queue.
///
/// # Example
///
/// ```
/// use subsum_net::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(5, "late");
/// q.push(1, "early");
/// q.push(5, "late-but-first-inserted-of-its-tick");
/// assert_eq!(q.pop(), Some((1, "early")));
/// assert_eq!(q.pop(), Some((5, "late")));
/// ```
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Scheduled<M>>,
    next_seq: u64,
    now: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `payload` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before the last popped event).
    pub fn push(&mut self, time: u64, payload: M) {
        assert!(time >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Schedules `payload` `delay` ticks after the current time.
    ///
    /// The addition saturates, so a huge delay (e.g. `u64::MAX` from a
    /// fault plan's "never" sentinel) schedules at the end of time
    /// instead of panicking on overflow in debug builds.
    pub fn push_after(&mut self, delay: u64, payload: M) {
        self.push(self.now.saturating_add(delay), payload);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(u64, M)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.payload))
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3, 'c');
        q.push(1, 'a');
        q.push(2, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, m)| m)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_within_a_tick() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(7, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, m)| m)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.push(5, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 5);
        q.push_after(2, ());
        assert_eq!(q.pop().unwrap().0, 7);
    }

    #[test]
    fn push_after_saturates_instead_of_overflowing() {
        let mut q = EventQueue::new();
        q.push(5, 'a');
        q.pop();
        q.push_after(u64::MAX, 'z');
        assert_eq!(q.pop(), Some((u64::MAX, 'z')));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.push(5, ());
        q.pop();
        q.push(3, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
