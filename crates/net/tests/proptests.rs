//! Property-based tests for the overlay graph algorithms.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_net::{EventQueue, Topology};

fn random_topology(seed: u64, n: usize, extra: usize) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    Topology::random_connected(n.max(2), extra, &mut rng)
}

proptest! {
    /// BFS distances are symmetric, zero on the diagonal and satisfy the
    /// triangle inequality.
    #[test]
    fn distances_are_a_metric(seed in 0u64..1000, n in 2usize..30, extra in 0usize..10) {
        let t = random_topology(seed, n, extra);
        let d = t.all_pairs_distances();
        let n = t.len();
        for a in 0..n {
            prop_assert_eq!(d[a][a], 0);
            for b in 0..n {
                prop_assert_eq!(d[a][b], d[b][a]);
                for c in 0..n {
                    prop_assert!(d[a][c] <= d[a][b] + d[b][c]);
                }
            }
        }
    }

    /// Spanning-tree paths to the root have exactly the BFS length, and
    /// every non-root node has a parent one hop closer to the root.
    #[test]
    fn spanning_tree_is_shortest(seed in 0u64..1000, n in 2usize..30,
                                 extra in 0usize..10, root_pick in 0usize..30) {
        let t = random_topology(seed, n, extra);
        let root = (root_pick % t.len()) as u16;
        let parent = t.shortest_path_tree(root);
        let dist = t.distances(root);
        for v in 0..t.len() as u16 {
            let path = Topology::path_to_root(&parent, v);
            prop_assert_eq!(path.len() as u32, dist[v as usize] + 1);
            prop_assert_eq!(*path.last().unwrap(), root);
            if let Some(p) = parent[v as usize] {
                prop_assert_eq!(dist[p as usize] + 1, dist[v as usize]);
                prop_assert!(t.neighbors(v).contains(&p));
            } else {
                prop_assert_eq!(v, root);
            }
        }
    }

    /// Multicast subtree size is bounded below by the farthest target and
    /// above by both the sum of distances and the total edge budget.
    #[test]
    fn multicast_bounds(seed in 0u64..1000, n in 2usize..30,
                        targets in proptest::collection::vec(0usize..30, 1..8)) {
        let t = random_topology(seed, n, 3);
        let root = 0u16;
        let parent = t.shortest_path_tree(root);
        let dist = t.distances(root);
        let targets: Vec<u16> = targets.iter().map(|&x| (x % t.len()) as u16).collect();
        let edges = Topology::multicast_edges(&parent, &targets);
        let max_d = targets.iter().map(|&v| dist[v as usize]).max().unwrap() as usize;
        let sum_d: usize = {
            let mut uniq = targets.clone();
            uniq.sort_unstable();
            uniq.dedup();
            uniq.iter().map(|&v| dist[v as usize] as usize).sum()
        };
        prop_assert!(edges >= max_d);
        prop_assert!(edges <= sum_d);
        prop_assert!(edges < t.len());
    }

    /// The degree-descending order is genuinely sorted.
    #[test]
    fn degree_order_sorted(seed in 0u64..1000, n in 2usize..40) {
        let t = random_topology(seed, n, n / 3);
        let order = t.by_degree_desc();
        prop_assert_eq!(order.len(), t.len());
        for w in order.windows(2) {
            let (a, b) = (t.degree(w[0]), t.degree(w[1]));
            prop_assert!(a > b || (a == b && w[0] < w[1]));
        }
    }

    /// The event queue is a stable priority queue.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0u64..50, 1..60)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut popped: Vec<(u64, usize)> = Vec::new();
        while let Some(x) = q.pop() {
            popped.push(x);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    /// Edge iteration is consistent with degrees.
    #[test]
    fn handshake_lemma(seed in 0u64..1000, n in 2usize..40) {
        let t = random_topology(seed, n, n / 2);
        let degree_sum: usize = (0..t.len() as u16).map(|v| t.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * t.edge_count());
    }
}
