//! Two-daemon loopback integration: the full client → daemon → peer
//! daemon → client path over real TCP sockets, plus the reconnect
//! guarantee (a restarted peer reconverges via digest comparison and a
//! single pull, not a full re-send), plus the same flow driven through
//! the actual `subsumd` binary with telemetry dumps.

use std::time::{Duration, Instant};

use subsum_transport::{Client, DaemonConfig, DaemonHandle, Subsumd};
use subsum_types::{stock_schema, BrokerId, Event, NumOp, Subscription};

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

fn cheap_sub() -> Subscription {
    Subscription::builder(&stock_schema())
        .num("price", NumOp::Lt, 10.0)
        .unwrap()
        .build()
        .unwrap()
}

fn cheap_event(price: f64) -> Event {
    Event::builder(&stock_schema())
        .num("price", price)
        .unwrap()
        .build()
}

/// Starts broker 0 (listen only) and broker 1 (dials broker 0), and
/// waits for the initial handshake to converge both directions.
fn start_pair() -> (DaemonHandle, DaemonHandle) {
    let a = Subsumd::start(DaemonConfig::new(BrokerId(0), stock_schema())).unwrap();
    let mut config_b = DaemonConfig::new(BrokerId(1), stock_schema());
    config_b.dial = vec![(BrokerId(0), a.addr())];
    let b = Subsumd::start(config_b).unwrap();
    // Fresh daemons have no views, so the first handshake pulls an
    // (empty) summary in both directions.
    wait_for("initial handshake", || {
        a.stats().summaries_rx.get() >= 1 && b.stats().summaries_rx.get() >= 1
    });
    (a, b)
}

#[test]
fn subscribe_propagate_publish_deliver_ack() {
    let (a, b) = start_pair();

    // Subscribe on A; the updated summary is eagerly pushed to B.
    let mut client_a = Client::connect(a.addr()).unwrap();
    let summaries_at_b = b.stats().summaries_rx.get();
    let sub_id = client_a.subscribe(&cheap_sub()).unwrap();
    assert_eq!(sub_id.broker, BrokerId(0));
    wait_for("summary propagation to B", || {
        b.stats().summaries_rx.get() > summaries_at_b
    });

    // Publish on B an event that matches A's subscription.
    let mut client_b = Client::connect(b.addr()).unwrap();
    let ack = client_b.publish(&cheap_event(5.0)).unwrap();
    assert!(ack.accepted, "publish must be accepted");
    assert_eq!(ack.matched, 0, "no local subscribers at B");

    // The event crosses B → A and reaches A's client.
    let (id, event) = client_a
        .poll_delivery(Duration::from_secs(10))
        .unwrap()
        .expect("delivery must arrive at A's client");
    assert_eq!(id, sub_id);
    assert_eq!(event, cheap_event(5.0));
    assert_eq!(a.stats().deliveries.get(), 1);

    // A non-matching publish is acked but never delivered.
    let ack = client_b.publish(&cheap_event(50.0)).unwrap();
    assert!(ack.accepted);
    assert!(client_a
        .poll_delivery(Duration::from_millis(200))
        .unwrap()
        .is_none());

    // Local delivery on the publishing daemon works too.
    let sub_b = client_b.subscribe(&cheap_sub()).unwrap();
    assert_eq!(sub_b.broker, BrokerId(1));
    let ack = client_b.publish(&cheap_event(3.0)).unwrap();
    assert_eq!(ack.matched, 1, "B now has a local subscriber");
    let (id, _) = client_b.next_delivery().unwrap();
    assert_eq!(id, sub_b);

    client_a.shutdown().unwrap();
    client_b.shutdown().unwrap();
    a.join();
    b.join();
}

#[test]
fn restarted_peer_reconverges_via_digest_pull_not_resend() {
    let (a, b) = start_pair();

    // Give both daemons nonempty summaries.
    let mut client_a = Client::connect(a.addr()).unwrap();
    let sub_id = client_a.subscribe(&cheap_sub()).unwrap();
    let mut client_b = Client::connect(b.addr()).unwrap();
    client_b.subscribe(&cheap_sub()).unwrap();
    wait_for("cross-propagation of both summaries", || {
        a.stats().summaries_rx.get() >= 2 && b.stats().summaries_rx.get() >= 2
    });

    // Cleanly stop B, capturing its durable checkpoint.
    let resyncs_at_a = a.stats().resyncs.get();
    client_b.shutdown().unwrap();
    let fin = b.join();
    assert_eq!(fin.checkpoint.subs.len(), 1);

    // Restart B from the checkpoint: same broker id, same durable
    // state, fresh port, fresh epoch.
    let mut config_b = DaemonConfig::new(BrokerId(1), stock_schema());
    config_b.dial = vec![(BrokerId(0), a.addr())];
    config_b.checkpoint = Some(fin.checkpoint);
    let b2 = Subsumd::start(config_b).unwrap();

    // B' lost its view of A, so it pulls A's summary — exactly once.
    wait_for("restarted peer pulling A's summary", || {
        b2.stats().summaries_rx.get() >= 1
    });
    assert_eq!(
        b2.stats().resyncs.get(),
        1,
        "B' pulls because its views are gone"
    );

    // The checkpoint rebuilt B's summary digest-identically, so A saw a
    // matching digest in B's Hello: no pull, no full summary from B'.
    assert_eq!(
        a.stats().resyncs.get(),
        resyncs_at_a,
        "A's stored view matches the restarted peer's digest"
    );
    assert_eq!(
        b2.stats().summaries_tx.get(),
        0,
        "the restarted peer re-joined without re-sending its summary"
    );

    // Reconvergence is functional: publish on B' still reaches A.
    let mut client_b2 = Client::connect(b2.addr()).unwrap();
    let ack = client_b2.publish(&cheap_event(1.0)).unwrap();
    assert!(ack.accepted);
    let (id, _) = client_a
        .poll_delivery(Duration::from_secs(10))
        .unwrap()
        .expect("delivery after restart");
    assert_eq!(id, sub_id);

    client_a.shutdown().unwrap();
    client_b2.shutdown().unwrap();
    a.join();
    b2.join();
}

/// The same loopback flow through the real `subsumd` binary: two
/// processes, ephemeral ports, clean shutdown, telemetry dumps on disk.
/// CI's `transport-smoke` job greps the dumps for nonzero
/// `transport.frames_rx` and `publish.acked`.
#[test]
fn subsumd_binary_two_process_loopback() {
    use std::io::BufRead;
    use std::process::{Child, Command, Stdio};

    let tmp = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(tmp).unwrap();
    let dump_a = tmp.join("subsumd-b0.json");
    let dump_b = tmp.join("subsumd-b1.json");
    let _ = std::fs::remove_file(&dump_a);
    let _ = std::fs::remove_file(&dump_b);

    fn spawn_daemon(args: &[&str]) -> (Child, std::net::SocketAddr) {
        let mut child = Command::new(env!("CARGO_BIN_EXE_subsumd"))
            .args(args)
            .stdout(Stdio::piped())
            .spawn()
            .unwrap();
        // First stdout line: "subsumd broker N listening on ADDR".
        let stdout = child.stdout.take().unwrap();
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .unwrap();
        let addr = line
            .rsplit(' ')
            .next()
            .and_then(|a| a.trim().parse().ok())
            .unwrap_or_else(|| panic!("unparseable listen line {line:?}"));
        (child, addr)
    }

    let (mut proc_a, addr_a) = spawn_daemon(&[
        "--broker",
        "0",
        "--listen",
        "127.0.0.1:0",
        "--telemetry-json",
        dump_a.to_str().unwrap(),
    ]);
    let dial = format!("0={addr_a}");
    let (mut proc_b, addr_b) = spawn_daemon(&[
        "--broker",
        "1",
        "--listen",
        "127.0.0.1:0",
        "--dial",
        &dial,
        "--telemetry-json",
        dump_b.to_str().unwrap(),
    ]);

    let mut client_a = Client::connect(addr_a).unwrap();
    let sub_id = client_a.subscribe(&cheap_sub()).unwrap();
    // No cross-process stats to poll; the publish below retries until
    // the summary has propagated and the delivery arrives.
    let mut client_b = Client::connect(addr_b).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let delivered = loop {
        let ack = client_b.publish(&cheap_event(5.0)).unwrap();
        assert!(ack.accepted);
        if let Some(d) = client_a.poll_delivery(Duration::from_millis(100)).unwrap() {
            break d;
        }
        assert!(
            Instant::now() < deadline,
            "delivery never crossed the processes"
        );
    };
    assert_eq!(delivered.0, sub_id);

    client_a.shutdown().unwrap();
    client_b.shutdown().unwrap();
    assert!(proc_a.wait().unwrap().success());
    assert!(proc_b.wait().unwrap().success());

    // The dumps exist and carry the counters CI greps for.
    fn counter_value(report: &str, name: &str) -> u64 {
        let key = format!("\"{name}\":");
        let at = report
            .find(&key)
            .unwrap_or_else(|| panic!("counter {name} missing from dump: {report}"));
        report[at + key.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| panic!("counter {name} not numeric in dump: {report}"))
    }
    let report_a = std::fs::read_to_string(&dump_a).unwrap();
    let report_b = std::fs::read_to_string(&dump_b).unwrap();
    assert!(counter_value(&report_a, "transport.frames_rx") > 0);
    assert!(counter_value(&report_b, "transport.frames_rx") > 0);
    assert!(counter_value(&report_b, "publish.acked") > 0);
}
