//! Robustness of the frame and message decoders against adversarial
//! byte streams: arbitrary garbage, truncations, corrupt length
//! prefixes, and every possible chunking of a valid stream. Decoding
//! must return an error or a valid frame — never panic, never diverge
//! between incremental and one-shot decoding.

use proptest::prelude::*;

use subsum_transport::frame::{decode_all, encode_frame, FrameDecoder, MAX_PAYLOAD};
use subsum_transport::Msg;

/// A stream of 1–6 valid frames with proptest-chosen kinds/payloads.
fn valid_stream(frames: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (kind, payload) in frames {
        out.extend_from_slice(&encode_frame(*kind, payload).expect("payload within bound"));
    }
    out
}

proptest! {
    /// Arbitrary bytes never panic the one-shot decoder.
    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decode_all(&bytes);
    }

    /// Arbitrary bytes fed in arbitrary chunks never panic the
    /// incremental decoder, and it reports exactly what the one-shot
    /// decoder reports.
    #[test]
    fn random_chunked_matches_one_shot(
        bytes in proptest::collection::vec(any::<u8>(), 0..1024),
        cuts in proptest::collection::vec(0usize..1025, 0..8),
    ) {
        let mut offsets: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
        offsets.push(0);
        offsets.push(bytes.len());
        offsets.sort_unstable();

        let mut dec = FrameDecoder::new();
        let mut inc_frames = Vec::new();
        let mut inc_err = None;
        'outer: for w in offsets.windows(2) {
            dec.feed(&bytes[w[0]..w[1]]);
            loop {
                match dec.next_frame() {
                    Ok(Some(f)) => inc_frames.push(f),
                    Ok(None) => break,
                    Err(e) => { inc_err = Some(e); break 'outer; }
                }
            }
        }

        match decode_all(&bytes) {
            Ok((frames, rest)) => {
                prop_assert_eq!(inc_err, None);
                prop_assert_eq!(inc_frames, frames);
                prop_assert_eq!(dec.buffered(), rest);
            }
            Err(e) => {
                prop_assert_eq!(inc_err, Some(e));
            }
        }
    }

    /// A valid multi-frame stream split at EVERY boundary decodes to
    /// the same frames as one-shot decoding, regardless of where the
    /// split lands (mid-header, mid-payload, between frames).
    #[test]
    fn every_split_of_valid_stream_is_equivalent(
        frames in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64)), 1..5),
    ) {
        let stream = valid_stream(&frames);
        let (expect, rest) = decode_all(&stream).expect("valid stream");
        prop_assert_eq!(rest, 0);
        prop_assert_eq!(expect.len(), frames.len());

        for split in 0..=stream.len() {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for chunk in [&stream[..split], &stream[split..]] {
                dec.feed(chunk);
                while let Some(f) = dec.next_frame().expect("valid stream") {
                    got.push(f);
                }
            }
            prop_assert_eq!(&got, &expect, "split at {}", split);
        }
    }

    /// Every truncation of a valid stream yields a frame prefix and a
    /// leftover count — never an error, never a panic, never a frame
    /// invented from incomplete bytes.
    #[test]
    fn truncations_yield_clean_prefixes(
        frames in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..48)), 1..4),
        cut_frac in 0.0f64..1.0,
    ) {
        let stream = valid_stream(&frames);
        let (all, _) = decode_all(&stream).expect("valid stream");
        let cut = ((stream.len() as f64) * cut_frac) as usize;
        let (prefix, rest) = decode_all(&stream[..cut]).expect("truncation is not corruption");
        prop_assert!(prefix.len() <= all.len());
        prop_assert_eq!(&all[..prefix.len()], &prefix[..]);
        // Every byte is accounted for: consumed by frames or leftover.
        let consumed: usize = prefix.iter().map(|f| 8 + f.payload.len()).sum();
        prop_assert_eq!(consumed + rest, cut);
    }

    /// A corrupted length prefix errors (or shortens the stream) but
    /// never panics and never yields an oversized frame.
    #[test]
    fn corrupt_length_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        corrupt_len in any::<u32>(),
    ) {
        let mut bytes = encode_frame(9, &payload).expect("payload within bound");
        bytes[4..8].copy_from_slice(&corrupt_len.to_be_bytes());
        if let Ok((frames, _)) = decode_all(&bytes) {
            for f in frames {
                prop_assert!(f.payload.len() <= MAX_PAYLOAD);
            }
        }
    }

    /// Message parsing survives arbitrary (kind, payload) pairs.
    #[test]
    fn msg_decode_never_panics(
        kind in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = Msg::decode(kind, &payload);
    }

    /// Truncating a valid message payload errors without panicking.
    #[test]
    fn msg_truncation_never_panics(kind in 1u8..22, cut_frac in 0.0f64..1.0) {
        // Hand-build a deliberately generous payload and cut it; decode
        // must reject or succeed, never panic, for every message kind.
        let payload = [0x00u8, 0x01, 0x00, 0x02, 0x00, 0x03, 0x41, 0x42, 0x43, 0x44]
            .repeat(8);
        let cut = ((payload.len() as f64) * cut_frac) as usize;
        let _ = Msg::decode(kind, &payload[..cut]);
    }
}
