//! Per-connection session plumbing: bounded outbound mailboxes with an
//! explicit backpressure policy, and the writer threads that drain them
//! onto sockets.
//!
//! Every connection a daemon holds — peer or client — writes through a
//! [`Mailbox`]: a bounded queue of encoded frames drained by one writer
//! thread per socket. The bound is the backpressure mechanism; what
//! happens when it is hit is the [`BackpressurePolicy`]:
//!
//! * [`Block`](BackpressurePolicy::Block) — the sender stalls until the
//!   writer catches up. Lossless, but a slow peer slows the daemon's
//!   event loop (classic head-of-line blocking).
//! * [`Reject`](BackpressurePolicy::Reject) — the send fails
//!   immediately and the frame is dropped. The daemon stays responsive;
//!   the caller sees [`SendOutcome::Rejected`] and surfaces it (a
//!   rejected peer forward turns the client's `PublishAck` into
//!   `accepted: false`; summary-layer losses are repaired by
//!   anti-entropy, exactly as under the simulator's fault plans).
//!
//! Either way the `net.mailbox_full` counter records each full-queue
//! encounter, so saturation is visible in telemetry before it becomes
//! an outage.

use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use subsum_telemetry::{names, Count, Counter};

static CNT_FRAMES_TX: Count = Count::new(names::TRANSPORT_FRAMES_TX);
static CNT_BYTES_TX: Count = Count::new(names::TRANSPORT_BYTES_TX);
static CNT_MAILBOX_FULL: Count = Count::new(names::NET_MAILBOX_FULL);

/// What a daemon does when a peer's outbound mailbox is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Stall the sender until the writer drains a slot (lossless).
    Block,
    /// Drop the frame and report [`SendOutcome::Rejected`] (lossy but
    /// non-blocking). The default: matches the simulator's lossy-link
    /// model, and the summary layer already repairs losses.
    #[default]
    Reject,
}

/// Result of posting a frame to a [`Mailbox`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The frame was queued for the writer.
    Sent,
    /// The mailbox was full under [`BackpressurePolicy::Reject`]; the
    /// frame was dropped.
    Rejected,
    /// The writer is gone (socket closed or writer thread exited).
    Disconnected,
}

/// A bounded outbound queue of encoded frames, drained by one writer
/// thread per socket.
#[derive(Debug, Clone)]
pub struct Mailbox {
    tx: SyncSender<Vec<u8>>,
    policy: BackpressurePolicy,
}

impl Mailbox {
    /// Creates a mailbox bounded at `capacity` frames, returning the
    /// receiving end for a writer thread.
    pub fn new(capacity: usize, policy: BackpressurePolicy) -> (Mailbox, Receiver<Vec<u8>>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
        (Mailbox { tx, policy }, rx)
    }

    /// The policy in force.
    pub fn policy(&self) -> BackpressurePolicy {
        self.policy
    }

    /// Posts one encoded frame.
    ///
    /// Under [`BackpressurePolicy::Block`] this blocks while the
    /// mailbox is full; under [`BackpressurePolicy::Reject`] a full
    /// mailbox drops the frame. Both record `net.mailbox_full` when
    /// the bound is hit.
    pub fn send(&self, frame_bytes: Vec<u8>) -> SendOutcome {
        match self.tx.try_send(frame_bytes) {
            Ok(()) => SendOutcome::Sent,
            Err(TrySendError::Disconnected(_)) => SendOutcome::Disconnected,
            Err(TrySendError::Full(bytes)) => {
                CNT_MAILBOX_FULL.inc();
                match self.policy {
                    BackpressurePolicy::Reject => SendOutcome::Rejected,
                    BackpressurePolicy::Block => match self.tx.send(bytes) {
                        Ok(()) => SendOutcome::Sent,
                        Err(_) => SendOutcome::Disconnected,
                    },
                }
            }
        }
    }
}

/// Per-daemon transmit counters, mirrored locally so tests can assert
/// on one daemon's traffic (the global [`Count`] statics aggregate
/// across every daemon in the process).
#[derive(Debug, Default)]
pub struct TxStats {
    /// Frames written to this daemon's sockets.
    pub frames_tx: Counter,
    /// Bytes written to this daemon's sockets.
    pub bytes_tx: Counter,
}

/// Spawns the writer thread for one socket: drains `rx` and writes each
/// frame to `stream` until the mailbox closes or the socket errors.
pub fn spawn_writer(
    mut stream: TcpStream,
    rx: Receiver<Vec<u8>>,
    stats: Arc<TxStats>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while let Ok(frame) = rx.recv() {
            if stream.write_all(&frame).is_err() {
                // Reader side notices the broken socket and tears the
                // session down; the writer just stops draining.
                return;
            }
            CNT_FRAMES_TX.inc();
            CNT_BYTES_TX.add(frame.len() as u64);
            stats.frames_tx.inc();
            stats.bytes_tx.add(frame.len() as u64);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_policy_drops_when_full() {
        let (mb, rx) = Mailbox::new(2, BackpressurePolicy::Reject);
        assert_eq!(mb.send(vec![1]), SendOutcome::Sent);
        assert_eq!(mb.send(vec![2]), SendOutcome::Sent);
        assert_eq!(mb.send(vec![3]), SendOutcome::Rejected);
        assert_eq!(rx.recv().unwrap(), vec![1]);
        // One slot free again.
        assert_eq!(mb.send(vec![4]), SendOutcome::Sent);
        drop(rx);
        assert_eq!(mb.send(vec![5]), SendOutcome::Disconnected);
    }

    #[test]
    fn block_policy_waits_for_drain() {
        let (mb, rx) = Mailbox::new(1, BackpressurePolicy::Block);
        assert_eq!(mb.send(vec![1]), SendOutcome::Sent);
        let drainer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            (rx.recv().unwrap(), rx.recv().unwrap())
        });
        // Full; blocks until the drainer frees the slot.
        assert_eq!(mb.send(vec![2]), SendOutcome::Sent);
        assert_eq!(drainer.join().unwrap(), (vec![1], vec![2]));
    }
}
