//! [`TcpTransport`]: the broker [`Transport`] seam over real sockets.
//!
//! The deterministic simulator (`LossyNet`) and this fabric implement
//! the same trait, so protocol drivers — [`ChaosRun::run_with`]
//! (`subsum_broker::ChaosRun`) included — run unmodified over TCP
//! loopback. The mapping:
//!
//! * **Links** — every ordered broker pair gets one TCP connection,
//!   established up front; frames preserve per-link ordering exactly as
//!   the trait contract requires, and the OS supplies loss (connection
//!   breaks) instead of a seeded fault plan.
//! * **Time** — the transport clock ticks once per delivered envelope.
//!   Transit delays are ignored (the wire is as fast as it is); they
//!   only order *scheduled control events* relative to each other.
//! * **Control events** — [`Transport::schedule`] never touches a
//!   socket: control envelopes sit in a local priority queue and fire
//!   when the sockets go quiet, mirroring the simulator's rule that
//!   timers outlive partitions and crashes.
//! * **Quiescence** — `recv` returns `None` after the sockets have been
//!   silent for the configured quiet window with no control events
//!   pending. A real daemon never wants quiescence (it serves forever);
//!   this fabric exists to run *bounded scenarios* over sockets, where
//!   "the run ended" must be observable.
//!
//! Messages cross sockets through a [`MsgCodec`], which also decides
//! which messages are wire-worthy at all: simulation-only control
//! variants (e.g. `ChaosMsg::Crash`) encode to `None` and simply never
//! leave the process.

use std::collections::{BTreeMap, BinaryHeap};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use subsum_broker::Transport;
use subsum_net::{Envelope, FaultStats, NodeId};
use subsum_telemetry::trace::TraceCtx;
use subsum_telemetry::{names, Count};

use crate::frame::FrameDecoder;
use crate::msg::MsgError;
use crate::session::{spawn_writer, BackpressurePolicy, Mailbox, TxStats};

static CNT_FRAMES_RX: Count = Count::new(names::TRANSPORT_FRAMES_RX);
static CNT_BYTES_RX: Count = Count::new(names::TRANSPORT_BYTES_RX);
static CNT_DECODE_ERRORS: Count = Count::new(names::TRANSPORT_DECODE_ERRORS);

/// Identifies the dialing node on a fresh fabric link; the only frame
/// kind the fabric itself owns (message kinds start at 1).
const KIND_LINK_ID: u8 = 0;

/// Encodes protocol messages onto frames and back.
///
/// `encode` returns `None` for messages that must never cross a socket
/// (simulation-only control events); [`TcpTransport::send`] silently
/// drops them, exactly as a simulator tick that nobody observes.
pub trait MsgCodec<M>: Send + Sync {
    /// Serializes `msg` as a frame kind and payload, or `None` if the
    /// message is not wire-worthy.
    fn encode(&self, msg: &M) -> Option<(u8, Vec<u8>)>;

    /// Parses a message from a frame kind and payload.
    ///
    /// # Errors
    ///
    /// Returns [`MsgError`] on an unknown kind or malformed payload.
    fn decode(&self, kind: u8, payload: &[u8]) -> Result<M, MsgError>;
}

/// A scheduled control event, ordered by (time, insertion sequence) so
/// equal-time events fire in schedule order.
struct Scheduled<M> {
    at: u64,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// An all-pairs TCP loopback fabric implementing [`Transport`].
///
/// See the [module docs](self) for the simulator ↔ socket mapping.
pub struct TcpTransport<M> {
    codec: Arc<dyn MsgCodec<M>>,
    /// Outbound mailbox per directed link.
    links: BTreeMap<(NodeId, NodeId), Mailbox>,
    inbox: Receiver<Envelope<M>>,
    sched: BinaryHeap<Scheduled<M>>,
    now: u64,
    seq: u64,
    quiet: Duration,
    stats: FaultStats,
    tx_stats: Arc<TxStats>,
    /// Writer and reader threads; joined on drop by closing mailboxes.
    threads: Vec<JoinHandle<()>>,
}

impl<M> std::fmt::Debug for TcpTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("nodes_links", &self.links.len())
            .field("now", &self.now)
            .field("pending_control", &self.sched.len())
            .finish_non_exhaustive()
    }
}

impl<M: Send + 'static> TcpTransport<M> {
    /// Builds a fully connected loopback fabric over `nodes` brokers.
    ///
    /// Binds one ephemeral listener per node, dials every ordered pair,
    /// and spawns one reader and one writer thread per connection.
    /// `quiet` is the socket-silence window after which pending control
    /// events fire (and, with none pending, `recv` reports quiescence).
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding, dialing or accepting.
    pub fn connect(
        nodes: u16,
        codec: Arc<dyn MsgCodec<M>>,
        quiet: Duration,
    ) -> std::io::Result<TcpTransport<M>> {
        let (inbox_tx, inbox) = std::sync::mpsc::channel();
        let mut listeners = Vec::with_capacity(usize::from(nodes));
        for _ in 0..nodes {
            listeners.push(TcpListener::bind("127.0.0.1:0")?);
        }
        let addrs: Vec<_> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<std::io::Result<_>>()?;

        let tx_stats = Arc::new(TxStats::default());
        let mut links = BTreeMap::new();
        let mut threads = Vec::new();
        for from in 0..nodes {
            for to in 0..nodes {
                if from == to {
                    continue;
                }
                // Dial `from → to`, announce the dialer, then hand the
                // accepted side to a reader thread at `to`.
                let out = TcpStream::connect(addrs[usize::from(to)])?;
                let (accepted, _) = listeners[usize::from(to)].accept()?;
                let preamble = crate::frame::encode_frame(KIND_LINK_ID, &from.to_be_bytes())
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                let (mailbox, rx) = Mailbox::new(1024, BackpressurePolicy::Block);
                // The preamble is first in the mailbox, so it is first
                // on the wire.
                mailbox.send(preamble);
                threads.push(spawn_writer(out, rx, Arc::clone(&tx_stats)));
                links.insert((from, to), mailbox);

                let codec = Arc::clone(&codec);
                let inbox_tx = inbox_tx.clone();
                threads.push(std::thread::spawn(move || {
                    read_link(accepted, to, codec.as_ref(), &inbox_tx);
                }));
            }
        }
        Ok(TcpTransport {
            codec,
            links,
            inbox,
            sched: BinaryHeap::new(),
            now: 0,
            seq: 0,
            quiet,
            stats: FaultStats::default(),
            tx_stats,
            threads,
        })
    }

    /// Per-fabric transmit counters (frames/bytes written).
    pub fn tx_stats(&self) -> &TxStats {
        &self.tx_stats
    }

    /// Closes every link and joins the socket threads.
    pub fn shutdown(&mut self) {
        self.links.clear(); // drops mailboxes; writers exit, sockets close
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Reader loop for one accepted link: preamble, then framed messages
/// decoded into envelopes until the socket closes or corrupts.
fn read_link<M>(
    mut stream: TcpStream,
    to: NodeId,
    codec: &dyn MsgCodec<M>,
    inbox: &Sender<Envelope<M>>,
) {
    let mut decoder = FrameDecoder::new();
    let mut from: Option<NodeId> = None;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        CNT_BYTES_RX.add(n as u64);
        // BOUND: `read` returns at most `buf.len()`.
        decoder.feed(&buf[..n]);
        loop {
            let frame = match decoder.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => {
                    CNT_DECODE_ERRORS.inc();
                    return;
                }
            };
            CNT_FRAMES_RX.inc();
            match frame.kind {
                KIND_LINK_ID => {
                    let bytes: Option<[u8; 2]> = frame.payload.as_slice().try_into().ok();
                    match bytes {
                        Some(b) => from = Some(NodeId::from_be_bytes(b)),
                        None => {
                            CNT_DECODE_ERRORS.inc();
                            return;
                        }
                    }
                }
                kind => {
                    let Some(from) = from else {
                        // Message before the preamble: protocol violation.
                        CNT_DECODE_ERRORS.inc();
                        return;
                    };
                    match codec.decode(kind, &frame.payload) {
                        Ok(payload) => {
                            let env = Envelope {
                                from,
                                to,
                                control: false,
                                trace: TraceCtx::NONE,
                                payload,
                            };
                            if inbox.send(env).is_err() {
                                return; // transport dropped
                            }
                        }
                        Err(_) => {
                            CNT_DECODE_ERRORS.inc();
                            return;
                        }
                    }
                }
            }
        }
    }
}

impl<M: Send + 'static> Transport<M> for TcpTransport<M> {
    fn send(&mut self, from: NodeId, to: NodeId, _delay: u64, _ctx: TraceCtx, msg: M) {
        self.stats.offered += 1;
        let Some((kind, payload)) = self.codec.encode(&msg) else {
            return; // not wire-worthy (simulation-only control variant)
        };
        let Ok(bytes) = crate::frame::encode_frame(kind, &payload) else {
            self.stats.dropped += 1;
            return;
        };
        match self.links.get(&(from, to)) {
            Some(mailbox) => {
                if mailbox.send(bytes) != crate::session::SendOutcome::Sent {
                    self.stats.dropped += 1;
                }
            }
            None => self.stats.link_dropped += 1,
        }
    }

    fn schedule(&mut self, broker: NodeId, delay: u64, ctx: TraceCtx, msg: M) {
        self.seq += 1;
        self.sched.push(Scheduled {
            at: self.now.saturating_add(delay),
            seq: self.seq,
            env: Envelope {
                from: broker,
                to: broker,
                control: true,
                trace: ctx,
                payload: msg,
            },
        });
    }

    fn recv(&mut self) -> Option<(u64, Envelope<M>)> {
        match self.inbox.recv_timeout(self.quiet) {
            Ok(env) => {
                self.now += 1;
                self.stats.delivered += 1;
                Some((self.now, env))
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                // Sockets quiet: fire the earliest control event, or
                // report quiescence with none pending.
                let next = self.sched.pop()?;
                self.now = self.now.max(next.at) + 1;
                Some((self.now, next.env))
            }
        }
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn fault_stats(&self) -> FaultStats {
        self.stats
    }
}

impl<M> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        self.links.clear();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Msg;
    use subsum_types::BrokerId;

    /// The client/peer [`Msg`] protocol as a fabric codec; `Shutdown`
    /// stays local, everything else crosses the wire.
    #[derive(Debug)]
    struct MsgFabricCodec;

    impl MsgCodec<Msg> for MsgFabricCodec {
        fn encode(&self, msg: &Msg) -> Option<(u8, Vec<u8>)> {
            match msg {
                Msg::Shutdown => None,
                m => Some((m.kind(), m.encode_payload())),
            }
        }
        fn decode(&self, kind: u8, payload: &[u8]) -> Result<Msg, MsgError> {
            Msg::decode(kind, payload)
        }
    }

    #[test]
    fn frames_cross_real_sockets_in_link_order() {
        let mut net: TcpTransport<Msg> =
            TcpTransport::connect(3, Arc::new(MsgFabricCodec), Duration::from_millis(150)).unwrap();
        for seq in 0..10 {
            net.send(
                0,
                1,
                0,
                TraceCtx::NONE,
                Msg::Pull {
                    from: BrokerId(seq),
                },
            );
        }
        net.send(
            2,
            1,
            0,
            TraceCtx::NONE,
            Msg::Pull {
                from: BrokerId(100),
            },
        );
        net.send(
            1,
            2,
            0,
            TraceCtx::NONE,
            Msg::Pull {
                from: BrokerId(200),
            },
        );

        let mut per_link: BTreeMap<(NodeId, NodeId), Vec<u16>> = BTreeMap::new();
        while let Some((_, env)) = net.recv() {
            let Msg::Pull { from: tag } = env.payload else {
                panic!("unexpected message");
            };
            per_link.entry((env.from, env.to)).or_default().push(tag.0);
        }
        assert_eq!(per_link[&(0, 1)], (0..10).collect::<Vec<_>>());
        assert_eq!(per_link[&(2, 1)], vec![100]);
        assert_eq!(per_link[&(1, 2)], vec![200]);
        assert_eq!(net.fault_stats().delivered, 12);
        net.shutdown();
    }

    #[test]
    fn control_events_fire_in_time_order_after_quiet() {
        let mut net: TcpTransport<Msg> =
            TcpTransport::connect(2, Arc::new(MsgFabricCodec), Duration::from_millis(30)).unwrap();
        net.schedule(0, 50, TraceCtx::NONE, Msg::Shutdown);
        net.schedule(1, 10, TraceCtx::NONE, Msg::Pull { from: BrokerId(1) });
        let (t1, e1) = net.recv().unwrap();
        let (t2, e2) = net.recv().unwrap();
        assert!(e1.control && e2.control);
        assert_eq!((e1.to, e2.to), (1, 0));
        assert!(t1 < t2);
        assert!(net.recv().is_none());
    }

    #[test]
    fn non_wire_messages_never_cross() {
        let mut net: TcpTransport<Msg> =
            TcpTransport::connect(2, Arc::new(MsgFabricCodec), Duration::from_millis(30)).unwrap();
        net.send(0, 1, 0, TraceCtx::NONE, Msg::Shutdown);
        assert!(net.recv().is_none());
        assert_eq!(net.fault_stats().offered, 1);
        assert_eq!(net.fault_stats().delivered, 0);
    }
}
