//! Messages carried in [`crate::frame`] frames.
//!
//! The tag space splits in two: kinds `1..=6` are the **peer protocol**
//! (daemon ↔ daemon — handshake, summary propagation, anti-entropy,
//! event routing) and kinds `16..=21` are the **client protocol**
//! (client ↔ daemon — subscribe, publish, deliver). Summary payloads
//! are the `subsum-core::wire` codec bytes *unchanged*, so a summary's
//! digest is identical whether it crossed a socket or the simulator.
//!
//! Every kind constant is written by exactly one encoder arm and
//! matched by name in [`Msg::decode`]; the `cargo xtask check` wire-tag
//! lint rejects a constant missing from either side.

use subsum_core::SummaryDigest;
use subsum_types::{
    AttrMask, BrokerId, ByteReader, ByteWriter, DecodeError, Event, LocalSubId, Subscription,
    SubscriptionId,
};

use crate::frame::{encode_frame, Frame, FrameError};

/// Peer protocol: connection handshake (carried on every fresh dial,
/// including reconnects).
pub const KIND_HELLO: u8 = 1;
/// Peer protocol: handshake reply.
pub const KIND_HELLO_ACK: u8 = 2;
/// Peer protocol: full summary push (wire-codec bytes).
pub const KIND_SUMMARY: u8 = 3;
/// Peer protocol: anti-entropy digest advertisement.
pub const KIND_DIGEST: u8 = 4;
/// Peer protocol: request a full summary after a digest mismatch.
pub const KIND_PULL: u8 = 5;
/// Peer protocol: an event routed toward a broker whose summary matched.
pub const KIND_ROUTE: u8 = 6;

/// Client protocol: register a subscription.
pub const KIND_SUBSCRIBE: u8 = 16;
/// Client protocol: subscription accepted, id assigned.
pub const KIND_SUBSCRIBE_ACK: u8 = 17;
/// Client protocol: publish an event.
pub const KIND_PUBLISH: u8 = 18;
/// Client protocol: publish outcome (accept/reject + local match count).
pub const KIND_PUBLISH_ACK: u8 = 19;
/// Client protocol: an event delivered to a matching subscription.
pub const KIND_DELIVER: u8 = 20;
/// Client protocol: ask the daemon to shut down cleanly.
pub const KIND_SHUTDOWN: u8 = 21;

/// Why a frame payload failed to parse as a message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MsgError {
    /// The frame kind tag is not in the protocol.
    UnknownKind(u8),
    /// The payload bytes are truncated or malformed.
    Decode(DecodeError),
    /// A field held an out-of-protocol value.
    Malformed(&'static str),
}

impl From<DecodeError> for MsgError {
    fn from(e: DecodeError) -> Self {
        MsgError::Decode(e)
    }
}

impl std::fmt::Display for MsgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsgError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            MsgError::Decode(e) => write!(f, "message payload: {e}"),
            MsgError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for MsgError {}

/// A decoded transport message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Handshake: the dialer announces itself and its current summary
    /// digest. `epoch` increments on every (re)connect of the dialer,
    /// letting the acceptor tell a reconnect from a duplicate dial.
    Hello {
        /// The dialing broker.
        broker: BrokerId,
        /// Dialer's connection epoch.
        epoch: u64,
        /// Digest of the dialer's own summary.
        digest: SummaryDigest,
    },
    /// Handshake reply with the acceptor's identity and digest.
    HelloAck {
        /// The accepting broker.
        broker: BrokerId,
        /// Acceptor's view of its own connection epoch with this peer.
        epoch: u64,
        /// Digest of the acceptor's own summary.
        digest: SummaryDigest,
    },
    /// Full summary push: the sender's own summary as wire-codec bytes.
    Summary {
        /// The broker whose summary this is.
        from: BrokerId,
        /// `subsum-core::wire` codec bytes, unmodified.
        bytes: Vec<u8>,
    },
    /// Digest advertisement for anti-entropy comparison.
    Digest {
        /// The broker whose summary is digested.
        from: BrokerId,
        /// Digest of that broker's own summary.
        digest: SummaryDigest,
    },
    /// Request the peer's full summary (sent after a digest mismatch).
    Pull {
        /// The requesting broker.
        from: BrokerId,
    },
    /// An event forwarded to a broker whose summary matched it.
    Route {
        /// The broker the event was published at.
        origin: BrokerId,
        /// The event itself.
        event: Event,
    },
    /// Client: register a subscription at the connected daemon.
    Subscribe {
        /// The subscription to register.
        sub: Subscription,
    },
    /// Client: subscription registered under `id`.
    SubscribeAck {
        /// The id assigned by the daemon.
        id: SubscriptionId,
    },
    /// Client: publish an event; `seq` correlates the ack.
    Publish {
        /// Client-chosen sequence number, echoed in the ack.
        seq: u32,
        /// The event to publish.
        event: Event,
    },
    /// Client: outcome of a publish.
    PublishAck {
        /// Echo of the publish sequence number.
        seq: u32,
        /// `false` when a required peer forward was rejected by
        /// backpressure — the publish did not fully take effect.
        accepted: bool,
        /// Subscriptions matched at the receiving daemon.
        matched: u32,
    },
    /// Client: an event matched one of this client's subscriptions.
    Deliver {
        /// The matched subscription.
        id: SubscriptionId,
        /// The matching event.
        event: Event,
    },
    /// Client: shut the daemon down cleanly (telemetry dump, checkpoint).
    Shutdown,
}

fn write_digest(w: &mut ByteWriter, d: &SummaryDigest) {
    w.bytes(&d.to_bytes());
}

fn read_digest(r: &mut ByteReader<'_>) -> Result<SummaryDigest, MsgError> {
    let bytes = r.bytes(SummaryDigest::WIRE_BYTES)?;
    SummaryDigest::from_bytes(bytes).ok_or(MsgError::Malformed("summary digest"))
}

fn write_sub_id(w: &mut ByteWriter, id: SubscriptionId) {
    w.u16(id.broker.0);
    w.u32(id.local.0);
    w.u64(id.mask.0);
}

fn read_sub_id(r: &mut ByteReader<'_>) -> Result<SubscriptionId, MsgError> {
    Ok(SubscriptionId {
        broker: BrokerId(r.u16()?),
        local: LocalSubId(r.u32()?),
        mask: AttrMask(r.u64()?),
    })
}

impl Msg {
    /// The frame kind tag this message is carried under.
    pub fn kind(&self) -> u8 {
        match self {
            Msg::Hello { .. } => KIND_HELLO,
            Msg::HelloAck { .. } => KIND_HELLO_ACK,
            Msg::Summary { .. } => KIND_SUMMARY,
            Msg::Digest { .. } => KIND_DIGEST,
            Msg::Pull { .. } => KIND_PULL,
            Msg::Route { .. } => KIND_ROUTE,
            Msg::Subscribe { .. } => KIND_SUBSCRIBE,
            Msg::SubscribeAck { .. } => KIND_SUBSCRIBE_ACK,
            Msg::Publish { .. } => KIND_PUBLISH,
            Msg::PublishAck { .. } => KIND_PUBLISH_ACK,
            Msg::Deliver { .. } => KIND_DELIVER,
            Msg::Shutdown => KIND_SHUTDOWN,
        }
    }

    /// Serializes the payload (without the frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Msg::Hello {
                broker,
                epoch,
                digest,
            }
            | Msg::HelloAck {
                broker,
                epoch,
                digest,
            } => {
                w.u16(broker.0);
                w.u64(*epoch);
                write_digest(&mut w, digest);
            }
            Msg::Summary { from, bytes } => {
                w.u16(from.0);
                w.bytes(bytes);
            }
            Msg::Digest { from, digest } => {
                w.u16(from.0);
                write_digest(&mut w, digest);
            }
            Msg::Pull { from } => {
                w.u16(from.0);
            }
            Msg::Route { origin, event } => {
                w.u16(origin.0);
                event.encode(&mut w);
            }
            Msg::Subscribe { sub } => {
                sub.encode(&mut w);
            }
            Msg::SubscribeAck { id } => {
                write_sub_id(&mut w, *id);
            }
            Msg::Publish { seq, event } => {
                w.u32(*seq);
                event.encode(&mut w);
            }
            Msg::PublishAck {
                seq,
                accepted,
                matched,
            } => {
                w.u32(*seq);
                w.u8(u8::from(*accepted));
                w.u32(*matched);
            }
            Msg::Deliver { id, event } => {
                write_sub_id(&mut w, *id);
                event.encode(&mut w);
            }
            Msg::Shutdown => {}
        }
        w.into_bytes().to_vec()
    }

    /// Serializes the message as one complete frame, ready for a socket.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Oversized`] if the payload exceeds the
    /// frame layer's limit.
    pub fn to_frame_bytes(&self) -> Result<Vec<u8>, FrameError> {
        encode_frame(self.kind(), &self.encode_payload())
    }

    /// Parses a message from a frame kind tag and payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MsgError`] on an unknown kind, truncation, or a field
    /// holding an out-of-protocol value.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Msg, MsgError> {
        let mut r = ByteReader::new(payload);
        let msg = match kind {
            KIND_HELLO => Msg::Hello {
                broker: BrokerId(r.u16()?),
                epoch: r.u64()?,
                digest: read_digest(&mut r)?,
            },
            KIND_HELLO_ACK => Msg::HelloAck {
                broker: BrokerId(r.u16()?),
                epoch: r.u64()?,
                digest: read_digest(&mut r)?,
            },
            KIND_SUMMARY => {
                let from = BrokerId(r.u16()?);
                let bytes = r.bytes(r.remaining())?.to_vec();
                Msg::Summary { from, bytes }
            }
            KIND_DIGEST => Msg::Digest {
                from: BrokerId(r.u16()?),
                digest: read_digest(&mut r)?,
            },
            KIND_PULL => Msg::Pull {
                from: BrokerId(r.u16()?),
            },
            KIND_ROUTE => Msg::Route {
                origin: BrokerId(r.u16()?),
                event: Event::decode(&mut r)?,
            },
            KIND_SUBSCRIBE => Msg::Subscribe {
                sub: Subscription::decode(&mut r)?,
            },
            KIND_SUBSCRIBE_ACK => Msg::SubscribeAck {
                id: read_sub_id(&mut r)?,
            },
            KIND_PUBLISH => Msg::Publish {
                seq: r.u32()?,
                event: Event::decode(&mut r)?,
            },
            KIND_PUBLISH_ACK => {
                let seq = r.u32()?;
                let accepted = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(MsgError::Malformed("publish-ack accepted flag")),
                };
                Msg::PublishAck {
                    seq,
                    accepted,
                    matched: r.u32()?,
                }
            }
            KIND_DELIVER => Msg::Deliver {
                id: read_sub_id(&mut r)?,
                event: Event::decode(&mut r)?,
            },
            KIND_SHUTDOWN => Msg::Shutdown,
            other => return Err(MsgError::UnknownKind(other)),
        };
        if !r.is_exhausted() {
            return Err(MsgError::Malformed("trailing bytes after message"));
        }
        Ok(msg)
    }

    /// Parses a message from a decoded [`Frame`].
    ///
    /// # Errors
    ///
    /// Same as [`Msg::decode`].
    pub fn decode_frame(frame: &Frame) -> Result<Msg, MsgError> {
        Msg::decode(frame.kind, &frame.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_types::{stock_schema, NumOp};

    fn sample_digest(seed: u64) -> SummaryDigest {
        SummaryDigest {
            count: seed,
            id_hash: seed.wrapping_mul(31),
            structure: !seed,
        }
    }

    fn sample_id() -> SubscriptionId {
        SubscriptionId::new(BrokerId(3), LocalSubId(41), AttrMask(0b1010))
    }

    fn sample_event() -> Event {
        let schema = stock_schema();
        Event::builder(&schema)
            .num("price", 12.5)
            .unwrap()
            .str("symbol", "NYSE")
            .unwrap()
            .build()
    }

    fn sample_sub() -> Subscription {
        let schema = stock_schema();
        Subscription::builder(&schema)
            .num("price", NumOp::Lt, 20.0)
            .unwrap()
            .str_pattern("symbol", "NY*")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn every_variant_roundtrips_through_frames() {
        let msgs = vec![
            Msg::Hello {
                broker: BrokerId(1),
                epoch: 7,
                digest: sample_digest(5),
            },
            Msg::HelloAck {
                broker: BrokerId(2),
                epoch: 9,
                digest: sample_digest(6),
            },
            Msg::Summary {
                from: BrokerId(4),
                bytes: vec![1, 2, 3, 250],
            },
            Msg::Summary {
                from: BrokerId(4),
                bytes: Vec::new(),
            },
            Msg::Digest {
                from: BrokerId(0),
                digest: sample_digest(99),
            },
            Msg::Pull { from: BrokerId(12) },
            Msg::Route {
                origin: BrokerId(2),
                event: sample_event(),
            },
            Msg::Subscribe { sub: sample_sub() },
            Msg::SubscribeAck { id: sample_id() },
            Msg::Publish {
                seq: 77,
                event: sample_event(),
            },
            Msg::PublishAck {
                seq: 77,
                accepted: true,
                matched: 3,
            },
            Msg::PublishAck {
                seq: 78,
                accepted: false,
                matched: 0,
            },
            Msg::Deliver {
                id: sample_id(),
                event: sample_event(),
            },
            Msg::Shutdown,
        ];
        for msg in msgs {
            let bytes = msg.to_frame_bytes().unwrap();
            let (frames, rest) = crate::frame::decode_all(&bytes).unwrap();
            assert_eq!(rest, 0);
            assert_eq!(frames.len(), 1);
            assert_eq!(
                Msg::decode_frame(&frames[0]).unwrap(),
                msg,
                "kind {}",
                msg.kind()
            );
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        assert_eq!(Msg::decode(200, &[]), Err(MsgError::UnknownKind(200)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Msg::Pull { from: BrokerId(1) }.encode_payload();
        payload.push(0);
        assert_eq!(
            Msg::decode(KIND_PULL, &payload),
            Err(MsgError::Malformed("trailing bytes after message"))
        );
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        for msg in [
            Msg::Hello {
                broker: BrokerId(1),
                epoch: 7,
                digest: sample_digest(5),
            },
            Msg::Route {
                origin: BrokerId(2),
                event: sample_event(),
            },
            Msg::Subscribe { sub: sample_sub() },
            Msg::Deliver {
                id: sample_id(),
                event: sample_event(),
            },
        ] {
            let payload = msg.encode_payload();
            for cut in 0..payload.len() {
                assert!(
                    Msg::decode(msg.kind(), &payload[..cut]).is_err(),
                    "cut {cut}"
                );
            }
        }
    }

    #[test]
    fn bad_accepted_flag_rejected() {
        let mut payload = Msg::PublishAck {
            seq: 1,
            accepted: true,
            matched: 0,
        }
        .encode_payload();
        payload[4] = 2;
        assert!(matches!(
            Msg::decode(KIND_PUBLISH_ACK, &payload),
            Err(MsgError::Malformed(_))
        ));
    }
}
