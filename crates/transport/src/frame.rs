//! The length-prefixed frame layer under every subsum TCP connection.
//!
//! A frame is the unit a socket carries; its payload is an opaque byte
//! string supplied by the message codec ([`crate::msg`]) — summary
//! payloads in particular are the unmodified `subsum-core::wire` bytes,
//! so digests and checkpoints stay byte-identical between the simulator
//! and the socket deployment. On the wire a frame is
//!
//! ```text
//! +--------+---------+------+-----------+----------------+
//! | magic  | version | kind | length    | payload        |
//! | u16 BE | u8      | u8   | u32 BE    | `length` bytes |
//! +--------+---------+------+-----------+----------------+
//! ```
//!
//! [`FrameDecoder`] is *incremental*: TCP delivers arbitrary chunks, so
//! the decoder accumulates partial reads and yields a frame exactly
//! when its bytes are complete. Decoding is panic-free against every
//! input — corrupt magic, an unknown version, or an oversized length
//! poison the decoder (a byte stream is unrecoverable once framing is
//! lost; the session must drop the connection), while a short buffer is
//! simply "not yet" ([`Ok(None)`](FrameDecoder::next_frame)). The
//! robustness proptests feed arbitrary streams split at every boundary
//! and require byte-for-byte agreement with one-shot decoding.

use std::fmt;

/// Frame preamble: `"SF"`, subsum frame.
pub const MAGIC: u16 = 0x5346;

/// Frame layer version.
pub const FRAME_VERSION: u8 = 1;

/// Bytes before the payload: magic + version + kind + length.
pub const HEADER_LEN: usize = 8;

/// Maximum payload size accepted (16 MiB). A length field beyond this
/// is treated as corruption, bounding decoder memory against hostile
/// or garbled length prefixes.
pub const MAX_PAYLOAD: usize = 1 << 24;

/// One decoded frame: a kind tag and its payload bytes.
///
/// The frame layer does not interpret `kind`; the message codec
/// ([`crate::msg`]) owns the tag space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind tag (see `crate::msg::KIND_*`).
    pub kind: u8,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// Why a byte stream failed framing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The stream does not start with [`MAGIC`] — not a subsum peer, or
    /// framing was lost.
    BadMagic(u16),
    /// The version byte is unknown.
    UnsupportedVersion(u8),
    /// The length field exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::Oversized(n) => {
                write!(f, "frame payload length {n} exceeds {MAX_PAYLOAD}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame.
///
/// # Errors
///
/// Returns [`FrameError::Oversized`] if the payload exceeds
/// [`MAX_PAYLOAD`].
pub fn encode_frame(kind: u8, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    if payload.len() > MAX_PAYLOAD {
        return Err(FrameError::Oversized(payload.len() as u32));
    }
    // BOUND: payload.len() <= MAX_PAYLOAD (1 << 24), checked above.
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.push(FRAME_VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// An incremental frame decoder over a TCP byte stream.
///
/// Feed chunks as the socket produces them; pop complete frames with
/// [`FrameDecoder::next_frame`]. Any framing error is sticky: once the
/// stream is corrupt every subsequent call reports the same error, and
/// the session is expected to drop the connection.
///
/// # Example
///
/// ```
/// use subsum_transport::frame::{encode_frame, FrameDecoder};
///
/// let bytes = encode_frame(7, b"hello").unwrap();
/// let mut dec = FrameDecoder::new();
/// dec.feed(&bytes[..3]); // partial read
/// assert_eq!(dec.next_frame().unwrap(), None);
/// dec.feed(&bytes[3..]);
/// let frame = dec.next_frame().unwrap().unwrap();
/// assert_eq!((frame.kind, frame.payload.as_slice()), (7, &b"hello"[..]));
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor; `pos <= buf.len()` always. The consumed prefix is
    /// compacted in `feed`, so memory stays bounded by one max frame
    /// plus one socket read.
    pos: usize,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        // BOUND: pos <= buf.len() is a struct invariant (pos only
        // advances past bytes already in buf).
        self.buf.len() - self.pos
    }

    /// Appends one chunk of the byte stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame.
    ///
    /// `Ok(None)` means more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] once the stream is corrupt; the error
    /// is sticky and the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if let Some(e) = self.poisoned {
            return Err(e);
        }
        // BOUND: `pos <= buf.len()` is a struct invariant (pos only
        // advances past bytes verified present below).
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        // BOUND: the 8-byte header was length-checked just above.
        let magic = u16::from_be_bytes([avail[0], avail[1]]);
        if magic != MAGIC {
            return Err(self.poison(FrameError::BadMagic(magic)));
        }
        // BOUND: within the length-checked 8-byte header.
        let version = avail[2];
        if version != FRAME_VERSION {
            return Err(self.poison(FrameError::UnsupportedVersion(version)));
        }
        // BOUND: within the length-checked 8-byte header.
        let kind = avail[3];
        // BOUND: within the length-checked 8-byte header.
        let len = u32::from_be_bytes([avail[4], avail[5], avail[6], avail[7]]);
        let len_usize = len as usize;
        if len_usize > MAX_PAYLOAD {
            return Err(self.poison(FrameError::Oversized(len)));
        }
        // BOUND: `len <= MAX_PAYLOAD << usize::MAX`, so the sum cannot
        // overflow; a short buffer returns `None` rather than slicing.
        if avail.len() < HEADER_LEN + len_usize {
            return Ok(None);
        }
        // BOUND: `HEADER_LEN + len` bytes were verified present above.
        let payload = avail[HEADER_LEN..HEADER_LEN + len_usize].to_vec();
        self.pos += HEADER_LEN + len_usize;
        Ok(Some(Frame { kind, payload }))
    }

    fn poison(&mut self, e: FrameError) -> FrameError {
        self.poisoned = Some(e);
        e
    }
}

/// One-shot decoding of a complete byte stream into frames; trailing
/// partial bytes are reported as the number of unconsumed bytes.
///
/// The incremental-equivalence proptests compare every chunked feeding
/// of a stream against this function.
///
/// # Errors
///
/// Returns the first [`FrameError`] in the stream.
pub fn decode_all(bytes: &[u8]) -> Result<(Vec<Frame>, usize), FrameError> {
    let mut dec = FrameDecoder::new();
    dec.feed(bytes);
    let mut frames = Vec::new();
    while let Some(frame) = dec.next_frame()? {
        frames.push(frame);
    }
    Ok((frames, dec.buffered()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let bytes = encode_frame(3, b"payload").unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + 7);
        let (frames, rest) = decode_all(&bytes).unwrap();
        assert_eq!(rest, 0);
        assert_eq!(
            frames,
            vec![Frame {
                kind: 3,
                payload: b"payload".to_vec()
            }]
        );
    }

    #[test]
    fn empty_payload_roundtrips() {
        let bytes = encode_frame(0, b"").unwrap();
        let (frames, rest) = decode_all(&bytes).unwrap();
        assert_eq!(rest, 0);
        assert_eq!(
            frames,
            vec![Frame {
                kind: 0,
                payload: Vec::new()
            }]
        );
    }

    #[test]
    fn byte_at_a_time_feeding_matches_one_shot() {
        let mut stream = Vec::new();
        for k in 0..4u8 {
            stream.extend_from_slice(&encode_frame(k, &vec![k; k as usize * 7]).unwrap());
        }
        let (expect, _) = decode_all(&stream).unwrap();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            dec.feed(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, expect);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn bad_magic_is_sticky() {
        let mut dec = FrameDecoder::new();
        dec.feed(&[0xFF; 16]);
        let err = dec.next_frame().unwrap_err();
        assert_eq!(err, FrameError::BadMagic(0xFFFF));
        // Still poisoned, even after more (valid-looking) bytes.
        dec.feed(&encode_frame(1, b"x").unwrap());
        assert_eq!(dec.next_frame().unwrap_err(), err);
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = encode_frame(1, b"x").unwrap();
        bytes[2] = 9;
        assert_eq!(
            decode_all(&bytes).unwrap_err(),
            FrameError::UnsupportedVersion(9)
        );
    }

    #[test]
    fn oversized_length_rejected_before_buffering() {
        let mut bytes = encode_frame(1, b"x").unwrap();
        bytes[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            decode_all(&bytes).unwrap_err(),
            FrameError::Oversized(u32::MAX)
        );
        assert!(encode_frame(1, &vec![0; MAX_PAYLOAD + 1]).is_err());
    }

    #[test]
    fn truncated_stream_is_incomplete_not_an_error() {
        let bytes = encode_frame(5, b"abcdef").unwrap();
        for cut in 0..bytes.len() {
            let (frames, rest) = decode_all(&bytes[..cut]).unwrap();
            assert!(frames.is_empty(), "cut {cut} produced a frame");
            assert_eq!(rest, cut);
        }
    }
}
