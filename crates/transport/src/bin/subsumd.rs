//! `subsumd` — a standalone subsum broker daemon.
//!
//! One daemon is one broker of the summary-routing overlay, speaking
//! the framed TCP protocol of `subsum-transport` to neighbor daemons
//! and clients. It runs over the built-in stock schema (the paper's
//! evaluation schema) until schema files exist.
//!
//! ```text
//! subsumd --broker 0 --listen 127.0.0.1:7400
//! subsumd --broker 1 --listen 127.0.0.1:7401 --dial 0=127.0.0.1:7400 \
//!         --checkpoint /var/lib/subsum/b1.ckpt --telemetry-json /tmp/b1.json
//! ```
//!
//! Flags:
//!
//! * `--broker <id>` — this broker's id (required).
//! * `--listen <addr>` — listen address (required; port 0 = ephemeral,
//!   printed on stdout).
//! * `--dial <id>=<addr>` — neighbor link to dial (repeatable). Each
//!   overlay edge must be dialed from exactly one side.
//! * `--checkpoint <path>` — durable state file: loaded at startup if
//!   present, rewritten on clean shutdown.
//! * `--telemetry-json <path>` — write a telemetry report (counters +
//!   stage histograms) to this file on clean shutdown.
//! * `--mailbox <frames>` — per-connection outbound bound (default 256).
//! * `--policy <block|reject>` — backpressure policy (default reject).
//!
//! The daemon runs until a client sends `Shutdown`; it then writes its
//! checkpoint and telemetry dump and exits 0.

use std::io::Write;
use std::net::SocketAddr;
use std::process::ExitCode;

use subsum_broker::BrokerCheckpoint;
use subsum_telemetry::RunReport;
use subsum_transport::{BackpressurePolicy, DaemonConfig, Subsumd};
use subsum_types::{stock_schema, BrokerId};

struct Args {
    config: DaemonConfig,
    checkpoint_path: Option<String>,
    telemetry_path: Option<String>,
}

fn usage() -> String {
    "usage: subsumd --broker <id> --listen <addr> [--dial <id>=<addr>]... \
     [--checkpoint <path>] [--telemetry-json <path>] [--mailbox <frames>] \
     [--policy <block|reject>]"
        .to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut broker: Option<u16> = None;
    let mut listen: Option<SocketAddr> = None;
    let mut dial: Vec<(BrokerId, SocketAddr)> = Vec::new();
    let mut checkpoint_path: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut mailbox_capacity = 256usize;
    let mut policy = BackpressurePolicy::Reject;

    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--broker" => {
                broker = Some(
                    value("--broker")?
                        .parse()
                        .map_err(|e| format!("--broker: {e}"))?,
                );
            }
            "--listen" => {
                listen = Some(
                    value("--listen")?
                        .parse()
                        .map_err(|e| format!("--listen: {e}"))?,
                );
            }
            "--dial" => {
                let spec = value("--dial")?;
                let (id, addr) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--dial wants <id>=<addr>, got {spec:?}"))?;
                dial.push((
                    BrokerId(id.parse().map_err(|e| format!("--dial id: {e}"))?),
                    addr.parse().map_err(|e| format!("--dial addr: {e}"))?,
                ));
            }
            "--checkpoint" => checkpoint_path = Some(value("--checkpoint")?),
            "--telemetry-json" => telemetry_path = Some(value("--telemetry-json")?),
            "--mailbox" => {
                mailbox_capacity = value("--mailbox")?
                    .parse()
                    .map_err(|e| format!("--mailbox: {e}"))?;
            }
            "--policy" => {
                policy = match value("--policy")?.as_str() {
                    "block" => BackpressurePolicy::Block,
                    "reject" => BackpressurePolicy::Reject,
                    other => return Err(format!("--policy wants block|reject, got {other:?}")),
                };
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }

    let broker = broker.ok_or_else(|| format!("--broker is required\n{}", usage()))?;
    let listen = listen.ok_or_else(|| format!("--listen is required\n{}", usage()))?;

    let checkpoint = match &checkpoint_path {
        Some(path) => match std::fs::read(path) {
            Ok(bytes) => Some(
                BrokerCheckpoint::from_bytes(&bytes)
                    .map_err(|e| format!("checkpoint {path}: {e}"))?,
            ),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("checkpoint {path}: {e}")),
        },
        None => None,
    };

    let mut config = DaemonConfig::new(BrokerId(broker), stock_schema());
    config.listen = listen;
    config.dial = dial;
    config.mailbox_capacity = mailbox_capacity;
    config.policy = policy;
    config.checkpoint = checkpoint;
    Ok(Args {
        config,
        checkpoint_path,
        telemetry_path,
    })
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    if args.telemetry_path.is_some() {
        subsum_telemetry::set_enabled(true);
    }
    let broker = args.config.broker;
    let handle = Subsumd::start(args.config).map_err(|e| format!("start: {e}"))?;
    // Supervisors may close our stdout once they've read the listen
    // line; status prints must not kill the daemon (or its clean exit).
    let _ = writeln!(
        std::io::stdout(),
        "subsumd broker {} listening on {}",
        broker.0,
        handle.addr()
    );

    // Serves until a client sends `Shutdown`.
    let fin = handle.join();

    if let Some(path) = &args.checkpoint_path {
        std::fs::write(path, fin.checkpoint.to_bytes())
            .map_err(|e| format!("write checkpoint {path}: {e}"))?;
    }
    if let Some(path) = &args.telemetry_path {
        let report = RunReport::capture(format!("subsumd.broker{}", broker.0));
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("write telemetry {path}: {e}"))?;
    }
    let _ = writeln!(
        std::io::stdout(),
        "subsumd broker {} stopped cleanly",
        broker.0
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
