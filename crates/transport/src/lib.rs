//! Framed TCP transport for subsum brokers.
//!
//! Everything in `subsum-broker` so far runs inside one process — over
//! the deterministic `LossyNet` simulator or the threaded runtime. This
//! crate takes the same broker logic onto real sockets:
//!
//! * [`frame`] — the length-prefixed frame layer and its panic-free
//!   incremental decoder;
//! * [`msg`] — the peer and client protocol messages carried in frames
//!   (summary payloads are `subsum-core::wire` bytes, unchanged);
//! * [`session`] — per-peer session state: epoch-stamped reconnects,
//!   digest comparison on handshake, bounded outbound mailboxes with an
//!   explicit backpressure policy;
//! * [`tcp`] — [`TcpTransport`], a socket implementation of the broker
//!   [`subsum_broker::Transport`] seam, so simulator scenarios (the
//!   chaos suite included) run unmodified over real TCP loopback;
//! * [`daemon`] — [`Subsumd`], the standalone broker daemon behind the
//!   `subsumd` binary;
//! * [`client`] — a small blocking client library for subscribing and
//!   publishing against a daemon.
//!
//! Only `std::net` and `std::thread` are used — no async runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod client;
pub mod daemon;
pub mod frame;
pub mod msg;
pub mod session;
pub mod tcp;

pub use client::{Client, ClientError, PublishResult};
pub use daemon::{DaemonConfig, DaemonFinal, DaemonHandle, DaemonStats, Subsumd};
pub use frame::{Frame, FrameDecoder, FrameError};
pub use msg::{Msg, MsgError};
pub use session::{BackpressurePolicy, Mailbox, SendOutcome, TxStats};
pub use tcp::{MsgCodec, TcpTransport};
