//! A small blocking client for a [`Subsumd`](crate::daemon::Subsumd)
//! daemon.
//!
//! One [`Client`] is one TCP connection speaking the client half of the
//! [`Msg`] protocol: subscribe (acked with the assigned id), publish
//! (acked with accept/reject and the local match count), and receive
//! deliveries. Deliveries arrive asynchronously — any `Deliver` frames
//! read while waiting for an ack are queued and surfaced later by
//! [`Client::next_delivery`]/[`Client::poll_delivery`], so an ack wait
//! never loses an event.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use subsum_types::{Event, Subscription, SubscriptionId};

use crate::frame::{FrameDecoder, FrameError};
use crate::msg::{Msg, MsgError};

/// Errors from client calls.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// Socket failure.
    Io(std::io::Error),
    /// The daemon's byte stream failed framing.
    Frame(FrameError),
    /// A frame held an unparseable message.
    Msg(MsgError),
    /// The daemon answered out of protocol (e.g. a publish ack with the
    /// wrong sequence number).
    Protocol(&'static str),
    /// The daemon closed the connection.
    Disconnected,
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}
impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}
impl From<MsgError> for ClientError {
    fn from(e: MsgError) -> Self {
        ClientError::Msg(e)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket: {e}"),
            ClientError::Frame(e) => write!(f, "framing: {e}"),
            ClientError::Msg(e) => write!(f, "protocol message: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Disconnected => write!(f, "daemon closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Outcome of one publish, from the daemon's `PublishAck`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishResult {
    /// `false` when a required peer forward was rejected by
    /// backpressure — the event may not reach remote subscribers.
    pub accepted: bool,
    /// Subscriptions matched at the daemon the client is connected to.
    pub matched: u32,
}

/// A blocking connection to one daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Deliveries read while waiting for an ack.
    pending: VecDeque<(SubscriptionId, Event)>,
    seq: u32,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Returns the socket error if the daemon is unreachable.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            decoder: FrameDecoder::new(),
            pending: VecDeque::new(),
            seq: 0,
        })
    }

    fn send(&mut self, msg: &Msg) -> Result<(), ClientError> {
        let bytes = msg.to_frame_bytes()?;
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// Reads the next message, honoring the stream's read timeout.
    /// `Ok(None)` only when a timeout is armed and expires.
    fn read_msg(&mut self) -> Result<Option<Msg>, ClientError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(Some(Msg::decode_frame(&frame)?));
            }
            let n = match self.stream.read(&mut buf) {
                Ok(0) => return Err(ClientError::Disconnected),
                Ok(n) => n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(e.into()),
            };
            // BOUND: `read` returns at most `buf.len()`.
            self.decoder.feed(&buf[..n]);
        }
    }

    /// Reads until `want` yields, queueing deliveries seen on the way.
    fn wait_for<T>(&mut self, want: impl Fn(&Msg) -> Option<T>) -> Result<T, ClientError> {
        self.stream.set_read_timeout(None)?;
        loop {
            let msg = self.read_msg()?.ok_or(ClientError::Disconnected)?;
            if let Some(out) = want(&msg) {
                return Ok(out);
            }
            if let Msg::Deliver { id, event } = msg {
                self.pending.push_back((id, event));
            }
        }
    }

    /// Registers a subscription; blocks for the daemon's ack.
    ///
    /// # Errors
    ///
    /// Fails on socket or protocol errors.
    pub fn subscribe(&mut self, sub: &Subscription) -> Result<SubscriptionId, ClientError> {
        self.send(&Msg::Subscribe { sub: sub.clone() })?;
        self.wait_for(|msg| match msg {
            Msg::SubscribeAck { id } => Some(*id),
            _ => None,
        })
    }

    /// Publishes an event; blocks for the daemon's ack.
    ///
    /// # Errors
    ///
    /// Fails on socket or protocol errors, including an ack carrying a
    /// foreign sequence number.
    pub fn publish(&mut self, event: &Event) -> Result<PublishResult, ClientError> {
        self.seq = self.seq.wrapping_add(1);
        let seq = self.seq;
        self.send(&Msg::Publish {
            seq,
            event: event.clone(),
        })?;
        let (ack_seq, result) = self.wait_for(|msg| match msg {
            Msg::PublishAck {
                seq,
                accepted,
                matched,
            } => Some((
                *seq,
                PublishResult {
                    accepted: *accepted,
                    matched: *matched,
                },
            )),
            _ => None,
        })?;
        if ack_seq != seq {
            return Err(ClientError::Protocol("publish ack sequence mismatch"));
        }
        Ok(result)
    }

    /// Blocks until an event is delivered to one of this client's
    /// subscriptions.
    ///
    /// # Errors
    ///
    /// Fails on socket or protocol errors.
    pub fn next_delivery(&mut self) -> Result<(SubscriptionId, Event), ClientError> {
        if let Some(d) = self.pending.pop_front() {
            return Ok(d);
        }
        self.wait_for(|msg| match msg {
            Msg::Deliver { id, event } => Some((*id, event.clone())),
            _ => None,
        })
    }

    /// Waits up to `timeout` for a delivery; `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// Fails on socket or protocol errors.
    pub fn poll_delivery(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(SubscriptionId, Event)>, ClientError> {
        if let Some(d) = self.pending.pop_front() {
            return Ok(Some(d));
        }
        self.stream.set_read_timeout(Some(timeout))?;
        loop {
            match self.read_msg()? {
                Some(Msg::Deliver { id, event }) => return Ok(Some((id, event))),
                Some(_) => continue, // unrelated traffic; keep waiting
                None => return Ok(None),
            }
        }
    }

    /// Asks the daemon to shut down cleanly and closes the connection.
    ///
    /// # Errors
    ///
    /// Fails if the shutdown message cannot be written.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        self.send(&Msg::Shutdown)
    }
}
