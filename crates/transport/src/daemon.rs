//! [`Subsumd`]: the standalone summary-routing broker daemon.
//!
//! A daemon is one broker of the paper's overlay, serving real sockets:
//! it accepts peer connections from neighbor daemons and client
//! connections from subscribers/publishers, all speaking the framed
//! [`Msg`] protocol. The summary machinery is exactly the in-process
//! one — `BrokerSummary` for its own subscriptions, one summary *view*
//! per neighbor, `subsum-core::wire` bytes on the wire — so a daemon
//! interoperates bit-for-bit with checkpoints and digests produced by
//! the simulator.
//!
//! # Threads and ownership
//!
//! One **event loop** thread owns all broker state; everything else is
//! I/O plumbing feeding it messages over a channel:
//!
//! * an **accept** thread turns incoming connections into reader
//!   threads;
//! * one **reader** thread per socket decodes frames into [`Msg`]s;
//! * one **writer** thread per socket drains that connection's bounded
//!   [`Mailbox`] (see [`crate::session`] for the backpressure policy);
//! * one **dialer** thread per configured neighbor link establishes
//!   the outbound connection with backoff; the event loop spawns a
//!   fresh dialer with a bumped epoch when a dialed link breaks.
//!
//! # Sessions, epochs, reconvergence
//!
//! Every fresh peer link starts with `Hello`/`HelloAck` carrying the
//! sender's broker id, its **connection epoch** (a counter the dialer
//! bumps each dial, so both ends can tell a reconnect from a duplicate
//! dial), and the [`SummaryDigest`](subsum_core::SummaryDigest) of its
//! own summary. Each end compares the received digest with its stored
//! view of that peer and sends `Pull` **only on mismatch** — a
//! restarted peer that recovered its state from a checkpoint re-joins
//! without a single summary crossing the wire in its direction, the
//! same digest-gated anti-entropy the chaos suite proves convergent
//! under faults.
//!
//! # Event flow
//!
//! `Subscribe` inserts into the daemon's own summary and eagerly pushes
//! the updated summary to every connected peer. `Publish` matches the
//! event against the daemon's own summary (local deliveries) and every
//! peer view (forwarding a `Route` to each matching neighbor); the
//! client's `PublishAck` reports `accepted: false` if any required
//! forward was rejected by backpressure. A `Route` arriving from a peer
//! is matched against the local summary only and delivered to the
//! owning clients.

use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use subsum_broker::BrokerCheckpoint;
use subsum_core::{ArithWidth, BrokerSummary, SummaryCodec};
use subsum_telemetry::{names, Count, Counter};
use subsum_types::{
    BrokerId, Event, IdLayout, LocalSubId, Schema, Subscription, SubscriptionId, TypeError,
};

use crate::frame::FrameDecoder;
use crate::msg::Msg;
use crate::session::{spawn_writer, BackpressurePolicy, Mailbox, SendOutcome, TxStats};

static CNT_FRAMES_RX: Count = Count::new(names::TRANSPORT_FRAMES_RX);
static CNT_BYTES_RX: Count = Count::new(names::TRANSPORT_BYTES_RX);
static CNT_DECODE_ERRORS: Count = Count::new(names::TRANSPORT_DECODE_ERRORS);
static CNT_RECONNECTS: Count = Count::new(names::TRANSPORT_RECONNECTS);
static CNT_RESYNCS: Count = Count::new(names::TRANSPORT_RESYNCS);
static CNT_ACKED: Count = Count::new(names::PUBLISH_ACKED);
static CNT_REJECTED: Count = Count::new(names::PUBLISH_REJECTED);

/// How long a dialer sleeps between failed connection attempts.
const REDIAL_BACKOFF: Duration = Duration::from_millis(50);

/// Per-daemon counters, readable while the daemon runs.
///
/// The process-global telemetry statics aggregate across every daemon
/// in the process (fine for a real deployment of one daemon per
/// process, useless for a test hosting several); these are scoped to
/// one daemon.
#[derive(Debug, Default)]
pub struct DaemonStats {
    /// Frames/bytes written by this daemon's writer threads. Shared
    /// with the writers, hence the extra `Arc`.
    pub tx: Arc<TxStats>,
    /// Frames decoded off this daemon's sockets.
    pub frames_rx: Counter,
    /// Peer dials beyond each link's first (epoch re-handshakes).
    pub reconnects: Counter,
    /// Handshake digest mismatches that triggered a summary pull.
    pub resyncs: Counter,
    /// Full summaries received (each one replaces a peer view).
    pub summaries_rx: Counter,
    /// Full summaries sent (eager pushes plus pull responses).
    pub summaries_tx: Counter,
    /// Client publishes acknowledged as fully accepted.
    pub acked: Counter,
    /// Client publishes acknowledged as rejected by backpressure.
    pub rejected: Counter,
    /// `Deliver` messages sent to clients.
    pub deliveries: Counter,
}

/// Static configuration of one daemon.
#[derive(Debug)]
pub struct DaemonConfig {
    /// This broker's id in the overlay.
    pub broker: BrokerId,
    /// Listen address (use port 0 for an ephemeral port).
    pub listen: SocketAddr,
    /// Neighbor links this daemon is responsible for dialing. The
    /// overlay needs each edge dialed from exactly one side; the other
    /// side only accepts.
    pub dial: Vec<(BrokerId, SocketAddr)>,
    /// The event schema shared by the whole overlay.
    pub schema: Schema,
    /// Bound of every per-connection outbound mailbox, in frames.
    pub mailbox_capacity: usize,
    /// What to do when a mailbox is full.
    pub policy: BackpressurePolicy,
    /// Durable state from a previous run ([`DaemonFinal::checkpoint`]);
    /// the daemon rebuilds its summary from it, digest-identical to the
    /// pre-shutdown one.
    pub checkpoint: Option<BrokerCheckpoint>,
}

impl DaemonConfig {
    /// A config with no neighbors, an ephemeral loopback port, and
    /// defaults (mailbox of 256 frames, reject policy, fresh state).
    pub fn new(broker: BrokerId, schema: Schema) -> DaemonConfig {
        DaemonConfig {
            broker,
            listen: SocketAddr::from(([127, 0, 0, 1], 0)),
            dial: Vec::new(),
            schema,
            mailbox_capacity: 256,
            policy: BackpressurePolicy::default(),
            checkpoint: None,
        }
    }
}

/// What a cleanly stopped daemon leaves behind.
#[derive(Debug)]
pub struct DaemonFinal {
    /// Durable broker state: the exact subscription store and id
    /// counter, byte-compatible with the simulator's checkpoints.
    pub checkpoint: BrokerCheckpoint,
}

/// Events feeding the daemon's single-threaded event loop.
enum Ev {
    /// A connection was accepted; type unknown until its first message.
    Accepted { conn: u64, stream: TcpStream },
    /// A dialer established (or re-established) link `dial[ix]`.
    Dialed {
        ix: usize,
        epoch: u64,
        stream: TcpStream,
    },
    /// A message arrived on connection `conn`.
    Msg { conn: u64, msg: Msg },
    /// Connection `conn` closed or failed.
    Closed { conn: u64 },
}

/// What the event loop knows about one live connection.
enum Conn {
    /// Accepted but not yet classified by a first message.
    Unknown { mailbox: Mailbox },
    /// A neighbor daemon's link.
    Peer { broker: BrokerId, mailbox: Mailbox },
    /// A subscriber/publisher client.
    Client { mailbox: Mailbox },
}

impl Conn {
    fn mailbox(&self) -> &Mailbox {
        match self {
            Conn::Unknown { mailbox } | Conn::Peer { mailbox, .. } | Conn::Client { mailbox } => {
                mailbox
            }
        }
    }
}

/// The daemon builder; see the [module docs](self).
#[derive(Debug)]
pub struct Subsumd;

impl Subsumd {
    /// Starts a daemon, returning once its listener is bound.
    ///
    /// # Errors
    ///
    /// Returns the socket error if the listen address cannot be bound,
    /// or `InvalidData` if the schema exceeds the summary id layout.
    pub fn start(config: DaemonConfig) -> std::io::Result<DaemonHandle> {
        let listener = TcpListener::bind(config.listen)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(DaemonStats::default());
        let stopping = Arc::new(Mutex::new(false));
        let (ev_tx, ev_rx) = std::sync::mpsc::channel::<Ev>();

        let core = DaemonCore::new(&config, Arc::clone(&stats))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;

        let accept = spawn_acceptor(listener, ev_tx.clone(), Arc::clone(&stopping));
        for ix in 0..config.dial.len() {
            spawn_dialer(
                config.dial[ix].1,
                ix,
                1,
                ev_tx.clone(),
                Arc::clone(&stopping),
            );
        }

        let loop_stop = Arc::clone(&stopping);
        let loop_tx = ev_tx.clone();
        let join = std::thread::spawn(move || event_loop(core, config, ev_rx, loop_tx, loop_stop));

        Ok(DaemonHandle {
            addr,
            stats,
            join,
            accept: Some(accept),
        })
    }
}

/// A running daemon: its bound address, live counters, and the join
/// point that yields the final checkpoint after a clean shutdown
/// (triggered by a client's `Shutdown` message).
#[derive(Debug)]
pub struct DaemonHandle {
    addr: SocketAddr,
    stats: Arc<DaemonStats>,
    join: JoinHandle<DaemonFinal>,
    accept: Option<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The actually bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live per-daemon counters.
    pub fn stats(&self) -> &DaemonStats {
        &self.stats
    }

    /// Waits for the daemon to stop (a client must send `Shutdown`),
    /// then unblocks and joins the acceptor and returns durable state.
    pub fn join(mut self) -> DaemonFinal {
        let fin = match self.join.join() {
            Ok(fin) => fin,
            Err(_) => DaemonFinal {
                checkpoint: BrokerCheckpoint::default(),
            },
        };
        // The event loop set `stopping` before exiting; one throwaway
        // connection makes the blocked `accept` observe it and return.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        fin
    }
}

/// Accept loop: hand every connection to the event loop until stopped.
fn spawn_acceptor(
    listener: TcpListener,
    ev_tx: Sender<Ev>,
    stopping: Arc<Mutex<bool>>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // Accepted connections count up from 1; dialed connections use
        // a disjoint range (see `DIALED_CONN_BASE`).
        let mut next_conn = 1u64;
        loop {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            if stopping.lock().map(|s| *s).unwrap_or(true) {
                return;
            }
            let conn = next_conn;
            next_conn += 1;
            if ev_tx.send(Ev::Accepted { conn, stream }).is_err() {
                return;
            }
        }
    })
}

/// Dialer for one neighbor link: connect (with backoff), hand the
/// socket to the event loop, and exit; the event loop spawns the next
/// incarnation with a bumped epoch when the link breaks.
fn spawn_dialer(
    addr: SocketAddr,
    ix: usize,
    epoch: u64,
    ev_tx: Sender<Ev>,
    stopping: Arc<Mutex<bool>>,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        if stopping.lock().map(|s| *s).unwrap_or(true) {
            return;
        }
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = ev_tx.send(Ev::Dialed { ix, epoch, stream });
                return;
            }
            Err(_) => std::thread::sleep(REDIAL_BACKOFF),
        }
    })
}

/// Reader loop for one socket: frames → [`Msg`]s → event channel.
fn spawn_reader(
    conn: u64,
    mut stream: TcpStream,
    ev_tx: Sender<Ev>,
    stats: Arc<DaemonStats>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut decoder = FrameDecoder::new();
        let mut buf = [0u8; 64 * 1024];
        loop {
            let n = match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            CNT_BYTES_RX.add(n as u64);
            // BOUND: `read` returns at most `buf.len()`.
            decoder.feed(&buf[..n]);
            loop {
                match decoder.next_frame() {
                    Ok(Some(frame)) => {
                        CNT_FRAMES_RX.inc();
                        stats.frames_rx.inc();
                        match Msg::decode_frame(&frame) {
                            Ok(msg) => {
                                if ev_tx.send(Ev::Msg { conn, msg }).is_err() {
                                    return;
                                }
                            }
                            Err(_) => {
                                CNT_DECODE_ERRORS.inc();
                                let _ = ev_tx.send(Ev::Closed { conn });
                                return;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        CNT_DECODE_ERRORS.inc();
                        let _ = ev_tx.send(Ev::Closed { conn });
                        return;
                    }
                }
            }
        }
        let _ = ev_tx.send(Ev::Closed { conn });
    })
}

/// Dialed connections get ids in their own range so the acceptor's
/// counter and the event loop's counter never collide.
const DIALED_CONN_BASE: u64 = 1 << 32;

/// The broker state owned by the event loop.
struct DaemonCore {
    broker: BrokerId,
    codec: SummaryCodec,
    schema: Schema,
    /// Exact local subscription store (the durable state).
    exact: Vec<(SubscriptionId, Subscription)>,
    next_local: u32,
    /// Summary of `exact`.
    own: BrokerSummary,
    /// Last received summary of each neighbor.
    views: BTreeMap<BrokerId, BrokerSummary>,
    /// Which client connection owns each local subscription.
    sub_owner: BTreeMap<SubscriptionId, u64>,
    stats: Arc<DaemonStats>,
}

impl DaemonCore {
    fn new(config: &DaemonConfig, stats: Arc<DaemonStats>) -> Result<DaemonCore, TypeError> {
        let layout = IdLayout::new(1 << 16, 1 << 20, config.schema.len() as u32)?;
        let codec = SummaryCodec::new(layout, ArithWidth::Eight);
        let (exact, next_local) = match &config.checkpoint {
            Some(cp) => (cp.subs.clone(), cp.next_local),
            None => (Vec::new(), 0),
        };
        let own = BrokerSummary::rebuild(
            config.schema.clone(),
            exact.iter().map(|(id, sub)| (*id, sub)),
        );
        Ok(DaemonCore {
            broker: config.broker,
            codec,
            schema: config.schema.clone(),
            exact,
            next_local,
            own,
            views: BTreeMap::new(),
            sub_owner: BTreeMap::new(),
            stats,
        })
    }

    fn checkpoint(&self) -> BrokerCheckpoint {
        BrokerCheckpoint {
            next_local: self.next_local,
            subs: self.exact.clone(),
        }
    }

    /// Serializes this daemon's own summary for a `Summary` message.
    fn own_summary_msg(&self) -> Msg {
        let bytes = self
            .codec
            .encode(&self.own)
            .map(|b| b.to_vec())
            .unwrap_or_default();
        Msg::Summary {
            from: self.broker,
            bytes,
        }
    }

    /// Digest-gates a peer's advertised summary digest: `Pull` only if
    /// our stored view disagrees (or we have none).
    fn pull_if_stale(
        &self,
        conns: &BTreeMap<u64, Conn>,
        conn: u64,
        peer: BrokerId,
        advertised: subsum_core::SummaryDigest,
    ) {
        let matches = self.views.get(&peer).map(BrokerSummary::digest) == Some(advertised);
        if matches {
            return;
        }
        CNT_RESYNCS.inc();
        self.stats.resyncs.inc();
        if let Some(c) = conns.get(&conn) {
            send_msg(c.mailbox(), &Msg::Pull { from: self.broker });
        }
    }
}

/// Runs the daemon's event loop to completion (client `Shutdown`).
fn event_loop(
    mut core: DaemonCore,
    config: DaemonConfig,
    ev_rx: Receiver<Ev>,
    ev_tx: Sender<Ev>,
    stopping: Arc<Mutex<bool>>,
) -> DaemonFinal {
    let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
    // Epoch of the next dial, and the live connection, per dial index.
    let mut dial_epochs: Vec<u64> = vec![1; config.dial.len()];
    let mut dial_conns: Vec<Option<u64>> = vec![None; config.dial.len()];
    let mut next_dialed_conn = DIALED_CONN_BASE;
    let stats = Arc::clone(&core.stats);

    while let Ok(ev) = ev_rx.recv() {
        match ev {
            Ev::Accepted { conn, stream } => {
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                let (mailbox, rx) = Mailbox::new(config.mailbox_capacity, config.policy);
                spawn_writer(write_half, rx, Arc::clone(&stats.tx));
                spawn_reader(conn, stream, ev_tx.clone(), Arc::clone(&stats));
                conns.insert(conn, Conn::Unknown { mailbox });
            }
            Ev::Dialed { ix, epoch, stream } => {
                let Some(&(peer, _)) = config.dial.get(ix) else {
                    continue;
                };
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                let conn = next_dialed_conn;
                next_dialed_conn += 1;
                let (mailbox, rx) = Mailbox::new(config.mailbox_capacity, config.policy);
                spawn_writer(write_half, rx, Arc::clone(&stats.tx));
                spawn_reader(conn, stream, ev_tx.clone(), Arc::clone(&stats));
                if epoch > 1 {
                    CNT_RECONNECTS.inc();
                    stats.reconnects.inc();
                }
                // BOUND: `ix < config.dial.len()` (checked above) and
                // both vectors were sized to `config.dial.len()`.
                dial_epochs[ix] = epoch + 1;
                dial_conns[ix] = Some(conn);
                send_msg(
                    &mailbox,
                    &Msg::Hello {
                        broker: core.broker,
                        epoch,
                        digest: core.own.digest(),
                    },
                );
                conns.insert(
                    conn,
                    Conn::Peer {
                        broker: peer,
                        mailbox,
                    },
                );
            }
            Ev::Closed { conn } => {
                conns.remove(&conn);
                // A broken dialed link is ours to re-establish.
                if let Some(ix) = dial_conns.iter().position(|c| *c == Some(conn)) {
                    dial_conns[ix] = None;
                    if !stopping.lock().map(|s| *s).unwrap_or(true) {
                        spawn_dialer(
                            config.dial[ix].1,
                            ix,
                            dial_epochs[ix],
                            ev_tx.clone(),
                            Arc::clone(&stopping),
                        );
                    }
                }
            }
            Ev::Msg { conn, msg } => {
                if matches!(msg, Msg::Shutdown) {
                    if let Ok(mut s) = stopping.lock() {
                        *s = true;
                    }
                    break;
                }
                handle_msg(&mut core, &mut conns, conn, msg);
            }
        }
    }

    DaemonFinal {
        checkpoint: core.checkpoint(),
    }
}

/// Re-tags an [`Conn::Unknown`] connection once its first message
/// reveals what it is; established connections keep their tag.
fn classify(conns: &mut BTreeMap<u64, Conn>, conn: u64, make: impl FnOnce(Mailbox) -> Conn) {
    if let Some(c) = conns.get_mut(&conn) {
        if matches!(c, Conn::Unknown { .. }) {
            *c = make(c.mailbox().clone());
        }
    }
}

/// The newest live link to a neighbor daemon, if any.
fn peer_conn(conns: &BTreeMap<u64, Conn>, peer: BrokerId) -> Option<&Mailbox> {
    conns.values().rev().find_map(|c| match c {
        Conn::Peer { broker, mailbox } if *broker == peer => Some(mailbox),
        _ => None,
    })
}

/// Applies one protocol message to the broker state.
fn handle_msg(core: &mut DaemonCore, conns: &mut BTreeMap<u64, Conn>, conn: u64, msg: Msg) {
    match msg {
        Msg::Hello {
            broker,
            epoch,
            digest,
        } => {
            classify(conns, conn, |mailbox| Conn::Peer { broker, mailbox });
            if let Some(c) = conns.get(&conn) {
                send_msg(
                    c.mailbox(),
                    &Msg::HelloAck {
                        broker: core.broker,
                        epoch,
                        digest: core.own.digest(),
                    },
                );
            }
            core.pull_if_stale(conns, conn, broker, digest);
        }
        Msg::HelloAck {
            broker,
            epoch: _,
            digest,
        } => {
            core.pull_if_stale(conns, conn, broker, digest);
        }
        Msg::Summary { from, bytes } => {
            if let Ok(summary) = core.codec.decode(&bytes, &core.schema) {
                core.views.insert(from, summary);
                core.stats.summaries_rx.inc();
            }
        }
        Msg::Digest { from, digest } => {
            core.pull_if_stale(conns, conn, from, digest);
        }
        Msg::Pull { from: _ } => {
            if let Some(c) = conns.get(&conn) {
                if send_msg(c.mailbox(), &core.own_summary_msg()) == SendOutcome::Sent {
                    core.stats.summaries_tx.inc();
                }
            }
        }
        Msg::Route { origin: _, event } => {
            deliver_local(core, conns, &event);
        }
        Msg::Subscribe { sub } => {
            classify(conns, conn, |mailbox| Conn::Client { mailbox });
            let id = SubscriptionId::new(core.broker, LocalSubId(core.next_local), sub.attr_mask());
            core.next_local += 1;
            core.exact.push((id, sub.clone()));
            core.own.insert_with_id(id, &sub);
            core.sub_owner.insert(id, conn);
            if let Some(c) = conns.get(&conn) {
                send_msg(c.mailbox(), &Msg::SubscribeAck { id });
            }
            // Eager propagation: every connected neighbor gets the
            // updated summary immediately.
            let push = core.own_summary_msg();
            for c in conns.values() {
                if let Conn::Peer { mailbox, .. } = c {
                    if send_msg(mailbox, &push) == SendOutcome::Sent {
                        core.stats.summaries_tx.inc();
                    }
                }
            }
        }
        Msg::Publish { seq, event } => {
            classify(conns, conn, |mailbox| Conn::Client { mailbox });
            let matched = deliver_local(core, conns, &event);
            let mut accepted = true;
            for (&peer, view) in &core.views {
                if view.match_event(&event).is_empty() {
                    continue;
                }
                let forward = Msg::Route {
                    origin: core.broker,
                    event: event.clone(),
                };
                let sent = peer_conn(conns, peer)
                    .map(|mailbox| send_msg(mailbox, &forward) == SendOutcome::Sent)
                    .unwrap_or(false);
                if !sent {
                    accepted = false;
                }
            }
            if accepted {
                CNT_ACKED.inc();
                core.stats.acked.inc();
            } else {
                CNT_REJECTED.inc();
                core.stats.rejected.inc();
            }
            if let Some(c) = conns.get(&conn) {
                send_msg(
                    c.mailbox(),
                    &Msg::PublishAck {
                        seq,
                        accepted,
                        matched,
                    },
                );
            }
        }
        // Client-bound messages arriving at a daemon are protocol
        // noise; drop them.
        Msg::SubscribeAck { .. } | Msg::PublishAck { .. } | Msg::Deliver { .. } => {}
        // Handled by the event loop before dispatch.
        Msg::Shutdown => {}
    }
}

/// Matches `event` against the local summary and delivers to owning
/// clients; returns the local match count.
fn deliver_local(core: &mut DaemonCore, conns: &BTreeMap<u64, Conn>, event: &Event) -> u32 {
    let ids = core.own.match_event(event);
    let matched = ids.len() as u32;
    for id in ids {
        let Some(&owner) = core.sub_owner.get(&id) else {
            continue; // subscriber from a restored checkpoint, not connected
        };
        let Some(c) = conns.get(&owner) else {
            continue;
        };
        if send_msg(
            c.mailbox(),
            &Msg::Deliver {
                id,
                event: event.clone(),
            },
        ) == SendOutcome::Sent
        {
            core.stats.deliveries.inc();
        }
    }
    matched
}

fn send_msg(mailbox: &Mailbox, msg: &Msg) -> SendOutcome {
    match msg.to_frame_bytes() {
        Ok(bytes) => mailbox.send(bytes),
        Err(_) => SendOutcome::Rejected,
    }
}
