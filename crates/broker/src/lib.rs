//! Summary-centric publish/subscribe brokers — the distributed half of the
//! ICDCS 2004 subscription-summarization system.
//!
//! Building on the summary structures of `subsum-core`, this crate
//! implements the paper's distributed algorithms:
//!
//! * [`propagation`] — **Algorithm 2** (§4.2): degree-indexed propagation
//!   of multi-broker summaries with `Merged_Brokers` bookkeeping;
//! * [`routing`] — **Algorithm 3** (§4.3): BROCLI-driven event routing to
//!   the brokers owning matched subscriptions, including the paper's
//!   *virtual degrees* load-balancing extension (§6);
//! * [`SummaryPubSub`] — the end-to-end system: exact per-broker
//!   subscription stores, periodic propagation, two-tier matching
//!   (summary candidates verified at the home broker);
//! * [`runtime`] — a concurrent deployment of the same logic with one OS
//!   thread per broker communicating over channels;
//! * [`chaos`] — deterministic fault injection (drops, duplicates, link
//!   cuts, partitions, broker crashes) with checkpoint-based recovery and
//!   digest-driven anti-entropy repair of neighbor summaries.
//!
//! # Example
//!
//! ```
//! use subsum_broker::SummaryPubSub;
//! use subsum_net::Topology;
//! use subsum_types::{stock_schema, Subscription, Event, NumOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut system = SummaryPubSub::new(
//!     Topology::cable_wireless_24(), stock_schema(), 1000)?;
//! let schema = system.schema().clone();
//! let sub = Subscription::builder(&schema)
//!     .num("price", NumOp::Lt, 10.0)?
//!     .build()?;
//! let id = system.subscribe(7, &sub)?;
//! system.propagate()?;
//! let event = Event::builder(&schema).num("price", 8.4)?.build();
//! assert_eq!(system.publish(0, &event).deliveries[0].id, id);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod chaos;
pub mod propagation;
pub mod routing;
pub mod runtime;
mod snapshot;
mod system;
pub mod transport;

pub use chaos::{ChaosConfig, ChaosMsg, ChaosReport, ChaosRun, ChaosStats};
pub use propagation::{propagate, MergedSummary, PropagationOutcome, PropagationSend};
pub use routing::{route_event, Notification, RoutingOptions, RoutingOutcome};
pub use snapshot::{BrokerCheckpoint, SnapshotError};
pub use system::{Delivery, PublishOutcome, SummaryPubSub};
pub use transport::Transport;
