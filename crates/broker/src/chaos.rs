//! Deterministic chaos testing: fault injection, crash/recovery, and
//! digest-driven anti-entropy for neighbor summaries.
//!
//! The paper's propagation protocol (§3.2–§3.3) assumes reliable links
//! and always-up brokers. This module drives the same summary exchange
//! over a [`LossyNet`] governed by a seeded [`FaultPlan`] — message
//! drops, duplicates, extra delays, link cuts, partitions, and broker
//! crashes — and layers two recovery mechanisms on top:
//!
//! * **Crash/recovery** — a crashed broker loses all in-memory state
//!   (summary, neighbor views, even its exact store). On restart it
//!   reloads its durable [`BrokerCheckpoint`] (or comes up empty),
//!   announces its rebuilt summary, and pulls its neighbors' summaries
//!   to re-learn its views.
//! * **Anti-entropy** — every `repair_interval` ticks each broker
//!   advertises a 24-byte [`SummaryDigest`] of its own summary to every
//!   neighbor. A receiver whose stored view digest disagrees answers
//!   with a pull, triggering one full summary re-send. Healthy links
//!   cost digest bytes only; repair traffic is proportional to actual
//!   divergence. The naive baseline ([`ChaosConfig::naive_repair`])
//!   re-sends the full summary every round instead.
//!
//! Updates are **view replacements**, so duplicated messages are
//! naturally idempotent, and every run is a pure function of
//! `(topology, subscriptions, plan, config)`: two runs with one seed
//! produce identical [`ChaosStats`], byte for byte.
//!
//! # Example
//!
//! ```
//! use subsum_broker::{ChaosConfig, ChaosRun};
//! use subsum_net::{FaultPlan, Topology};
//! use subsum_types::{stock_schema, NumOp, Subscription};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let schema = stock_schema();
//! let mut run = ChaosRun::new(
//!     Topology::fig7_tree(),
//!     schema.clone(),
//!     FaultPlan::reliable(7),
//!     ChaosConfig::default(),
//! )?;
//! let sub = Subscription::builder(&schema)
//!     .num("price", NumOp::Lt, 10.0)?
//!     .build()?;
//! run.subscribe(3, &sub);
//! run.checkpoint_all();
//! let report = run.run()?;
//! assert!(report.converged);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use subsum_core::{ArithWidth, BrokerSummary, SummaryCodec, SummaryDigest};
use subsum_net::{FaultPlan, LossyNet, NodeId, Topology};
use subsum_telemetry::trace::{SpanRecord, TraceCtx, Tracer};
use subsum_telemetry::Count;
use subsum_types::{
    BrokerId, IdLayout, LocalSubId, Schema, Subscription, SubscriptionId, TypeError,
};

use crate::snapshot::BrokerCheckpoint;
use crate::transport::Transport;

static CNT_DROPS: Count = Count::new(subsum_telemetry::names::CHAOS_DROPS);
static CNT_DUPS: Count = Count::new(subsum_telemetry::names::CHAOS_DUPS);
static CNT_CRASHES: Count = Count::new(subsum_telemetry::names::CHAOS_CRASHES);
static CNT_RESYNCS: Count = Count::new(subsum_telemetry::names::CHAOS_RESYNCS);
static CNT_DIGEST_BYTES: Count = Count::new(subsum_telemetry::names::CHAOS_DIGEST_BYTES);
static CNT_FULL_BYTES: Count = Count::new(subsum_telemetry::names::CHAOS_FULL_BYTES);

/// Wire cost charged for a pull request (opcode + sender id).
const PULL_BYTES: u64 = 4;

/// Tuning knobs of a chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Base transit delay of every broker→broker message, in ticks.
    pub link_delay: u64,
    /// Ticks between anti-entropy rounds.
    pub repair_interval: u64,
    /// Number of anti-entropy rounds to schedule.
    pub repair_rounds: u32,
    /// Replace digest exchange by full summary re-sends every round
    /// (the naive baseline the experiments compare against).
    pub naive_repair: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            link_delay: 1,
            repair_interval: 50,
            repair_rounds: 20,
            naive_repair: false,
        }
    }
}

/// Every decision counter of a chaos run. Two runs with identical
/// inputs (same seed) produce identical stats — the determinism tests
/// compare whole structs for equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Broker messages offered to the lossy network.
    pub offered: u64,
    /// Broker message copies actually delivered.
    pub delivered: u64,
    /// Messages dropped by per-link loss.
    pub dropped: u64,
    /// Messages lost to link cuts / partitions.
    pub link_dropped: u64,
    /// Copies lost because the receiver was crashed.
    pub crash_dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Broker crash events executed.
    pub crashes: u64,
    /// Broker restart events executed.
    pub restarts: u64,
    /// Digest mismatches that triggered a pull (anti-entropy resyncs).
    pub resyncs: u64,
    /// Digest advertisements sent.
    pub digest_msgs: u64,
    /// Bytes spent on digest advertisements.
    pub digest_bytes: u64,
    /// Full summary updates sent (initial wave, pulls, restarts, naive
    /// rounds).
    pub full_updates: u64,
    /// Bytes spent on full summary updates (real wire-codec sizes).
    pub full_summary_bytes: u64,
    /// Pull requests sent.
    pub pulls: u64,
    /// Bytes spent on pull requests.
    pub pull_bytes: u64,
}

impl ChaosStats {
    /// Total bytes put on the wire (updates + digests + pulls).
    pub fn total_bytes(&self) -> u64 {
        self.full_summary_bytes + self.digest_bytes + self.pull_bytes
    }
}

/// The outcome of a drained chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Whether every broker ended alive with its own summary equal to
    /// the fault-free oracle and every neighbor view digest-equal to
    /// that neighbor's own summary.
    pub converged: bool,
    /// First tick at which the system was observed converged (after all
    /// scheduled faults ended), if any.
    pub converged_at: Option<u64>,
    /// Tick at which the event queue drained.
    pub drained_at: u64,
    /// The run's decision counters.
    pub stats: ChaosStats,
    /// Flight-recorder contents captured at each crash event (broker,
    /// spans oldest-first): the "black box" of what the dying broker
    /// last saw. Empty when no tracer is attached or nothing crashed.
    pub crash_snapshots: Vec<(NodeId, Vec<SpanRecord>)>,
}

/// One simulated broker of a chaos run: its exact store, its own
/// summary, and its (possibly stale) views of each neighbor's summary.
#[derive(Debug)]
struct ChaosBroker {
    alive: bool,
    next_local: u32,
    /// Exact store in ascending-id order (insertion order == id order,
    /// the canonical discipline that makes digests comparable).
    exact: Vec<(SubscriptionId, Subscription)>,
    own: BrokerSummary,
    /// Last received summary of each neighbor.
    views: BTreeMap<NodeId, BrokerSummary>,
    /// Durable checkpoint bytes, surviving crashes. `None` models a
    /// broker that never checkpointed and restarts empty.
    checkpoint: Option<Vec<u8>>,
}

/// The summary-synchronization protocol messages of a chaos run.
///
/// Public so scenarios can be driven over any [`Transport`]
/// implementation (see [`ChaosRun::run_with`]); the payload-carrying
/// variants are exactly the anti-entropy protocol a real deployment
/// speaks, the control variants are simulation-only events.
#[derive(Debug, Clone)]
pub enum ChaosMsg {
    /// Full summary of the sender (view replacement — idempotent).
    Update(BrokerSummary),
    /// Digest advertisement of the sender's own summary.
    Digest(SummaryDigest),
    /// Request for a full summary re-send.
    Pull,
    /// Control: the broker crashes, losing in-memory state.
    Crash,
    /// Control: the broker restarts from its checkpoint.
    Restart,
    /// Control: start one anti-entropy round at this broker.
    RepairTick,
}

/// A deterministic chaos scenario: a broker overlay exchanging summary
/// state over a faulty network, with checkpoint recovery and
/// anti-entropy repair. See the [module docs](self).
#[derive(Debug)]
pub struct ChaosRun {
    topology: Topology,
    schema: Schema,
    plan: FaultPlan,
    config: ChaosConfig,
    codec: SummaryCodec,
    brokers: Vec<ChaosBroker>,
    /// Optional causal tracer shared with the lossy network. `None`
    /// leaves every trace hook a no-op.
    tracer: Option<Arc<Tracer>>,
}

impl ChaosRun {
    /// Creates a run over `topology` with no subscriptions yet.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the schema exceeds the id layout.
    pub fn new(
        topology: Topology,
        schema: Schema,
        plan: FaultPlan,
        config: ChaosConfig,
    ) -> Result<Self, TypeError> {
        let layout = IdLayout::new(topology.len() as u64, 1 << 20, schema.len() as u32)?;
        let codec = SummaryCodec::new(layout, ArithWidth::Eight);
        let brokers = (0..topology.len())
            .map(|_| ChaosBroker {
                alive: true,
                next_local: 0,
                exact: Vec::new(),
                own: BrokerSummary::new(schema.clone()),
                views: BTreeMap::new(),
                checkpoint: None,
            })
            .collect();
        Ok(ChaosRun {
            topology,
            schema,
            plan,
            config,
            codec,
            brokers,
            tracer: None,
        })
    }

    /// Attaches a causal tracer. Every control message and summary
    /// exchange of the next [`ChaosRun::run`] gets a trace: scheduled
    /// origins (initial wave, repair ticks, restarts) start new roots,
    /// reactive messages (digest → pull → update) extend the chain of
    /// the message that caused them, and each crash event snapshots the
    /// dying broker's flight recorder into the report.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// A fresh root context if a tracer is attached, [`TraceCtx::NONE`]
    /// otherwise.
    fn root(&self) -> TraceCtx {
        self.tracer
            .as_ref()
            .map(|t| t.new_root())
            .unwrap_or(TraceCtx::NONE)
    }

    /// Registers `sub` at broker `b`, returning its id. Ids ascend with
    /// subscribe order, so summaries are always built in the canonical
    /// ascending-id insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn subscribe(&mut self, b: NodeId, sub: &Subscription) -> SubscriptionId {
        let broker = &mut self.brokers[b as usize];
        let id = SubscriptionId::new(BrokerId(b), LocalSubId(broker.next_local), sub.attr_mask());
        broker.next_local += 1;
        broker.exact.push((id, sub.clone()));
        broker.own.insert_with_id(id, sub);
        id
    }

    /// Writes broker `b`'s durable checkpoint (survives crashes).
    pub fn checkpoint(&mut self, b: NodeId) {
        let broker = &mut self.brokers[b as usize];
        let cp = BrokerCheckpoint {
            next_local: broker.next_local,
            subs: broker.exact.clone(),
        };
        broker.checkpoint = Some(cp.to_bytes());
    }

    /// Checkpoints every broker.
    pub fn checkpoint_all(&mut self) {
        for b in 0..self.brokers.len() as NodeId {
            self.checkpoint(b);
        }
    }

    /// The fault-free oracle: each broker's summary rebuilt from its
    /// durable subscription set in ascending-id order.
    pub fn oracle(&self) -> Vec<BrokerSummary> {
        self.brokers
            .iter()
            .map(|br| {
                BrokerSummary::rebuild(self.schema.clone(), br.exact.iter().map(|(id, s)| (*id, s)))
            })
            .collect()
    }

    /// Whether the system is converged: every broker alive, every own
    /// summary digest-equal to the oracle, and both directions of every
    /// edge agreeing (the view of a neighbor equals that neighbor's own
    /// summary).
    pub fn converged(&self) -> bool {
        if !self.brokers.iter().all(|b| b.alive) {
            return false;
        }
        let empty = BrokerSummary::new(self.schema.clone()).digest();
        let own: Vec<SummaryDigest> = self.brokers.iter().map(|b| b.own.digest()).collect();
        let oracle = self.oracle();
        for (b, broker) in self.brokers.iter().enumerate() {
            if own[b] != oracle[b].digest() {
                return false;
            }
            for &nb in self.topology.neighbors(b as NodeId) {
                let view = broker
                    .views
                    .get(&nb)
                    .map(BrokerSummary::digest)
                    .unwrap_or(empty);
                if view != own[nb as usize] {
                    return false;
                }
            }
        }
        true
    }

    /// Executes the scenario to quiescence: initial summary wave, the
    /// fault plan's crashes/cuts/drops, `repair_rounds` anti-entropy
    /// rounds, until the event queue drains. Equivalent to
    /// [`ChaosRun::run_with`] over a fresh [`LossyNet`] governed by the
    /// run's fault plan.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if a summary exceeds the wire layout
    /// (cannot happen for schema-consistent runs).
    pub fn run(&mut self) -> Result<ChaosReport, TypeError> {
        let mut net: LossyNet<ChaosMsg> = LossyNet::new(self.plan.clone());
        if let Some(tracer) = &self.tracer {
            net.set_tracer(Arc::clone(tracer));
        }
        self.run_with(&mut net)
    }

    /// Executes the scenario over an arbitrary [`Transport`]. The
    /// protocol logic is written once against the trait; the simulator
    /// path ([`ChaosRun::run`]) and a socket-backed deployment drive
    /// the exact same code.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if a summary exceeds the wire layout
    /// (cannot happen for schema-consistent runs).
    pub fn run_with<T: Transport<ChaosMsg>>(
        &mut self,
        net: &mut T,
    ) -> Result<ChaosReport, TypeError> {
        let mut stats = ChaosStats::default();
        let mut crash_snapshots = Vec::new();
        let n = self.brokers.len() as NodeId;

        // Schedule the plan's crash/restart control events and the
        // anti-entropy rounds up front; everything else is reactive.
        for crash in &self.plan.crashes.clone() {
            net.schedule(crash.broker, crash.at, TraceCtx::NONE, ChaosMsg::Crash);
            if crash.restart_at != u64::MAX {
                net.schedule(
                    crash.broker,
                    crash.restart_at,
                    TraceCtx::NONE,
                    ChaosMsg::Restart,
                );
            }
        }
        for round in 1..=self.config.repair_rounds as u64 {
            for b in 0..n {
                net.schedule(
                    b,
                    round * self.config.repair_interval,
                    TraceCtx::NONE,
                    ChaosMsg::RepairTick,
                );
            }
        }

        // Initial propagation wave: everyone announces its summary. Each
        // broker's wave is one causal root, so its fan-out shows up as
        // sibling spans of a single trace.
        for b in 0..n {
            let ctx = self.root();
            self.send_update_to_neighbors(&mut *net, &mut stats, b, ctx)?;
        }

        let quiet_after = self.plan_quiet_after();
        let empty_digest = BrokerSummary::new(self.schema.clone()).digest();
        let mut converged_at = None;
        while let Some((time, env)) = net.recv() {
            let me = env.to;
            // Reactive sends extend the causal chain of the message that
            // triggered them; the parent already points at this
            // delivery's dequeue span.
            let ctx = env.trace;
            match env.payload {
                ChaosMsg::Update(summary) => {
                    if self.brokers[me as usize].alive {
                        // View replacement: duplicates are no-ops.
                        self.brokers[me as usize].views.insert(env.from, summary);
                    }
                }
                ChaosMsg::Digest(digest) => {
                    if self.brokers[me as usize].alive {
                        let view = self.brokers[me as usize]
                            .views
                            .get(&env.from)
                            .map(BrokerSummary::digest)
                            .unwrap_or(empty_digest);
                        if view != digest {
                            stats.resyncs += 1;
                            stats.pulls += 1;
                            stats.pull_bytes += PULL_BYTES;
                            net.send(me, env.from, self.config.link_delay, ctx, ChaosMsg::Pull);
                        }
                    }
                }
                ChaosMsg::Pull => {
                    if self.brokers[me as usize].alive {
                        self.send_update(&mut *net, &mut stats, me, env.from, ctx)?;
                    }
                }
                ChaosMsg::Crash => {
                    // Capture the black box before the state is wiped.
                    if let Some(snap) = self
                        .tracer
                        .as_ref()
                        .and_then(|t| t.recorder(me))
                        .map(|r| r.snapshot())
                    {
                        crash_snapshots.push((me, snap));
                    }
                    let broker = &mut self.brokers[me as usize];
                    broker.alive = false;
                    broker.exact.clear();
                    broker.next_local = 0;
                    broker.own = BrokerSummary::new(self.schema.clone());
                    broker.views.clear();
                    stats.crashes += 1;
                }
                ChaosMsg::Restart => {
                    self.restart(me);
                    stats.restarts += 1;
                    // Announce the recovered summary and re-learn every
                    // neighbor's. Recovery is a fresh causal origin.
                    let ctx = self.root();
                    self.send_update_to_neighbors(&mut *net, &mut stats, me, ctx)?;
                    for &nb in self.topology.neighbors(me).to_vec().iter() {
                        stats.pulls += 1;
                        stats.pull_bytes += PULL_BYTES;
                        net.send(me, nb, self.config.link_delay, ctx, ChaosMsg::Pull);
                    }
                }
                ChaosMsg::RepairTick => {
                    if self.brokers[me as usize].alive {
                        // Each anti-entropy round at each broker is a
                        // fresh causal origin.
                        let ctx = self.root();
                        if self.config.naive_repair {
                            self.send_update_to_neighbors(&mut *net, &mut stats, me, ctx)?;
                        } else {
                            let digest = self.brokers[me as usize].own.digest();
                            for &nb in self.topology.neighbors(me).to_vec().iter() {
                                stats.digest_msgs += 1;
                                stats.digest_bytes += SummaryDigest::WIRE_BYTES as u64;
                                net.send(
                                    me,
                                    nb,
                                    self.config.link_delay,
                                    ctx,
                                    ChaosMsg::Digest(digest),
                                );
                            }
                        }
                    }
                }
            }
            if converged_at.is_none() && time >= quiet_after && self.converged() {
                converged_at = Some(time);
            }
        }

        let fault = net.fault_stats();
        stats.offered = fault.offered;
        stats.delivered = fault.delivered;
        stats.dropped = fault.dropped;
        stats.link_dropped = fault.link_dropped;
        stats.crash_dropped = fault.crash_dropped;
        stats.duplicated = fault.duplicated;

        CNT_DROPS.add(stats.dropped + stats.link_dropped + stats.crash_dropped);
        CNT_DUPS.add(stats.duplicated);
        CNT_CRASHES.add(stats.crashes);
        CNT_RESYNCS.add(stats.resyncs);
        CNT_DIGEST_BYTES.add(stats.digest_bytes);
        CNT_FULL_BYTES.add(stats.full_summary_bytes);

        Ok(ChaosReport {
            converged: self.converged(),
            converged_at,
            drained_at: net.now(),
            stats,
            crash_snapshots,
        })
    }

    /// First tick after which no scheduled fault (crash window, cut,
    /// partition) is active anymore.
    fn plan_quiet_after(&self) -> u64 {
        let crash_end = self.plan.crashes.iter().map(|c| c.restart_at).max();
        let cut_end = self.plan.cuts.iter().map(|c| c.until).max();
        let part_end = self.plan.partitions.iter().map(|p| p.until).max();
        [crash_end, cut_end, part_end]
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(0)
    }

    fn restart(&mut self, b: NodeId) {
        let broker = &mut self.brokers[b as usize];
        broker.alive = true;
        broker.views.clear();
        match broker
            .checkpoint
            .as_deref()
            .and_then(|bytes| BrokerCheckpoint::from_bytes(bytes).ok())
        {
            Some(cp) => {
                broker.own = BrokerSummary::rebuild(
                    self.schema.clone(),
                    cp.subs.iter().map(|(id, s)| (*id, s)),
                );
                broker.next_local = cp.next_local;
                broker.exact = cp.subs;
            }
            None => {
                broker.own = BrokerSummary::new(self.schema.clone());
                broker.next_local = 0;
                broker.exact = Vec::new();
            }
        }
    }

    fn send_update<T: Transport<ChaosMsg>>(
        &mut self,
        net: &mut T,
        stats: &mut ChaosStats,
        from: NodeId,
        to: NodeId,
        ctx: TraceCtx,
    ) -> Result<(), TypeError> {
        let summary = self.brokers[from as usize].own.clone();
        stats.full_updates += 1;
        stats.full_summary_bytes += self.codec.encoded_len(&summary)? as u64;
        net.send(
            from,
            to,
            self.config.link_delay,
            ctx,
            ChaosMsg::Update(summary),
        );
        Ok(())
    }

    fn send_update_to_neighbors<T: Transport<ChaosMsg>>(
        &mut self,
        net: &mut T,
        stats: &mut ChaosStats,
        from: NodeId,
        ctx: TraceCtx,
    ) -> Result<(), TypeError> {
        for &nb in self.topology.neighbors(from).to_vec().iter() {
            self.send_update(net, stats, from, nb, ctx)?;
        }
        Ok(())
    }
}
