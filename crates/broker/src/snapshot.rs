//! Broker-state snapshots: persist and restore a [`SummaryPubSub`].
//!
//! A production pub/sub deployment must survive restarts without losing
//! the outstanding subscriptions. A snapshot captures everything not
//! derivable from code: the schema, the overlay, each broker's exact
//! subscription store (with ids and local counters) and the §6 shadow
//! maps. Summaries and multi-broker state are *not* persisted — they are
//! summaries, rebuilt exactly by the first propagation after restore.
//!
//! Format: magic, version, schema (names + kinds), topology (edge list),
//! flags, per-broker `next_local`, subscription records and shadow edges,
//! all via the deterministic byte codec.

use std::collections::HashMap;

use subsum_net::{NodeId, Topology};
use subsum_types::{
    AttrKind, ByteReader, ByteWriter, DecodeError, Schema, Subscription, SubscriptionId,
};

use crate::system::SummaryPubSub;

const MAGIC: u32 = 0x5355_4253; // "SUBS"
const VERSION: u8 = 1;

const CHECKPOINT_MAGIC: u32 = 0x5342_4B50; // "SBKP"
const CHECKPOINT_VERSION: u8 = 1;

/// Errors from [`SummaryPubSub::from_snapshot`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The stream is not a snapshot (bad magic) or of an unknown version.
    Format(&'static str),
    /// Truncated or structurally malformed content.
    Decode(DecodeError),
    /// Decoded content violates the type layer.
    Type(subsum_types::TypeError),
    /// Decoded topology is invalid.
    Topology(subsum_net::TopologyError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Format(what) => write!(f, "snapshot format error: {what}"),
            SnapshotError::Decode(e) => write!(f, "snapshot decode failed: {e}"),
            SnapshotError::Type(e) => write!(f, "snapshot content invalid: {e}"),
            SnapshotError::Topology(e) => write!(f, "snapshot topology invalid: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> Self {
        SnapshotError::Decode(e)
    }
}

impl From<subsum_types::TypeError> for SnapshotError {
    fn from(e: subsum_types::TypeError) -> Self {
        SnapshotError::Type(e)
    }
}

impl From<subsum_net::TopologyError> for SnapshotError {
    fn from(e: subsum_net::TopologyError) -> Self {
        SnapshotError::Topology(e)
    }
}

fn put_id(w: &mut ByteWriter, id: SubscriptionId) {
    w.u16(id.broker.0);
    w.u32(id.local.0);
    w.u64(id.mask.0);
}

fn get_id(r: &mut ByteReader<'_>) -> Result<SubscriptionId, DecodeError> {
    Ok(SubscriptionId::new(
        subsum_types::BrokerId(r.u16()?),
        subsum_types::LocalSubId(r.u32()?),
        subsum_types::AttrMask(r.u64()?),
    ))
}

/// The durable state of a *single* broker: its local-id counter and its
/// exact subscription store, id-sorted. This is what a broker writes to
/// stable storage between crashes; everything else (summaries, neighbor
/// views, intern tables) is derived and re-learned after restart.
///
/// Unlike the whole-system snapshot, a checkpoint carries no schema or
/// topology — the restarting broker re-reads those from its static
/// configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BrokerCheckpoint {
    /// The next unassigned local subscription id.
    pub next_local: u32,
    /// The exact store, sorted by subscription id (so a summary rebuilt
    /// from a checkpoint uses the canonical ascending-id insertion order
    /// and is digest-comparable to the pre-crash summary).
    pub subs: Vec<(SubscriptionId, Subscription)>,
}

impl BrokerCheckpoint {
    /// Captures broker `b`'s durable state out of a running system.
    pub fn capture(sys: &SummaryPubSub, b: NodeId) -> Self {
        let mut subs: Vec<(SubscriptionId, Subscription)> = sys
            .exact_store(b)
            .iter()
            .map(|(id, sub)| (*id, sub.clone()))
            .collect();
        subs.sort_by_key(|(id, _)| *id);
        BrokerCheckpoint {
            next_local: sys.next_local_at(b),
            subs,
        }
    }

    /// Serializes the checkpoint with the deterministic byte codec.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(CHECKPOINT_MAGIC);
        w.u8(CHECKPOINT_VERSION);
        w.u32(self.next_local);
        w.u32(self.subs.len() as u32);
        for (id, sub) in &self.subs {
            put_id(&mut w, *id);
            sub.encode(&mut w);
        }
        w.into_bytes().to_vec()
    }

    /// Parses a checkpoint produced by [`BrokerCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on a malformed or truncated stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        if r.u32()? != CHECKPOINT_MAGIC {
            return Err(SnapshotError::Format("bad checkpoint magic"));
        }
        if r.u8()? != CHECKPOINT_VERSION {
            return Err(SnapshotError::Format("unsupported checkpoint version"));
        }
        let next_local = r.u32()?;
        let n = r.u32()? as usize;
        let mut subs = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let id = get_id(&mut r)?;
            let sub = Subscription::decode(&mut r)?;
            subs.push((id, sub));
        }
        if !r.is_exhausted() {
            return Err(SnapshotError::Format("trailing checkpoint bytes"));
        }
        // BOUND: windows(2) slices always hold exactly two elements.
        if !subs.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(SnapshotError::Format("checkpoint subs not id-sorted"));
        }
        Ok(BrokerCheckpoint { next_local, subs })
    }
}

impl SummaryPubSub {
    /// Serializes the durable state (schema, overlay, exact
    /// stores, shadow maps). See the [module docs](self) for what is and
    /// is not captured.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(MAGIC);
        w.u8(VERSION);

        // Schema.
        let schema = self.schema();
        w.u16(schema.len() as u16);
        for (_, spec) in schema.iter() {
            w.str16(&spec.name);
            w.u8(match spec.kind {
                AttrKind::String => 0,
                AttrKind::Integer => 1,
                AttrKind::Float => 2,
                AttrKind::Date => 3,
            });
        }

        // Topology.
        let topology = self.topology();
        w.u16(topology.len() as u16);
        let edges: Vec<_> = topology.edges().collect();
        w.u32(edges.len() as u32);
        for (a, b) in edges {
            w.u16(a);
            w.u16(b);
        }

        // System flags and capacity.
        w.u8(u8::from(self.subsumption_filter_enabled()));
        w.u64(self.max_subs_per_broker());

        // Per-broker stores.
        for b in 0..topology.len() as NodeId {
            w.u32(self.next_local_at(b));
            let mut subs: Vec<(&SubscriptionId, &Subscription)> =
                self.exact_store(b).iter().collect();
            subs.sort_by_key(|(id, _)| **id);
            w.u32(subs.len() as u32);
            for (id, sub) in subs {
                put_id(&mut w, *id);
                sub.encode(&mut w);
            }
            let mut shadow_edges: Vec<(SubscriptionId, SubscriptionId)> =
                self.shadow_edges(b).collect();
            shadow_edges.sort();
            w.u32(shadow_edges.len() as u32);
            for (covered, coverer) in shadow_edges {
                put_id(&mut w, covered);
                put_id(&mut w, coverer);
            }
        }
        w.into_bytes().to_vec()
    }

    /// Restores a system from a snapshot produced by
    /// [`SummaryPubSub::to_snapshot`]. Summaries are rebuilt; run
    /// [`SummaryPubSub::propagate`] before publishing.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if the stream is malformed or
    /// internally inconsistent.
    pub fn from_snapshot(bytes: &[u8]) -> Result<SummaryPubSub, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        if r.u32()? != MAGIC {
            return Err(SnapshotError::Format("bad magic"));
        }
        if r.u8()? != VERSION {
            return Err(SnapshotError::Format("unsupported version"));
        }

        let n_attrs = r.u16()? as usize;
        let mut sb = Schema::builder();
        for _ in 0..n_attrs {
            let name = r.str16()?.to_owned();
            let kind = match r.u8()? {
                0 => AttrKind::String,
                1 => AttrKind::Integer,
                2 => AttrKind::Float,
                3 => AttrKind::Date,
                _ => return Err(SnapshotError::Format("unknown attribute kind")),
            };
            sb = sb.attr(name, kind)?;
        }
        let schema = sb.build();

        let n_brokers = r.u16()? as usize;
        let n_edges = r.u32()? as usize;
        let mut edges = Vec::with_capacity(n_edges.min(1 << 16));
        for _ in 0..n_edges {
            edges.push((r.u16()?, r.u16()?));
        }
        let topology = Topology::from_edges(n_brokers, &edges)?;

        let filter = r.u8()? != 0;
        let max_subs = r.u64()?;

        let mut sys = SummaryPubSub::new(topology, schema, max_subs)?;
        sys.set_subsumption_filter(filter);

        for b in 0..n_brokers as NodeId {
            let next_local = r.u32()?;
            let n_subs = r.u32()? as usize;
            let mut subs = Vec::with_capacity(n_subs.min(1 << 20));
            for _ in 0..n_subs {
                let id = get_id(&mut r)?;
                let sub = Subscription::decode(&mut r)?;
                subs.push((id, sub));
            }
            let n_shadows = r.u32()? as usize;
            let mut shadows = HashMap::with_capacity(n_shadows.min(1 << 20));
            for _ in 0..n_shadows {
                let covered = get_id(&mut r)?;
                let coverer = get_id(&mut r)?;
                shadows.insert(covered, coverer);
            }
            sys.restore_broker_state(b, next_local, subs, shadows)
                .map_err(SnapshotError::Type)?;
        }
        if !r.is_exhausted() {
            return Err(SnapshotError::Format("trailing bytes"));
        }
        Ok(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use subsum_types::{stock_schema, Event, NumOp, StrOp};

    fn populated_system(filter: bool) -> (SummaryPubSub, Vec<SubscriptionId>) {
        let schema = stock_schema();
        let mut sys = SummaryPubSub::new(Topology::fig7_tree(), schema.clone(), 1000).unwrap();
        sys.set_subsumption_filter(filter);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ids = Vec::new();
        for b in 0..13u16 {
            for k in 0..6 {
                let sub = if k % 2 == 0 {
                    Subscription::builder(&schema)
                        .num("price", NumOp::Lt, rng.gen_range(1..50) as f64)
                        .unwrap()
                        .build()
                        .unwrap()
                } else {
                    Subscription::builder(&schema)
                        .str_op(
                            "symbol",
                            StrOp::Prefix,
                            &format!("S{}", rng.gen_range(0..4)),
                        )
                        .unwrap()
                        .build()
                        .unwrap()
                };
                ids.push(sys.subscribe(b, &sub).unwrap());
            }
        }
        (sys, ids)
    }

    #[test]
    fn snapshot_roundtrip_preserves_behavior() {
        let (mut original, _) = populated_system(false);
        original.propagate().unwrap();
        let snapshot = original.to_snapshot();
        let mut restored = SummaryPubSub::from_snapshot(&snapshot).unwrap();
        restored.propagate().unwrap();

        let schema = original.schema().clone();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let event = Event::builder(&schema)
                .num("price", rng.gen_range(0..60) as f64)
                .unwrap()
                .str("symbol", format!("S{}x", rng.gen_range(0..5)))
                .unwrap()
                .build();
            let publisher = rng.gen_range(0..13u16);
            let a: Vec<_> = original
                .publish(publisher, &event)
                .deliveries
                .iter()
                .map(|d| d.id)
                .collect();
            let b: Vec<_> = restored
                .publish(publisher, &event)
                .deliveries
                .iter()
                .map(|d| d.id)
                .collect();
            assert_eq!(a, b);
            assert_eq!(a, original.oracle_matches(&event));
        }
    }

    #[test]
    fn snapshot_roundtrip_with_shadow_maps() {
        let (mut original, ids) = populated_system(true);
        let shadowed: usize = (0..13u16).map(|b| original.shadowed_count(b)).sum();
        assert!(shadowed > 0, "workload must exercise shadowing");
        original.propagate().unwrap();
        let snapshot = original.to_snapshot();
        let mut restored = SummaryPubSub::from_snapshot(&snapshot).unwrap();
        let restored_shadowed: usize = (0..13u16).map(|b| restored.shadowed_count(b)).sum();
        assert_eq!(shadowed, restored_shadowed);
        restored.propagate().unwrap();

        // Ids keep working: new subscriptions continue the local counters
        // without collisions.
        let schema = restored.schema().clone();
        let sub = Subscription::builder(&schema)
            .num("high", NumOp::Gt, 1.0)
            .unwrap()
            .build()
            .unwrap();
        let new_id = restored.subscribe(3, &sub).unwrap();
        assert!(
            !ids.contains(&new_id),
            "restored counters must not reuse ids"
        );
    }

    #[test]
    fn checkpoint_roundtrip_and_rejection() {
        let (sys, _) = populated_system(false);
        for b in 0..13u16 {
            let cp = BrokerCheckpoint::capture(&sys, b);
            assert!(cp.subs.windows(2).all(|w| w[0].0 < w[1].0), "id-sorted");
            let bytes = cp.to_bytes();
            assert_eq!(BrokerCheckpoint::from_bytes(&bytes).unwrap(), cp);
            // Truncations never panic, always reject.
            for cut in (0..bytes.len()).step_by(11) {
                assert!(BrokerCheckpoint::from_bytes(&bytes[..cut]).is_err());
            }
        }
        assert!(matches!(
            BrokerCheckpoint::from_bytes(&[0, 0, 0, 0, 1]),
            Err(SnapshotError::Format("bad checkpoint magic"))
        ));
        // A whole-system snapshot is not a checkpoint.
        assert!(BrokerCheckpoint::from_bytes(&sys.to_snapshot()).is_err());
    }

    #[test]
    fn malformed_snapshots_rejected() {
        assert!(matches!(
            SummaryPubSub::from_snapshot(&[]),
            Err(SnapshotError::Decode(_))
        ));
        assert!(matches!(
            SummaryPubSub::from_snapshot(&[0, 0, 0, 0, 1]),
            Err(SnapshotError::Format("bad magic"))
        ));
        let (sys, _) = populated_system(false);
        let mut bytes = sys.to_snapshot();
        bytes.push(0xFF);
        assert!(matches!(
            SummaryPubSub::from_snapshot(&bytes),
            Err(SnapshotError::Format("trailing bytes"))
        ));
        // Truncations never panic.
        let bytes = sys.to_snapshot();
        for cut in (0..bytes.len()).step_by(37) {
            assert!(SummaryPubSub::from_snapshot(&bytes[..cut]).is_err());
        }
    }
}
