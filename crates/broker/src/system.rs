//! End-to-end summary-centric pub/sub system: subscription management,
//! periodic summary propagation and two-tier event delivery.
//!
//! [`SummaryPubSub`] composes the pieces of the paper into the system a
//! user would deploy:
//!
//! * brokers accept subscriptions ([`SummaryPubSub::subscribe`]) into an
//!   exact local store and the broker's own summary;
//! * a propagation phase ([`SummaryPubSub::propagate`]) runs Algorithm 2,
//!   installing multi-broker summaries at every broker;
//! * publishing ([`SummaryPubSub::publish`]) runs Algorithm 3 and then
//!   performs the home-broker verification: candidate matches reported to
//!   an owner are re-checked against the owner's exact subscriptions, so
//!   consumers only ever see true matches despite SACS generalization.

use std::collections::HashMap;
use std::sync::Arc;

use subsum_core::{
    ArithWidth, BrokerSummary, MatchScratch, ShardScratch, SizeParams, SummaryCodec, SummaryStats,
};
use subsum_net::{NetMetrics, NodeId, Topology};
use subsum_telemetry::trace::{SpanKind, TraceCtx, Tracer};
use subsum_telemetry::{Count, Stage};
use subsum_types::{Event, IdLayout, LocalSubId, Schema, Subscription, SubscriptionId, TypeError};

use crate::propagation::{propagate, MergedSummary, PropagationOutcome};
use crate::routing::{
    route_event_sharded, route_event_sharded_traced, route_event_traced, route_event_with_scratch,
    RoutingOptions, RoutingOutcome, ShardedStored,
};

/// Telemetry stages and counters of the end-to-end engine. Publishing is
/// split into its pipeline stages — Algorithm 3 routing
/// (`publish.route`, which itself spans `publish.candidate_match` per
/// examined broker) and tier-2 owner verification
/// (`publish.owner_verify`) — so a run report can answer where a
/// publish's time goes.
static STAGE_SUBSCRIBE: Stage = Stage::new(subsum_telemetry::names::BROKER_SUBSCRIBE);
static STAGE_PROPAGATE: Stage = Stage::new(subsum_telemetry::names::BROKER_PROPAGATE);
static STAGE_ROUTE: Stage = Stage::new(subsum_telemetry::names::PUBLISH_ROUTE);
static STAGE_OWNER_VERIFY: Stage = Stage::new(subsum_telemetry::names::PUBLISH_OWNER_VERIFY);
static CNT_EVENTS: Count = Count::new(subsum_telemetry::names::PUBLISH_EVENTS);
static CNT_CANDIDATES: Count = Count::new(subsum_telemetry::names::PUBLISH_CANDIDATES);
static CNT_DELIVERIES: Count = Count::new(subsum_telemetry::names::PUBLISH_DELIVERIES);
static CNT_FALSE_POSITIVES: Count = Count::new(subsum_telemetry::names::PUBLISH_FALSE_POSITIVES);

/// A confirmed delivery: the event matched this subscription exactly and
/// its owner broker was notified.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The matched subscription.
    pub id: SubscriptionId,
    /// The broker that owns (and verified) the subscription.
    pub owner: NodeId,
}

/// The outcome of publishing one event.
#[derive(Debug, Clone, Default)]
pub struct PublishOutcome {
    /// Confirmed deliveries after home-broker verification.
    pub deliveries: Vec<Delivery>,
    /// Candidates rejected by verification (SACS false positives).
    pub false_positives: Vec<SubscriptionId>,
    /// The raw routing trace (visits, hops, metrics).
    pub routing: RoutingOutcome,
}

impl PublishOutcome {
    /// The fraction of verified candidates that tier-2 verification
    /// rejected: `false_positives / (deliveries + false_positives)`,
    /// or 0.0 when the event produced no candidates at all.
    ///
    /// This is the cost SACS generalization imposes on the owner brokers
    /// (each rejected candidate burned one verification); shadow-expanded
    /// deliveries of the §6 subsumption filter count toward the
    /// denominator because their coverer was a verified candidate.
    pub fn false_positive_rate(&self) -> f64 {
        let rejected = self.false_positives.len();
        let total = self.deliveries.len() + rejected;
        if total == 0 {
            0.0
        } else {
            rejected as f64 / total as f64
        }
    }
}

/// A complete summary-centric pub/sub deployment over a broker overlay.
///
/// # Example
///
/// ```
/// use subsum_broker::SummaryPubSub;
/// use subsum_net::Topology;
/// use subsum_types::{stock_schema, Subscription, Event, StrOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut system = SummaryPubSub::new(Topology::fig7_tree(), stock_schema(), 1000)?;
/// let schema = system.schema().clone();
///
/// let sub = Subscription::builder(&schema)
///     .str_op("symbol", StrOp::Prefix, "OT")?
///     .build()?;
/// let id = system.subscribe(3, &sub)?;
/// system.propagate()?;
///
/// let event = Event::builder(&schema).str("symbol", "OTE")?.build();
/// let out = system.publish(0, &event);
/// assert_eq!(out.deliveries.len(), 1);
/// assert_eq!(out.deliveries[0].id, id);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SummaryPubSub {
    topology: Topology,
    schema: Schema,
    codec: SummaryCodec,
    routing: RoutingOptions,
    /// Exact per-broker subscription stores (tier 2).
    exact: Vec<HashMap<SubscriptionId, Subscription>>,
    /// Per-broker own summaries (tier 1, pre-propagation).
    own: Vec<BrokerSummary>,
    /// Next local subscription number per broker.
    next_local: Vec<u32>,
    /// The capacity this system was sized for (snapshot metadata).
    max_subs: u64,
    /// §6 extension: combine summarization with subsumption. When on,
    /// a new subscription covered by a resident one is *shadowed*: kept
    /// out of the propagated summary and expanded at delivery time.
    subsumption_filter: bool,
    /// Per broker: coverer id → ids of the subscriptions it shadows.
    shadows: Vec<HashMap<SubscriptionId, Vec<SubscriptionId>>>,
    /// Per broker: shadowed id → its coverer.
    shadowed_by: Vec<HashMap<SubscriptionId, SubscriptionId>>,
    /// Subscriptions accepted since the last propagation, per broker —
    /// the σ-batch an incremental period ships.
    pending: Vec<Vec<(SubscriptionId, Subscription)>>,
    /// The most recent propagation phase (its `stored` summaries are
    /// the ones events route over).
    last_propagation: Option<PropagationOutcome>,
    /// Shard-per-core matching: when set, publishes route over
    /// shard-partitioned copies of the stored summaries (see
    /// [`SummaryPubSub::enable_sharded_matching`]).
    sharding: Option<usize>,
    /// The sharded counterparts of `last_propagation.stored`, rebuilt at
    /// each propagation and merged in place by incremental periods.
    sharded_stored: Option<Vec<ShardedStored>>,
    /// Metrics of the propagation phases run so far.
    propagation_metrics: NetMetrics,
    /// Optional causal tracer: publishes record route/match spans along
    /// the Algorithm 3 path and owner-verify/deliver/drop spans at the
    /// owners. `None` keeps every hook a no-op.
    tracer: Option<Arc<Tracer>>,
}

impl SummaryPubSub {
    /// Creates a system over `topology` and `schema`, sizing subscription
    /// ids for at most `max_subs_per_broker` outstanding subscriptions.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::TooManyAttributes`] if the schema exceeds the
    /// id mask width.
    pub fn new(
        topology: Topology,
        schema: Schema,
        max_subs_per_broker: u64,
    ) -> Result<Self, TypeError> {
        let layout = IdLayout::new(
            topology.len() as u64,
            max_subs_per_broker,
            schema.len() as u32,
        )?;
        let n = topology.len();
        Ok(SummaryPubSub {
            topology,
            codec: SummaryCodec::new(layout, ArithWidth::Four),
            routing: RoutingOptions::new(),
            exact: vec![HashMap::new(); n],
            own: (0..n).map(|_| BrokerSummary::new(schema.clone())).collect(),
            next_local: vec![0; n],
            max_subs: max_subs_per_broker,
            pending: vec![Vec::new(); n],
            subsumption_filter: false,
            shadows: vec![HashMap::new(); n],
            shadowed_by: vec![HashMap::new(); n],
            last_propagation: None,
            sharding: None,
            sharded_stored: None,
            propagation_metrics: NetMetrics::new(n),
            tracer: None,
            schema,
        })
    }

    /// Attaches a causal tracer: every subsequent publish gets its own
    /// trace (subject to the tracer's sampling knob) spanning routing,
    /// matching and owner verification. Publish outcomes are identical
    /// with or without a tracer.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The shared attribute schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The broker overlay.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The wire codec in force (id layout and arithmetic width).
    pub fn codec(&self) -> &SummaryCodec {
        &self.codec
    }

    /// Replaces the routing options (e.g. to enable virtual degrees).
    pub fn set_routing_options(&mut self, options: RoutingOptions) {
        self.routing = options;
    }

    /// Enables shard-per-core matching: stored summaries are partitioned
    /// into `shard_count` dense-id-range shards (derived state — wire
    /// format, digests and match results are unchanged), and publishes
    /// match through per-shard compiled plans, frozen at snapshot-flip
    /// time behind lock-free snapshot reads.
    /// A `shard_count` of 0 is treated as 1. Takes effect immediately if
    /// a propagation has run, and persists across future propagations.
    pub fn enable_sharded_matching(&mut self, shard_count: usize) {
        self.sharding = Some(shard_count.max(1));
        self.rebuild_sharded();
    }

    /// The active shard count, if sharded matching is enabled.
    pub fn sharded_matching(&self) -> Option<usize> {
        self.sharding
    }

    /// Re-derives the sharded stored summaries from the last propagation.
    fn rebuild_sharded(&mut self) {
        self.sharded_stored = match (self.sharding, &self.last_propagation) {
            (Some(count), Some(prop)) => Some(
                prop.stored
                    .iter()
                    .map(|m| ShardedStored::from_merged(m, count))
                    .collect(),
            ),
            _ => None,
        };
    }

    /// Enables or disables the §6 extension that combines summarization
    /// with subsumption: a subscription covered by a resident one at the
    /// same broker is *shadowed* — it receives an id and exact-store
    /// entry but is not dissolved into the propagated summary. When an
    /// event makes the coverer a candidate, the owner also verifies the
    /// shadowed subscriptions under it, so no deliveries are lost
    /// (coverage implies every event matching the shadowed subscription
    /// matches its coverer).
    ///
    /// Affects subscriptions registered after the call.
    pub fn set_subsumption_filter(&mut self, on: bool) {
        self.subsumption_filter = on;
    }

    /// The number of subscriptions currently shadowed at `broker`.
    pub fn shadowed_count(&self, broker: NodeId) -> usize {
        self.shadowed_by[broker as usize].len()
    }

    /// Whether the §6 subsumption filter is active.
    pub fn subsumption_filter_enabled(&self) -> bool {
        self.subsumption_filter
    }

    /// The per-broker subscription capacity this system was created with.
    pub fn max_subs_per_broker(&self) -> u64 {
        self.max_subs
    }

    /// The next local subscription number `broker` will assign.
    pub fn next_local_at(&self, broker: NodeId) -> u32 {
        self.next_local[broker as usize]
    }

    /// Read access to a broker's exact subscription store.
    pub fn exact_store(&self, broker: NodeId) -> &HashMap<SubscriptionId, Subscription> {
        &self.exact[broker as usize]
    }

    /// Iterates over `(covered, coverer)` shadow edges at `broker`.
    pub fn shadow_edges(
        &self,
        broker: NodeId,
    ) -> impl Iterator<Item = (SubscriptionId, SubscriptionId)> + '_ {
        self.shadowed_by[broker as usize]
            .iter()
            .map(|(covered, coverer)| (*covered, *coverer))
    }

    /// Restores one broker's durable state from a snapshot: the local id
    /// counter, the exact store and the shadow map. Non-shadowed
    /// subscriptions re-enter the broker's own summary.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` guards future validation.
    pub(crate) fn restore_broker_state(
        &mut self,
        broker: NodeId,
        next_local: u32,
        subs: Vec<(SubscriptionId, Subscription)>,
        shadowed_by: HashMap<SubscriptionId, SubscriptionId>,
    ) -> Result<(), TypeError> {
        let b = broker as usize;
        self.next_local[b] = next_local;
        let mut shadows: HashMap<SubscriptionId, Vec<SubscriptionId>> = HashMap::new();
        for (covered, coverer) in &shadowed_by {
            shadows.entry(*coverer).or_default().push(*covered);
        }
        for list in shadows.values_mut() {
            list.sort();
        }
        for (id, sub) in subs {
            if !shadowed_by.contains_key(&id) {
                self.own[b].insert_with_id(id, &sub);
            }
            self.exact[b].insert(id, sub);
        }
        self.shadows[b] = shadows;
        self.shadowed_by[b] = shadowed_by;
        Ok(())
    }

    /// Installs a changed overlay topology (same broker population).
    /// The paper's deployment setting — ISP backbones — has "slowly
    /// changing" topologies whose nodes "can be informed of the new
    /// changes" (§5.2); this is that notification. Installed multi-broker
    /// summaries are invalidated: run [`SummaryPubSub::propagate`] before
    /// the next publish so Algorithm 2's degree-indexed schedule reflects
    /// the new link structure.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::NotAnExtension`] if the broker count changed
    /// (brokers cannot appear or vanish without re-keying `c1`).
    pub fn set_topology(&mut self, topology: Topology) -> Result<(), TypeError> {
        if topology.len() != self.topology.len() {
            return Err(TypeError::NotAnExtension);
        }
        self.topology = topology;
        self.last_propagation = None;
        self.sharded_stored = None;
        Ok(())
    }

    /// Evolves the system to an extended schema — the paper's §6 dynamic
    /// schema support ("basically, this only requires changing the c3
    /// field of subscription ids"). The new schema must append attributes
    /// to the current one, so existing attribute ids, subscriptions and
    /// `c3` masks remain valid; the id layout widens to cover the new
    /// attributes.
    ///
    /// Installed multi-broker summaries are invalidated: run
    /// [`SummaryPubSub::propagate`] before the next publish.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::NotAnExtension`] if `new_schema` is not an
    /// append-only extension, or [`TypeError::TooManyAttributes`] if it
    /// exceeds the id mask width.
    pub fn extend_schema(&mut self, new_schema: Schema) -> Result<(), TypeError> {
        if !new_schema.is_extension_of(&self.schema) {
            return Err(TypeError::NotAnExtension);
        }
        let layout = IdLayout::new(
            self.topology.len() as u64,
            1u64 << self.codec.layout().local_bits(),
            new_schema.len() as u32,
        )?;
        self.codec = SummaryCodec::new(layout, ArithWidth::Four);
        self.schema = new_schema;
        // Re-type every broker's own summary against the new schema so
        // subscriptions over the new attributes can be dissolved; stored
        // multi-broker summaries must be rebuilt by the next propagation.
        for b in 0..self.own.len() {
            self.own[b] = BrokerSummary::rebuild(
                self.schema.clone(),
                self.exact[b]
                    .iter()
                    .filter(|(id, _)| !self.shadowed_by[b].contains_key(id))
                    .map(|(id, sub)| (*id, sub)),
            );
        }
        self.last_propagation = None;
        self.sharded_stored = None;
        Ok(())
    }

    /// Registers a subscription at `broker`, returning its system-wide id.
    ///
    /// The subscription enters the broker's exact store and its own
    /// summary immediately; other brokers learn of it at the next
    /// [`SummaryPubSub::propagate`].
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::IdOverflow`] if the broker exhausted its
    /// local id space.
    ///
    /// # Panics
    ///
    /// Panics if `broker` is out of range.
    pub fn subscribe(
        &mut self,
        broker: NodeId,
        sub: &Subscription,
    ) -> Result<SubscriptionId, TypeError> {
        let _span = STAGE_SUBSCRIBE.start();
        let b = broker as usize;
        let local = self.next_local[b];
        if u64::from(local) >= (1u64 << self.codec.layout().local_bits()) {
            return Err(TypeError::IdOverflow {
                component: "c2",
                value: u64::from(local),
                bits: self.codec.layout().local_bits(),
            });
        }
        self.next_local[b] += 1;
        let id = SubscriptionId::new(
            subsum_types::BrokerId(broker),
            LocalSubId(local),
            sub.attr_mask(),
        );
        if self.subsumption_filter {
            if let Some(coverer) = self.find_resident_coverer(b, sub, None) {
                self.shadows[b].entry(coverer).or_default().push(id);
                self.shadowed_by[b].insert(id, coverer);
                self.exact[b].insert(id, sub.clone());
                return Ok(id);
            }
        }
        self.own[b].insert_with_id(id, sub);
        self.exact[b].insert(id, sub.clone());
        self.pending[b].push((id, sub.clone()));
        Ok(id)
    }

    /// Finds a resident (non-shadowed) subscription at broker `b`, other
    /// than `exclude`, that covers `sub`; lowest id wins for determinism.
    fn find_resident_coverer(
        &self,
        b: usize,
        sub: &Subscription,
        exclude: Option<SubscriptionId>,
    ) -> Option<SubscriptionId> {
        let mut ids: Vec<&SubscriptionId> = self.exact[b]
            .keys()
            .filter(|id| Some(**id) != exclude && !self.shadowed_by[b].contains_key(id))
            .collect();
        ids.sort();
        ids.into_iter()
            .find(|id| self.exact[b][id].covers(sub))
            .copied()
    }

    /// Cancels a subscription at its owner broker.
    ///
    /// Returns `true` if the subscription existed. Remote merged
    /// summaries keep the id until the next propagation rebuild — over-
    /// approximation, handled by tier-2 verification as usual.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let b = id.broker.index();
        if self.exact[b].remove(&id).is_none() {
            return false;
        }
        if let Some(coverer) = self.shadowed_by[b].remove(&id) {
            // A shadowed subscription never entered the summary.
            if let Some(list) = self.shadows[b].get_mut(&coverer) {
                list.retain(|&x| x != id);
            }
            return true;
        }
        self.own[b].remove(id);
        // Orphaned shadows must re-enter the summary (possibly under a
        // different resident coverer).
        if let Some(orphans) = self.shadows[b].remove(&id) {
            for orphan in orphans {
                self.shadowed_by[b].remove(&orphan);
                let sub = self.exact[b][&orphan].clone();
                if let Some(coverer) = self.find_resident_coverer(b, &sub, Some(orphan)) {
                    self.shadows[b].entry(coverer).or_default().push(orphan);
                    self.shadowed_by[b].insert(orphan, coverer);
                } else {
                    self.own[b].insert_with_id(orphan, &sub);
                }
            }
        }
        true
    }

    /// Runs the subscription propagation phase (Algorithm 2) from the
    /// current own summaries, installing fresh multi-broker summaries.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::IdOverflow`] if an id exceeds the codec's
    /// layout.
    pub fn propagate(&mut self) -> Result<&PropagationOutcome, TypeError> {
        let _span = STAGE_PROPAGATE.start();
        // Rebuild own summaries from the exact stores so unsubscriptions
        // shed their generalizations at each period boundary. Shadowed
        // subscriptions stay out of the summaries (§6 extension).
        for b in 0..self.own.len() {
            self.own[b] = BrokerSummary::rebuild(
                self.schema.clone(),
                self.exact[b]
                    .iter()
                    .filter(|(id, _)| !self.shadowed_by[b].contains_key(id))
                    .map(|(id, sub)| (*id, sub)),
            );
        }
        let outcome = propagate(&self.topology, &self.own, &self.codec)?;
        self.propagation_metrics.merge(&outcome.metrics);
        self.last_propagation = Some(outcome);
        self.rebuild_sharded();
        for p in &mut self.pending {
            p.clear();
        }
        Ok(self.last_propagation.as_ref().expect("just set"))
    }

    /// Runs an *incremental* propagation period: only the subscriptions
    /// accepted since the last propagation travel, as delta summaries,
    /// over the same Algorithm 2 schedule; receivers merge the deltas
    /// into their stored multi-broker summaries.
    ///
    /// Per-period bandwidth is proportional to the new batch (σ) instead
    /// of the outstanding population (S). Unsubscriptions do not shrink
    /// remote state until the next full [`SummaryPubSub::propagate`]
    /// (tier-2 verification keeps them silent in the interim).
    ///
    /// Falls back to a full propagation if none has run yet.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::IdOverflow`] if an id exceeds the codec's
    /// layout.
    pub fn propagate_incremental(&mut self) -> Result<PropagationOutcome, TypeError> {
        if self.last_propagation.is_none() {
            return self.propagate().cloned();
        }
        let _span = STAGE_PROPAGATE.start();
        // Delta summaries: only pending (and still-live, non-shadowed)
        // subscriptions.
        let deltas: Vec<BrokerSummary> = (0..self.own.len())
            .map(|b| {
                BrokerSummary::rebuild(
                    self.schema.clone(),
                    self.pending[b]
                        .iter()
                        .filter(|(id, _)| {
                            self.exact[b].contains_key(id) && !self.shadowed_by[b].contains_key(id)
                        })
                        .map(|(id, sub)| (*id, sub)),
                )
            })
            .collect();
        let outcome = propagate(&self.topology, &deltas, &self.codec)?;
        self.propagation_metrics.merge(&outcome.metrics);
        for p in &mut self.pending {
            p.clear();
        }
        let current = self.last_propagation.as_mut().expect("checked above");
        for (stored, delta) in current.stored.iter_mut().zip(&outcome.stored) {
            stored.summary.merge(&delta.summary);
            stored
                .merged_brokers
                .extend(delta.merged_brokers.iter().copied());
        }
        // Sharded stores merge in place through the lock-free publish
        // protocol: concurrent publishes keep matching the pre-merge
        // snapshot until each broker's pointer flip.
        if let Some(sharded) = &mut self.sharded_stored {
            for (stored, delta) in sharded.iter_mut().zip(&outcome.stored) {
                stored.summary.merge(&delta.summary);
                stored
                    .merged_brokers
                    .extend(delta.merged_brokers.iter().copied());
            }
        }
        // The returned outcome reports this period's (delta) traffic.
        Ok(outcome)
    }

    /// Publishes an event at `broker`: routes it with Algorithm 3 over
    /// the installed summaries, then verifies candidates at their owners.
    ///
    /// # Panics
    ///
    /// Panics if called before any [`SummaryPubSub::propagate`], or if
    /// `broker` is out of range.
    pub fn publish(&self, broker: NodeId, event: &Event) -> PublishOutcome {
        if self.sharded_stored.is_some() {
            let mut scratch = ShardScratch::new();
            self.publish_with_shard_scratch(broker, event, &mut scratch)
        } else {
            let mut scratch = MatchScratch::new();
            self.publish_with_scratch(broker, event, &mut scratch)
        }
    }

    /// As [`SummaryPubSub::publish`], matching through a caller-owned
    /// [`MatchScratch`]. Publishing takes `&self`, so each worker thread
    /// of [`SummaryPubSub::publish_batch`] holds its own scratch, and the
    /// scratch's epoch-stamped counter arrays are safely reused across
    /// the different per-hop summaries of one route (see
    /// [`route_event_with_scratch`]).
    pub fn publish_with_scratch(
        &self,
        broker: NodeId,
        event: &Event,
        scratch: &mut MatchScratch,
    ) -> PublishOutcome {
        CNT_EVENTS.inc();
        assert!(
            self.last_propagation.is_some(),
            "publish requires a completed propagation phase"
        );
        let Some(prop) = self.last_propagation.as_ref() else {
            return PublishOutcome::default();
        };
        let stored = &prop.stored;
        let event_bytes = event.wire_size(&self.schema, 4);
        // Each publish is its own causal root (whether it records spans
        // is the tracer's sampling decision).
        let ctx = self
            .tracer
            .as_ref()
            .map(|t| t.new_root())
            .unwrap_or(TraceCtx::NONE);
        let route_span = STAGE_ROUTE.start();
        let routing = match &self.tracer {
            Some(tracer) => route_event_traced(
                &self.topology,
                stored,
                broker,
                event,
                event_bytes,
                &self.routing,
                scratch,
                tracer,
                ctx,
            ),
            None => route_event_with_scratch(
                &self.topology,
                stored,
                broker,
                event,
                event_bytes,
                &self.routing,
                scratch,
            ),
        };
        route_span.finish();
        self.verify_candidates(event, ctx, routing)
    }

    /// As [`SummaryPubSub::publish`], matching through the sharded stored
    /// summaries with a caller-owned [`ShardScratch`] — each worker of a
    /// sharded [`SummaryPubSub::publish_batch`] holds its own scratch
    /// (and thereby its own registered snapshot-reader slot).
    ///
    /// # Panics
    ///
    /// Panics if sharded matching is not enabled (see
    /// [`SummaryPubSub::enable_sharded_matching`]) or no propagation has
    /// run.
    pub fn publish_with_shard_scratch(
        &self,
        broker: NodeId,
        event: &Event,
        scratch: &mut ShardScratch,
    ) -> PublishOutcome {
        CNT_EVENTS.inc();
        assert!(
            self.last_propagation.is_some(),
            "publish requires a completed propagation phase"
        );
        assert!(
            self.sharded_stored.is_some(),
            "sharded publish requires enable_sharded_matching"
        );
        let Some(stored) = self.sharded_stored.as_deref() else {
            return PublishOutcome::default();
        };
        let event_bytes = event.wire_size(&self.schema, 4);
        let ctx = self
            .tracer
            .as_ref()
            .map(|t| t.new_root())
            .unwrap_or(TraceCtx::NONE);
        let route_span = STAGE_ROUTE.start();
        let routing = match &self.tracer {
            Some(tracer) => route_event_sharded_traced(
                &self.topology,
                stored,
                broker,
                event,
                event_bytes,
                &self.routing,
                scratch,
                tracer,
                ctx,
            ),
            None => route_event_sharded(
                &self.topology,
                stored,
                broker,
                event,
                event_bytes,
                &self.routing,
                scratch,
            ),
        };
        route_span.finish();
        self.verify_candidates(event, ctx, routing)
    }

    /// Tier-2 owner verification, shared by the flat and sharded publish
    /// paths: re-checks every candidate against its owner's exact store
    /// (plus §6 shadow expansion) and records the owner-side spans.
    fn verify_candidates(
        &self,
        event: &Event,
        ctx: TraceCtx,
        routing: RoutingOutcome,
    ) -> PublishOutcome {
        CNT_CANDIDATES.add(routing.notifications.len() as u64);
        let verify_span = STAGE_OWNER_VERIFY.start();
        // Owner-side spans: verification at the logical arrival tick,
        // then a deliver (confirmed) or drop (SACS false positive) leaf.
        let rec = |parent: u32, owner: NodeId, kind: SpanKind, at: u64| -> u32 {
            match &self.tracer {
                Some(t) => t.record(ctx.trace, parent, owner, kind, at),
                None => 0,
            }
        };
        let mut deliveries = Vec::new();
        let mut false_positives = Vec::new();
        for n in &routing.notifications {
            let vspan = rec(n.span, n.owner, SpanKind::OwnerVerify, n.eta);
            // Tier-2: the owner re-checks against its exact store. A
            // stale id (unsubscribed since the last propagation) is also
            // rejected here.
            match self.exact[n.owner as usize].get(&n.id) {
                Some(sub) if sub.matches(event) => {
                    rec(vspan, n.owner, SpanKind::Deliver, n.eta);
                    deliveries.push(Delivery {
                        id: n.id,
                        owner: n.owner,
                    });
                }
                _ => {
                    rec(vspan, n.owner, SpanKind::Drop, n.eta);
                    false_positives.push(n.id);
                }
            }
            // §6 extension: a candidate coverer stands in for its
            // shadowed subscriptions; verify them too.
            if let Some(shadowed) = self.shadows[n.owner as usize].get(&n.id) {
                for &sid in shadowed {
                    match self.exact[n.owner as usize].get(&sid) {
                        Some(sub) if sub.matches(event) => {
                            rec(vspan, n.owner, SpanKind::Deliver, n.eta);
                            deliveries.push(Delivery {
                                id: sid,
                                owner: n.owner,
                            });
                        }
                        _ => {}
                    }
                }
            }
        }
        deliveries.sort_by_key(|d| d.id);
        deliveries.dedup();
        verify_span.finish();
        CNT_DELIVERIES.add(deliveries.len() as u64);
        CNT_FALSE_POSITIVES.add(false_positives.len() as u64);
        PublishOutcome {
            deliveries,
            false_positives,
            routing,
        }
    }

    /// Publishes a batch of `(publisher broker, event)` pairs, fanning
    /// the events across worker threads.
    ///
    /// Publishing is a read-only operation over the installed summaries
    /// (`&self`), so events are independent: the batch is split into
    /// contiguous chunks, one scoped `std::thread` per chunk, each worker
    /// reusing one [`MatchScratch`] across its events. Outcomes are
    /// returned in input order, identical to sequential
    /// [`SummaryPubSub::publish`] calls.
    ///
    /// # Panics
    ///
    /// Panics if called before any [`SummaryPubSub::propagate`], or if a
    /// publisher is out of range.
    pub fn publish_batch(&self, events: &[(NodeId, Event)]) -> Vec<PublishOutcome> {
        if events.is_empty() {
            return Vec::new();
        }
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(events.len());
        let sharded = self.sharded_stored.is_some();
        if threads <= 1 {
            if sharded {
                let mut scratch = ShardScratch::new();
                return events
                    .iter()
                    .map(|(b, e)| self.publish_with_shard_scratch(*b, e, &mut scratch))
                    .collect();
            }
            let mut scratch = MatchScratch::new();
            return events
                .iter()
                .map(|(b, e)| self.publish_with_scratch(*b, e, &mut scratch))
                .collect();
        }
        let chunk = events.len().div_ceil(threads);
        let mut results: Vec<Option<PublishOutcome>> = Vec::new();
        results.resize_with(events.len(), || None);
        std::thread::scope(|scope| {
            for (evs, out) in events.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    if sharded {
                        let mut scratch = ShardScratch::new();
                        for ((b, e), slot) in evs.iter().zip(out.iter_mut()) {
                            *slot = Some(self.publish_with_shard_scratch(*b, e, &mut scratch));
                        }
                    } else {
                        let mut scratch = MatchScratch::new();
                        for ((b, e), slot) in evs.iter().zip(out.iter_mut()) {
                            *slot = Some(self.publish_with_scratch(*b, e, &mut scratch));
                        }
                    }
                });
            }
        });
        let out: Vec<PublishOutcome> = results.into_iter().flatten().collect();
        assert!(
            out.len() == events.len(),
            "every batch slot is filled by its worker"
        );
        out
    }

    /// The exact matches an omniscient oracle would deliver — used by
    /// tests to verify completeness.
    pub fn oracle_matches(&self, event: &Event) -> Vec<SubscriptionId> {
        let mut out: Vec<SubscriptionId> = self
            .exact
            .iter()
            .flat_map(|store| {
                store
                    .iter()
                    .filter(|(_, sub)| sub.matches(event))
                    .map(|(id, _)| *id)
            })
            .collect();
        out.sort();
        out
    }

    /// Total bytes of summary state stored across all brokers (the
    /// paper's Fig. 11 storage metric for the summary approach), computed
    /// with the analytic size model.
    pub fn summary_storage_bytes(&self) -> usize {
        let params = SizeParams::default();
        match &self.last_propagation {
            Some(outcome) => outcome
                .stored
                .iter()
                .map(|m| SummaryStats::of(&m.summary).total_size(params))
                .sum(),
            None => self
                .own
                .iter()
                .map(|s| SummaryStats::of(s).total_size(params))
                .sum(),
        }
    }

    /// Accumulated propagation traffic across all phases.
    pub fn propagation_metrics(&self) -> &NetMetrics {
        &self.propagation_metrics
    }

    /// The installed multi-broker summaries, if propagation has run.
    pub fn stored_summaries(&self) -> Option<&[MergedSummary]> {
        self.last_propagation.as_ref().map(|o| o.stored.as_slice())
    }

    /// Number of outstanding subscriptions across all brokers.
    pub fn subscription_count(&self) -> usize {
        self.exact.iter().map(HashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_types::{NumOp, StrOp};

    fn system(topology: Topology) -> SummaryPubSub {
        SummaryPubSub::new(topology, subsum_types::stock_schema(), 1000).unwrap()
    }

    #[test]
    fn subscribe_propagate_publish_delivers() {
        let mut sys = system(Topology::fig7_tree());
        let schema = sys.schema().clone();
        let sub = Subscription::builder(&schema)
            .num("price", NumOp::Gt, 8.30)
            .unwrap()
            .num("price", NumOp::Lt, 8.70)
            .unwrap()
            .build()
            .unwrap();
        let id = sys.subscribe(3, &sub).unwrap();
        sys.propagate().unwrap();
        let event = Event::builder(&schema).num("price", 8.40).unwrap().build();
        let out = sys.publish(0, &event);
        assert_eq!(out.deliveries, vec![Delivery { id, owner: 3 }]);
        assert!(out.false_positives.is_empty());
    }

    #[test]
    fn deliveries_equal_oracle_across_publishers() {
        let mut sys = system(Topology::cable_wireless_24());
        let schema = sys.schema().clone();
        for b in 0..24u16 {
            let sub = Subscription::builder(&schema)
                .num("price", NumOp::Lt, (b % 6) as f64)
                .unwrap()
                .build()
                .unwrap();
            sys.subscribe(b, &sub).unwrap();
        }
        sys.propagate().unwrap();
        let event = Event::builder(&schema).num("price", 2.5).unwrap().build();
        let oracle = sys.oracle_matches(&event);
        assert!(!oracle.is_empty());
        for publisher in [0u16, 5, 11, 23] {
            let out = sys.publish(publisher, &event);
            let mut got: Vec<SubscriptionId> = out.deliveries.iter().map(|d| d.id).collect();
            got.sort();
            assert_eq!(got, oracle, "publisher {publisher}");
        }
    }

    #[test]
    fn publish_outcomes_identical_with_tracing_on_and_off() {
        use subsum_telemetry::trace::SpanKind;
        let mut sys = system(Topology::cable_wireless_24());
        let schema = sys.schema().clone();
        for b in 0..24u16 {
            let sub = Subscription::builder(&schema)
                .num("price", NumOp::Lt, (b % 6) as f64)
                .unwrap()
                .build()
                .unwrap();
            sys.subscribe(b, &sub).unwrap();
        }
        sys.propagate().unwrap();
        let event = Event::builder(&schema).num("price", 2.5).unwrap().build();
        let plain: Vec<_> = (0..24u16).map(|p| sys.publish(p, &event)).collect();

        sys.set_tracer(Arc::new(Tracer::new(24, 8192, 42, 1)));
        for (p, before) in plain.iter().enumerate() {
            let traced = sys.publish(p as NodeId, &event);
            assert_eq!(traced.deliveries, before.deliveries, "publisher {p}");
            assert_eq!(traced.false_positives, before.false_positives);
            assert_eq!(traced.routing.visits, before.routing.visits);
            assert_eq!(traced.routing.metrics, before.routing.metrics);
        }

        let spans = sys.tracer().unwrap().spans();
        let count = |k: SpanKind| spans.iter().filter(|s| s.kind == k).count() as u64;
        let visits: u64 = plain.iter().map(|o| o.routing.visits.len() as u64).sum();
        let deliveries: u64 = plain.iter().map(|o| o.deliveries.len() as u64).sum();
        assert_eq!(count(SpanKind::Route), visits);
        assert_eq!(count(SpanKind::Match), visits);
        assert_eq!(count(SpanKind::Deliver), deliveries);
        assert_eq!(count(SpanKind::Drop), 0, "no false positives here");
    }

    #[test]
    fn publish_batch_matches_sequential_publishes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        let mut workload =
            subsum_workload::Workload::new(subsum_workload::PaperParams::default(), 0.7);
        let schema = workload.schema().clone();
        let mut sys = SummaryPubSub::new(Topology::cable_wireless_24(), schema, 1000).unwrap();
        for b in 0..24u16 {
            for _ in 0..4 {
                let sub = workload.subscription(&mut rng);
                sys.subscribe(b, &sub).unwrap();
            }
        }
        sys.propagate().unwrap();
        let batch: Vec<(NodeId, Event)> = (0..40)
            .map(|_| (rng.gen_range(0..24u16), workload.event(0.7, &mut rng)))
            .collect();
        let batched = sys.publish_batch(&batch);
        assert_eq!(batched.len(), batch.len());
        for ((b, e), out) in batch.iter().zip(&batched) {
            let seq = sys.publish(*b, e);
            assert_eq!(out.deliveries, seq.deliveries);
            assert_eq!(out.false_positives, seq.false_positives);
            assert_eq!(out.routing.visits, seq.routing.visits);
            assert_eq!(out.routing.metrics, seq.routing.metrics);
        }
        assert!(sys.publish_batch(&[]).is_empty());
    }

    #[test]
    fn sharded_publishing_identical_to_flat() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5AAD);
        let mut workload =
            subsum_workload::Workload::new(subsum_workload::PaperParams::default(), 0.7);
        let schema = workload.schema().clone();
        let mut sys = SummaryPubSub::new(Topology::cable_wireless_24(), schema, 1000).unwrap();
        for b in 0..24u16 {
            for _ in 0..5 {
                let sub = workload.subscription(&mut rng);
                sys.subscribe(b, &sub).unwrap();
            }
        }
        sys.propagate().unwrap();
        let batch: Vec<(NodeId, Event)> = (0..30)
            .map(|_| (rng.gen_range(0..24u16), workload.event(0.7, &mut rng)))
            .collect();
        let flat: Vec<PublishOutcome> = batch.iter().map(|(b, e)| sys.publish(*b, e)).collect();

        sys.enable_sharded_matching(4);
        assert_eq!(sys.sharded_matching(), Some(4));
        // Single publishes, publish_batch workers, and tracing all route
        // through the sharded store and must be outcome-identical.
        for ((b, e), want) in batch.iter().zip(&flat) {
            let got = sys.publish(*b, e);
            assert_eq!(got.deliveries, want.deliveries);
            assert_eq!(got.false_positives, want.false_positives);
            assert_eq!(got.routing.visits, want.routing.visits);
            assert_eq!(got.routing.metrics, want.routing.metrics);
        }
        let batched = sys.publish_batch(&batch);
        for (got, want) in batched.iter().zip(&flat) {
            assert_eq!(got.deliveries, want.deliveries);
            assert_eq!(got.false_positives, want.false_positives);
        }
        sys.set_tracer(Arc::new(Tracer::new(24, 8192, 7, 1)));
        for ((b, e), want) in batch.iter().zip(&flat).take(5) {
            let got = sys.publish(*b, e);
            assert_eq!(got.deliveries, want.deliveries);
        }
    }

    #[test]
    fn sharded_matching_survives_incremental_propagation() {
        let mut sys = system(Topology::ring(6));
        sys.enable_sharded_matching(3);
        let schema = sys.schema().clone();
        let sub = |lo: f64| {
            Subscription::builder(&schema)
                .num("price", NumOp::Ge, lo)
                .unwrap()
                .build()
                .unwrap()
        };
        sys.subscribe(0, &sub(10.0)).unwrap();
        sys.propagate().unwrap();
        // New subscriptions ride an incremental period: the sharded
        // stores merge the deltas through the lock-free publish path.
        let id2 = sys.subscribe(3, &sub(5.0)).unwrap();
        sys.propagate_incremental().unwrap();
        let event = Event::builder(&schema).num("price", 7.0).unwrap().build();
        let out = sys.publish(5, &event);
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].id, id2);
        // The sharded store's digests still track the flat ones exactly.
        let flat = sys.stored_summaries().unwrap();
        let sharded = sys.sharded_stored.as_ref().unwrap();
        for (f, s) in flat.iter().zip(sharded) {
            assert_eq!(f.summary.digest(), s.summary.digest());
            assert_eq!(f.merged_brokers, s.merged_brokers);
        }
    }

    #[test]
    fn false_positives_filtered_by_owner() {
        let mut sys = system(Topology::line(3));
        let schema = sys.schema().clone();
        // Two string subscriptions that SACS will generalize under `OT*`.
        let precise = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Eq, "OTE")
            .unwrap()
            .build()
            .unwrap();
        let broad = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Prefix, "OT")
            .unwrap()
            .build()
            .unwrap();
        let id_precise = sys.subscribe(0, &precise).unwrap();
        let id_broad = sys.subscribe(0, &broad).unwrap();
        sys.propagate().unwrap();
        let event = Event::builder(&schema)
            .str("symbol", "OTX")
            .unwrap()
            .build();
        let out = sys.publish(2, &event);
        // Only the broad subscription truly matches OTX.
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].id, id_broad);
        assert_eq!(out.false_positives, vec![id_precise]);
    }

    #[test]
    fn false_positive_rate_counts_rejected_candidates() {
        let mut sys = system(Topology::line(3));
        let schema = sys.schema().clone();
        let precise = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Eq, "OTE")
            .unwrap()
            .build()
            .unwrap();
        let broad = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Prefix, "OT")
            .unwrap()
            .build()
            .unwrap();
        sys.subscribe(0, &precise).unwrap();
        sys.subscribe(0, &broad).unwrap();
        sys.propagate().unwrap();
        // OTX: the broad subscription delivers, the precise one is a
        // rejected candidate → rate 1/2.
        let event = Event::builder(&schema)
            .str("symbol", "OTX")
            .unwrap()
            .build();
        let out = sys.publish(2, &event);
        assert_eq!(out.false_positive_rate(), 0.5);
        // OTE: both candidates verify → rate 0.
        let event = Event::builder(&schema)
            .str("symbol", "OTE")
            .unwrap()
            .build();
        let out = sys.publish(2, &event);
        assert_eq!(out.deliveries.len(), 2);
        assert_eq!(out.false_positive_rate(), 0.0);
        // No candidates at all → rate 0 (not NaN).
        let event = Event::builder(&schema)
            .str("symbol", "ZZZ")
            .unwrap()
            .build();
        let out = sys.publish(2, &event);
        assert!(out.deliveries.is_empty());
        assert_eq!(out.false_positive_rate(), 0.0);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut sys = system(Topology::line(4));
        let schema = sys.schema().clone();
        let sub = Subscription::builder(&schema)
            .num("volume", NumOp::Gt, 100.0)
            .unwrap()
            .build()
            .unwrap();
        let id = sys.subscribe(1, &sub).unwrap();
        sys.propagate().unwrap();
        let event = Event::builder(&schema).int("volume", 200).unwrap().build();
        assert_eq!(sys.publish(3, &event).deliveries.len(), 1);

        assert!(sys.unsubscribe(id));
        assert!(!sys.unsubscribe(id));
        // Before re-propagation: stale candidate rejected at the owner.
        let out = sys.publish(3, &event);
        assert!(out.deliveries.is_empty());
        assert_eq!(out.false_positives, vec![id]);
        // After re-propagation the candidate disappears entirely.
        sys.propagate().unwrap();
        let out = sys.publish(3, &event);
        assert!(out.deliveries.is_empty());
        assert!(out.false_positives.is_empty());
    }

    #[test]
    fn storage_accounting_positive_after_subscriptions() {
        let mut sys = system(Topology::line(3));
        let schema = sys.schema().clone();
        assert_eq!(sys.summary_storage_bytes(), 0);
        let sub = Subscription::builder(&schema)
            .num("price", NumOp::Gt, 1.0)
            .unwrap()
            .build()
            .unwrap();
        sys.subscribe(0, &sub).unwrap();
        let before = sys.summary_storage_bytes();
        assert!(before > 0);
        sys.propagate().unwrap();
        // Merged copies replicate state: storage grows.
        assert!(sys.summary_storage_bytes() >= before);
    }

    #[test]
    fn subsumption_filter_shadows_covered_subscriptions() {
        let mut sys = system(Topology::line(3));
        sys.set_subsumption_filter(true);
        let schema = sys.schema().clone();
        let broad = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 100.0)
            .unwrap()
            .build()
            .unwrap();
        let narrow = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 10.0)
            .unwrap()
            .build()
            .unwrap();
        let id_broad = sys.subscribe(0, &broad).unwrap();
        let id_narrow = sys.subscribe(0, &narrow).unwrap();
        assert_eq!(sys.shadowed_count(0), 1);
        sys.propagate().unwrap();
        // Only the coverer's id travels in summaries (checked at the hub,
        // which Algorithm 2 made the knowledge point of the line).
        let hub = &sys.stored_summaries().unwrap()[1].summary;
        let hub_ids: Vec<_> = hub
            .subscription_ids()
            .into_iter()
            .filter(|i| i.broker.0 == 0)
            .collect();
        assert_eq!(hub_ids, vec![id_broad]);
        // ...but deliveries still include the shadowed subscription.
        let event = Event::builder(&schema).num("price", 5.0).unwrap().build();
        let out = sys.publish(2, &event);
        let mut got: Vec<_> = out.deliveries.iter().map(|d| d.id).collect();
        got.sort();
        assert_eq!(got, vec![id_broad, id_narrow]);
        // Events matching only the coverer deliver only it.
        let event = Event::builder(&schema).num("price", 50.0).unwrap().build();
        let out = sys.publish(2, &event);
        let got: Vec<_> = out.deliveries.iter().map(|d| d.id).collect();
        assert_eq!(got, vec![id_broad]);
    }

    #[test]
    fn subsumption_filter_saves_bandwidth() {
        let schema = subsum_types::stock_schema();
        let run = |filter: bool| -> u64 {
            let mut sys = SummaryPubSub::new(Topology::line(4), schema.clone(), 1000).unwrap();
            sys.set_subsumption_filter(filter);
            // Many identical subscriptions: heavy covering.
            let sub = Subscription::builder(&schema)
                .num("price", NumOp::Lt, 10.0)
                .unwrap()
                .build()
                .unwrap();
            for b in 0..4u16 {
                for _ in 0..50 {
                    sys.subscribe(b, &sub).unwrap();
                }
            }
            sys.propagate().unwrap();
            sys.propagation_metrics().payload_bytes
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without / 5,
            "filtered propagation ({with}) should be far below unfiltered ({without})"
        );
    }

    #[test]
    fn unsubscribing_coverer_promotes_shadows() {
        let mut sys = system(Topology::line(3));
        sys.set_subsumption_filter(true);
        let schema = sys.schema().clone();
        let broad = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 100.0)
            .unwrap()
            .build()
            .unwrap();
        let narrow = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 10.0)
            .unwrap()
            .build()
            .unwrap();
        let id_broad = sys.subscribe(1, &broad).unwrap();
        let id_narrow = sys.subscribe(1, &narrow).unwrap();
        assert!(sys.unsubscribe(id_broad));
        assert_eq!(sys.shadowed_count(1), 0);
        sys.propagate().unwrap();
        let event = Event::builder(&schema).num("price", 5.0).unwrap().build();
        let out = sys.publish(0, &event);
        let got: Vec<_> = out.deliveries.iter().map(|d| d.id).collect();
        assert_eq!(got, vec![id_narrow]);
    }

    #[test]
    fn unsubscribing_shadowed_sub_keeps_coverer() {
        let mut sys = system(Topology::line(2));
        sys.set_subsumption_filter(true);
        let schema = sys.schema().clone();
        let broad = Subscription::builder(&schema)
            .num("volume", NumOp::Gt, 0.0)
            .unwrap()
            .build()
            .unwrap();
        let narrow = Subscription::builder(&schema)
            .num("volume", NumOp::Gt, 100.0)
            .unwrap()
            .build()
            .unwrap();
        let id_broad = sys.subscribe(0, &broad).unwrap();
        let id_narrow = sys.subscribe(0, &narrow).unwrap();
        assert!(sys.unsubscribe(id_narrow));
        assert!(!sys.unsubscribe(id_narrow));
        sys.propagate().unwrap();
        let event = Event::builder(&schema).int("volume", 500).unwrap().build();
        let out = sys.publish(1, &event);
        let got: Vec<_> = out.deliveries.iter().map(|d| d.id).collect();
        assert_eq!(got, vec![id_broad]);
    }

    #[test]
    fn filter_equals_oracle_on_random_workload() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let mut workload =
            subsum_workload::Workload::new(subsum_workload::PaperParams::default(), 0.9);
        let schema = workload.schema().clone();
        let mut sys = SummaryPubSub::new(Topology::ring(6), schema.clone(), 1000).unwrap();
        sys.set_subsumption_filter(true);
        for b in 0..6u16 {
            for _ in 0..30 {
                let sub = workload.subscription(&mut rng);
                sys.subscribe(b, &sub).unwrap();
            }
        }
        sys.propagate().unwrap();
        for _ in 0..20 {
            let event = workload.event(0.8, &mut rng);
            let publisher = rng.gen_range(0..6u16);
            let out = sys.publish(publisher, &event);
            let mut got: Vec<_> = out.deliveries.iter().map(|d| d.id).collect();
            got.sort();
            got.dedup();
            assert_eq!(got, sys.oracle_matches(&event));
        }
    }

    #[test]
    #[should_panic(expected = "requires a completed propagation")]
    fn publish_before_propagation_panics() {
        let sys = system(Topology::line(2));
        let schema = sys.schema().clone();
        let event = Event::builder(&schema).num("price", 1.0).unwrap().build();
        sys.publish(0, &event);
    }

    #[test]
    fn local_id_exhaustion_reported() {
        let mut sys =
            SummaryPubSub::new(Topology::line(2), subsum_types::stock_schema(), 2).unwrap();
        let schema = sys.schema().clone();
        let sub = Subscription::builder(&schema)
            .num("price", NumOp::Gt, 1.0)
            .unwrap()
            .build()
            .unwrap();
        sys.subscribe(0, &sub).unwrap();
        sys.subscribe(0, &sub).unwrap();
        let err = sys.subscribe(0, &sub).unwrap_err();
        assert!(matches!(
            err,
            TypeError::IdOverflow {
                component: "c2",
                ..
            }
        ));
    }
}
