//! Distributed event processing — Algorithm 3 (paper §4.3).
//!
//! An event entering the system at a broker is examined against that
//! broker's stored multi-broker summary. Matches are sent straight to the
//! owning brokers (the `c1` component of each matched subscription id).
//! The event carries **BROCLI** — the Broker Check List — recording every
//! broker whose subscriptions have already been examined; each examining
//! broker adds its whole `Merged_Brokers` set. While BROCLI is not yet
//! complete, the event forwards to the highest-degree broker outside
//! BROCLI (nearest first among ties), and the process repeats.
//!
//! The *virtual degrees* extension (§6, the paper's ongoing work on load
//! balancing) lets maximum-degree brokers advertise a smaller degree for
//! the purposes of the next-broker choice, spreading the examination load.

use std::collections::BTreeSet;

use subsum_core::{MatchScratch, ShardScratch, ShardedSummary};
use subsum_net::{NetMetrics, NodeId, Topology};
use subsum_telemetry::trace::{SpanKind, TraceCtx, Tracer};
use subsum_telemetry::Stage;
use subsum_types::{Event, SubscriptionId};

use crate::propagation::MergedSummary;

static STAGE_CANDIDATE_MATCH: Stage = Stage::new(subsum_telemetry::names::PUBLISH_CANDIDATE_MATCH);

/// Per-broker stored state Algorithm 3 can route over: each broker has a
/// matchable summary and a `Merged_Brokers` coverage set. Implemented by
/// the flat [`MergedSummary`] store and the shard-partitioned
/// [`ShardedStored`] store; [`route_inner`] is generic over this trait,
/// so both paths run the identical routing algorithm and differ only in
/// the matching kernel (and its scratch type).
pub trait SummaryStore {
    /// The per-worker scratch the matching kernel reuses across events.
    type Scratch;

    /// Number of brokers (must equal the topology size).
    fn broker_count(&self) -> usize;

    /// The `Merged_Brokers` set of broker `b`'s stored summary.
    fn merged_brokers(&self, b: usize) -> &BTreeSet<NodeId>;

    /// Matches `event` against broker `b`'s stored summary. The returned
    /// candidate ids borrow from `scratch` and are identical across
    /// implementations (sharded matching is exact w.r.t. the flat
    /// kernel).
    fn match_into<'s>(
        &self,
        b: usize,
        event: &Event,
        scratch: &'s mut Self::Scratch,
    ) -> &'s [SubscriptionId];
}

impl SummaryStore for [MergedSummary] {
    type Scratch = MatchScratch;

    fn broker_count(&self) -> usize {
        self.len()
    }

    fn merged_brokers(&self, b: usize) -> &BTreeSet<NodeId> {
        &self[b].merged_brokers
    }

    fn match_into<'s>(
        &self,
        b: usize,
        event: &Event,
        scratch: &'s mut MatchScratch,
    ) -> &'s [SubscriptionId] {
        &self[b].summary.match_event_into(event, scratch).matched
    }
}

/// A broker's stored multi-broker summary behind a shard partition:
/// the sharded counterpart of [`MergedSummary`]. The wrapped
/// [`ShardedSummary`] retains the canonical flat summary (same digest,
/// same wire bytes) and matches through per-shard kernels behind
/// lock-free snapshot reads, so routing outcomes are byte-identical to
/// the flat store while subscribe/merge churn never stalls matching.
#[derive(Debug)]
pub struct ShardedStored {
    /// The shard-partitioned merged summary.
    pub summary: ShardedSummary,
    /// `Merged_Brokers`, as in [`MergedSummary`].
    pub merged_brokers: BTreeSet<NodeId>,
}

impl ShardedStored {
    /// Derives the sharded store from a flat stored summary.
    pub fn from_merged(m: &MergedSummary, shard_count: usize) -> ShardedStored {
        ShardedStored {
            summary: ShardedSummary::from_flat(m.summary.clone(), shard_count),
            merged_brokers: m.merged_brokers.clone(),
        }
    }
}

impl SummaryStore for [ShardedStored] {
    type Scratch = ShardScratch;

    fn broker_count(&self) -> usize {
        self.len()
    }

    fn merged_brokers(&self, b: usize) -> &BTreeSet<NodeId> {
        &self[b].merged_brokers
    }

    fn match_into<'s>(
        &self,
        b: usize,
        event: &Event,
        scratch: &'s mut ShardScratch,
    ) -> &'s [SubscriptionId] {
        &self[b].summary.match_event_into(event, scratch).matched
    }
}

/// Options for [`route_event`].
#[derive(Debug, Clone, Default)]
pub struct RoutingOptions {
    /// Effective per-broker degrees used when choosing the next broker.
    /// `None` uses true topology degrees (the paper's base algorithm);
    /// see [`RoutingOptions::with_virtual_degrees`].
    pub virtual_degrees: Option<Vec<usize>>,
}

impl RoutingOptions {
    /// The base algorithm: true degrees.
    pub fn new() -> Self {
        RoutingOptions::default()
    }

    /// Caps every broker's advertised degree at `cap` (the paper's
    /// virtual-degree load-balancing device for maximum-degree nodes).
    pub fn with_virtual_degrees(topology: &Topology, cap: usize) -> Self {
        let degrees = (0..topology.len() as NodeId)
            .map(|v| topology.degree(v).min(cap))
            .collect();
        RoutingOptions {
            virtual_degrees: Some(degrees),
        }
    }

    fn effective_degree(&self, topology: &Topology, v: NodeId) -> usize {
        match &self.virtual_degrees {
            Some(d) => d[v as usize],
            None => topology.degree(v),
        }
    }
}

/// One delivery decision: a matched subscription id reported to its owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notification {
    /// The broker that found the match.
    pub found_at: NodeId,
    /// The owning broker (the id's `c1`).
    pub owner: NodeId,
    /// The matched subscription.
    pub id: SubscriptionId,
    /// Logical arrival tick at the owner: the cumulative overlay
    /// distance the event travelled to `found_at` plus the distance of
    /// the notification send (0 extra for a local match). Deterministic
    /// latency-attribution input; 0-based at the publisher.
    pub eta: u64,
    /// The match span that produced this candidate (0 when untraced or
    /// unsampled) — parent for the owner-side verification spans.
    pub span: u32,
}

/// The result of routing one event.
#[derive(Debug, Clone, Default)]
pub struct RoutingOutcome {
    /// Brokers that examined the event, in visit order (starting with the
    /// publisher's broker).
    pub visits: Vec<NodeId>,
    /// Event forwards between examining brokers.
    pub forward_hops: u64,
    /// Event sends to matched owners (a notification to the examining
    /// broker itself costs no hop).
    pub notify_hops: u64,
    /// All candidate matches found, with their provenance.
    pub notifications: Vec<Notification>,
    /// Traffic counters (forwards and notifications).
    pub metrics: NetMetrics,
}

impl RoutingOutcome {
    /// The paper's event-processing hop count: every broker→broker
    /// message carrying the event.
    pub fn total_hops(&self) -> u64 {
        self.forward_hops + self.notify_hops
    }

    /// The distinct candidate subscription ids.
    pub fn candidate_ids(&self) -> Vec<SubscriptionId> {
        let mut ids: Vec<SubscriptionId> = self.notifications.iter().map(|n| n.id).collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

/// Routes an event published at `publisher` through the stored
/// multi-broker summaries (Algorithm 3).
///
/// `event_bytes` is the event's wire size used for bandwidth accounting;
/// BROCLI adds `⌈n/8⌉` bytes to each forward.
///
/// # Panics
///
/// Panics if `stored.len()` differs from the topology size or `publisher`
/// is out of range.
pub fn route_event(
    topology: &Topology,
    stored: &[MergedSummary],
    publisher: NodeId,
    event: &Event,
    event_bytes: usize,
    options: &RoutingOptions,
) -> RoutingOutcome {
    let mut scratch = MatchScratch::new();
    route_event_with_scratch(
        topology,
        stored,
        publisher,
        event,
        event_bytes,
        options,
        &mut scratch,
    )
}

/// As [`route_event`], matching through a caller-owned [`MatchScratch`]
/// so batched publishers avoid per-event allocations (see
/// `SummaryPubSub::publish_batch`).
///
/// One scratch serves every broker on the routing path even though each
/// hop matches against a different summary: the compiled-plan kernel
/// stamps its packed epoch-counter words per call, so stale counts from
/// a previous summary are never read and the arrays only grow to the
/// largest dense-id space seen on the path (each hop probes that
/// summary's own lazily compiled columnar match plan).
#[allow(clippy::too_many_arguments)]
pub fn route_event_with_scratch(
    topology: &Topology,
    stored: &[MergedSummary],
    publisher: NodeId,
    event: &Event,
    event_bytes: usize,
    options: &RoutingOptions,
    scratch: &mut MatchScratch,
) -> RoutingOutcome {
    route_inner(
        topology,
        stored,
        publisher,
        event,
        event_bytes,
        options,
        scratch,
        None,
    )
}

/// As [`route_event_with_scratch`], recording causal route/match spans
/// into `tracer` under `ctx`: one route span per examined broker (each
/// chained to the previous hop's route span), one match span per summary
/// examination, with the cumulative overlay distance as the logical
/// clock. Matching behavior and the returned outcome's routing fields
/// are identical to the untraced path; in addition each notification
/// carries its producing match span and logical arrival tick.
#[allow(clippy::too_many_arguments)]
pub fn route_event_traced(
    topology: &Topology,
    stored: &[MergedSummary],
    publisher: NodeId,
    event: &Event,
    event_bytes: usize,
    options: &RoutingOptions,
    scratch: &mut MatchScratch,
    tracer: &Tracer,
    ctx: TraceCtx,
) -> RoutingOutcome {
    route_inner(
        topology,
        stored,
        publisher,
        event,
        event_bytes,
        options,
        scratch,
        Some((tracer, ctx)),
    )
}

/// As [`route_event_with_scratch`], routing over shard-partitioned
/// stored summaries. The routing algorithm, visit order, hop counts and
/// candidate set are identical to the flat path (sharded matching is
/// exact); matching runs through lock-free snapshot reads, so concurrent
/// subscription churn on the stored summaries never stalls a publish.
#[allow(clippy::too_many_arguments)]
pub fn route_event_sharded(
    topology: &Topology,
    stored: &[ShardedStored],
    publisher: NodeId,
    event: &Event,
    event_bytes: usize,
    options: &RoutingOptions,
    scratch: &mut ShardScratch,
) -> RoutingOutcome {
    route_inner(
        topology,
        stored,
        publisher,
        event,
        event_bytes,
        options,
        scratch,
        None,
    )
}

/// As [`route_event_traced`], over shard-partitioned stored summaries.
#[allow(clippy::too_many_arguments)]
pub fn route_event_sharded_traced(
    topology: &Topology,
    stored: &[ShardedStored],
    publisher: NodeId,
    event: &Event,
    event_bytes: usize,
    options: &RoutingOptions,
    scratch: &mut ShardScratch,
    tracer: &Tracer,
    ctx: TraceCtx,
) -> RoutingOutcome {
    route_inner(
        topology,
        stored,
        publisher,
        event,
        event_bytes,
        options,
        scratch,
        Some((tracer, ctx)),
    )
}

#[allow(clippy::too_many_arguments)]
fn route_inner<S: SummaryStore + ?Sized>(
    topology: &Topology,
    stored: &S,
    publisher: NodeId,
    event: &Event,
    event_bytes: usize,
    options: &RoutingOptions,
    scratch: &mut S::Scratch,
    trace: Option<(&Tracer, TraceCtx)>,
) -> RoutingOutcome {
    assert_eq!(stored.broker_count(), topology.len());
    assert!((publisher as usize) < topology.len());
    let n = topology.len();
    let brocli_bytes = n.div_ceil(8);
    let mut metrics = NetMetrics::new(n);
    let mut brocli = vec![false; n];
    let mut visits = Vec::new();
    let mut notifications = Vec::new();
    let mut forward_hops = 0u64;
    let mut notify_hops = 0u64;

    // Logical clock: cumulative overlay distance from the publisher,
    // advanced by each forward's path length.
    let mut clock = 0u64;
    // The previous hop's route span; the incoming context's parent at
    // the publisher.
    let mut hop_parent = trace.map(|(_, c)| c.parent).unwrap_or(0);

    let mut current = publisher;
    loop {
        visits.push(current);
        let route_span = match trace {
            Some((t, c)) => t.record(c.trace, hop_parent, current, SpanKind::Route, clock),
            None => 0,
        };

        // 1. Check the local merged summary for matches; report each
        //    matched subscription to its owner unless the owner's
        //    subscriptions were already examined earlier on the path.
        let match_stage = STAGE_CANDIDATE_MATCH.start();
        let matched = stored.match_into(current as usize, event, scratch);
        match_stage.finish();
        let match_span = match trace {
            Some((t, c)) => t.record(c.trace, route_span, current, SpanKind::Match, clock),
            None => 0,
        };
        let mut owners_here: Vec<NodeId> = Vec::new();
        let dist_here = topology.distances(current);
        for &id in matched {
            let owner = id.broker.0 as NodeId;
            if brocli[owner as usize] {
                continue; // already examined at a previous broker
            }
            let eta = if owner == current {
                clock
            } else {
                clock + u64::from(dist_here[owner as usize])
            };
            notifications.push(Notification {
                found_at: current,
                owner,
                id,
                eta,
                span: match_span,
            });
            if owner != current && !owners_here.contains(&owner) {
                owners_here.push(owner);
            }
        }
        for owner in owners_here {
            let dist = dist_here[owner as usize];
            metrics.record(current, owner, event_bytes, dist);
            notify_hops += 1;
        }

        // 2. Update BROCLI with the whole Merged_Brokers set.
        brocli[current as usize] = true;
        for &b in stored.merged_brokers(current as usize) {
            brocli[b as usize] = true;
        }

        // 3–4. Forward while BROCLI is incomplete.
        if brocli.iter().all(|&c| c) {
            break;
        }
        let dist_from_current = topology.distances(current);
        // The completeness check above already broke out when every
        // broker was covered, so a candidate always exists; the `else`
        // arm keeps the routing hot path panic-free regardless.
        let Some(next) = (0..n as NodeId)
            .filter(|&v| !brocli[v as usize])
            .min_by_key(|&v| {
                (
                    std::cmp::Reverse(options.effective_degree(topology, v)),
                    dist_from_current[v as usize],
                    v,
                )
            })
        else {
            break;
        };
        metrics.record(
            current,
            next,
            event_bytes + brocli_bytes,
            dist_from_current[next as usize],
        );
        forward_hops += 1;
        clock += u64::from(dist_from_current[next as usize].max(1));
        hop_parent = route_span;
        current = next;
    }

    RoutingOutcome {
        visits,
        forward_hops,
        notify_hops,
        notifications,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::propagate;
    use subsum_core::{ArithWidth, BrokerSummary, SummaryCodec};
    use subsum_types::{stock_schema, BrokerId, IdLayout, LocalSubId, NumOp, Schema, Subscription};

    fn codec(schema: &Schema, brokers: usize) -> SummaryCodec {
        let layout = IdLayout::new(brokers as u64, 1000, schema.len() as u32).unwrap();
        SummaryCodec::new(layout, ArithWidth::Eight)
    }

    /// Brokers in `interested` subscribe to `price = 42`; everyone else
    /// subscribes to a disjoint value.
    fn summaries_with_interest(
        schema: &Schema,
        n: usize,
        interested: &[NodeId],
    ) -> Vec<BrokerSummary> {
        (0..n)
            .map(|b| {
                let price = if interested.contains(&(b as NodeId)) {
                    42.0
                } else {
                    -1000.0 - b as f64
                };
                let sub = Subscription::builder(schema)
                    .num("price", NumOp::Eq, price)
                    .unwrap()
                    .build()
                    .unwrap();
                let mut s = BrokerSummary::new(schema.clone());
                s.insert(BrokerId(b as u16), LocalSubId(0), &sub);
                s
            })
            .collect()
    }

    fn price_event(schema: &Schema, price: f64) -> Event {
        Event::builder(schema).num("price", price).unwrap().build()
    }

    #[test]
    fn fig7_worked_example() {
        // §4.3 Example 3: an event matching (paper) brokers 4, 8, 13
        // arrives at broker 1.
        let schema = stock_schema();
        let topo = Topology::fig7_tree();
        let interested: Vec<NodeId> = vec![3, 7, 12]; // paper 4, 8, 13
        let own = summaries_with_interest(&schema, 13, &interested);
        let prop = propagate(&topo, &own, &codec(&schema, 13)).unwrap();
        let event = price_event(&schema, 42.0);
        let out = route_event(&topo, &prop.stored, 0, &event, 50, &RoutingOptions::new());

        // Visit order: broker 1 (node 0) → broker 5 (node 4) →
        // broker 8 (node 7) → broker 11 (node 10).
        assert_eq!(out.visits, vec![0, 4, 7, 10]);
        assert_eq!(out.forward_hops, 3);
        // Notifications to owners 3 and 12 cost hops; broker 8's own
        // match (node 7) is local.
        assert_eq!(out.notify_hops, 2);
        let mut owners: Vec<NodeId> = out.notifications.iter().map(|n| n.owner).collect();
        owners.sort();
        assert_eq!(owners, interested);
    }

    #[test]
    fn all_interested_brokers_found_regardless_of_publisher() {
        let schema = stock_schema();
        let topo = Topology::cable_wireless_24();
        let interested: Vec<NodeId> = vec![1, 6, 13, 22];
        let own = summaries_with_interest(&schema, 24, &interested);
        let prop = propagate(&topo, &own, &codec(&schema, 24)).unwrap();
        let event = price_event(&schema, 42.0);
        for publisher in 0..24 {
            let out = route_event(
                &topo,
                &prop.stored,
                publisher,
                &event,
                50,
                &RoutingOptions::new(),
            );
            let mut owners: Vec<NodeId> = out.notifications.iter().map(|n| n.owner).collect();
            owners.sort();
            owners.dedup();
            assert_eq!(owners, interested, "publisher {publisher}");
        }
    }

    #[test]
    fn no_duplicate_notifications_for_one_owner_subscription() {
        // Broker 1's summary is stored at several brokers along the
        // propagation path; BROCLI must prevent double notification.
        let schema = stock_schema();
        let topo = Topology::fig7_tree();
        let own = summaries_with_interest(&schema, 13, &[0]);
        let prop = propagate(&topo, &own, &codec(&schema, 13)).unwrap();
        let event = price_event(&schema, 42.0);
        for publisher in 0..13 {
            let out = route_event(
                &topo,
                &prop.stored,
                publisher,
                &event,
                50,
                &RoutingOptions::new(),
            );
            assert_eq!(
                out.notifications.len(),
                1,
                "publisher {publisher} produced {:?}",
                out.notifications
            );
        }
    }

    #[test]
    fn visits_bounded_by_broker_count() {
        let schema = stock_schema();
        let topo = Topology::ring(9);
        let own = summaries_with_interest(&schema, 9, &[]);
        let prop = propagate(&topo, &own, &codec(&schema, 9)).unwrap();
        let event = price_event(&schema, 42.0);
        let out = route_event(&topo, &prop.stored, 0, &event, 50, &RoutingOptions::new());
        assert!(out.visits.len() <= 9);
        assert!(out.notifications.is_empty());
        // Every broker ends up in BROCLI: visits' merged sets cover all.
        let covered: std::collections::BTreeSet<NodeId> = out
            .visits
            .iter()
            .flat_map(|&v| prop.stored[v as usize].merged_brokers.iter().copied())
            .collect();
        assert_eq!(covered.len(), 9);
    }

    #[test]
    fn virtual_degrees_spread_load() {
        let schema = stock_schema();
        let topo = Topology::star(12);
        let own = summaries_with_interest(&schema, 12, &[]);
        let prop = propagate(&topo, &own, &codec(&schema, 12)).unwrap();
        let event = price_event(&schema, 42.0);
        // Base: leaves forward straight to the hub (degree 11).
        let base = route_event(&topo, &prop.stored, 1, &event, 50, &RoutingOptions::new());
        assert_eq!(base.visits[1], 0);
        // With the hub's degree capped to 1, it loses its priority; ties
        // then resolve by distance, so the hub (1 hop away) is still
        // next, but the choice went through the virtual-degree path.
        let opts = RoutingOptions::with_virtual_degrees(&topo, 1);
        let capped = route_event(&topo, &prop.stored, 1, &event, 50, &opts);
        // Routing still terminates with full coverage.
        assert!(capped.visits.len() <= 12);
    }

    #[test]
    fn sharded_routing_identical_to_flat() {
        let schema = stock_schema();
        let topo = Topology::cable_wireless_24();
        let interested: Vec<NodeId> = vec![1, 6, 13, 22];
        let own = summaries_with_interest(&schema, 24, &interested);
        let prop = propagate(&topo, &own, &codec(&schema, 24)).unwrap();
        let sharded: Vec<ShardedStored> = prop
            .stored
            .iter()
            .map(|m| ShardedStored::from_merged(m, 4))
            .collect();
        let event = price_event(&schema, 42.0);
        let mut scratch = ShardScratch::new();
        for publisher in 0..24 {
            let flat = route_event(
                &topo,
                &prop.stored,
                publisher,
                &event,
                50,
                &RoutingOptions::new(),
            );
            let sh = route_event_sharded(
                &topo,
                &sharded,
                publisher,
                &event,
                50,
                &RoutingOptions::new(),
                &mut scratch,
            );
            assert_eq!(sh.visits, flat.visits, "publisher {publisher}");
            assert_eq!(sh.notifications, flat.notifications);
            assert_eq!(sh.forward_hops, flat.forward_hops);
            assert_eq!(sh.notify_hops, flat.notify_hops);
            assert_eq!(sh.metrics, flat.metrics);
        }
    }

    #[test]
    fn event_published_at_interested_broker_notifies_locally() {
        let schema = stock_schema();
        let topo = Topology::fig7_tree();
        let own = summaries_with_interest(&schema, 13, &[0]);
        let prop = propagate(&topo, &own, &codec(&schema, 13)).unwrap();
        let event = price_event(&schema, 42.0);
        let out = route_event(&topo, &prop.stored, 0, &event, 50, &RoutingOptions::new());
        assert_eq!(out.notifications.len(), 1);
        assert_eq!(out.notifications[0].owner, 0);
        assert_eq!(out.notifications[0].found_at, 0);
        // A local match costs no notification hop.
        assert_eq!(out.notify_hops, 0);
    }
}
