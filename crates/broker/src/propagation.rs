//! Multi-broker summary propagation — Algorithm 2 (paper §4.2).
//!
//! The propagation phase runs in `max_degree` synchronous iterations. In
//! iteration *i*, every broker whose degree equals *i*:
//!
//! 1. merges its own summary with all summaries received in previous
//!    iterations and updates its `Merged_Brokers` set;
//! 2. sends the merged summary and the set to **one** neighbor of equal or
//!    higher degree with which it has not yet communicated, preferring the
//!    neighbor of smallest degree (ties break to the lowest id).
//!
//! A broker with no equal-or-higher-degree neighbor left (e.g. the global
//! maximum-degree broker with no equal-degree neighbor) merges but does
//! not send. After the final iteration every broker stores a merged
//! summary covering itself and everything it received; the union of the
//! stored `Merged_Brokers` sets covers all brokers, which is what the
//! event-routing phase's BROCLI relies on.

use std::collections::BTreeSet;

use subsum_core::{BrokerSummary, SummaryCodec};
use subsum_net::{NetMetrics, NodeId, Topology};
use subsum_telemetry::Stage;
use subsum_types::TypeError;

static STAGE_ROUND: Stage = Stage::new(subsum_telemetry::names::PROPAGATE_ROUND);

/// A broker's stored multi-broker summary: the merged structure plus the
/// set of brokers whose subscriptions it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedSummary {
    /// The merged subscription summary.
    pub summary: BrokerSummary,
    /// `Merged_Brokers`: ids of the brokers whose subscriptions are
    /// included in [`MergedSummary::summary`].
    pub merged_brokers: BTreeSet<NodeId>,
}

impl MergedSummary {
    /// Applies a received propagation payload: merges the summary and
    /// extends `Merged_Brokers`. Returns `true` if the payload carried
    /// anything new.
    ///
    /// Application is **idempotent**: a payload whose `Merged_Brokers`
    /// set is already covered by this broker's set has been applied
    /// before (the set names exactly the summaries folded in) and is
    /// skipped outright, so a duplicated message on a lossy network is a
    /// no-op — the stored summary's digest does not change.
    pub fn apply(&mut self, payload: &MergedSummary) -> bool {
        if payload
            .merged_brokers
            .iter()
            .all(|b| self.merged_brokers.contains(b))
        {
            return false;
        }
        self.summary.merge(&payload.summary);
        self.merged_brokers
            .extend(payload.merged_brokers.iter().copied());
        true
    }
}

/// One send of Algorithm 2, for tracing and the Fig. 7 walkthrough test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropagationSend {
    /// The iteration (equal to the sender's degree).
    pub iteration: usize,
    /// The sending broker.
    pub from: NodeId,
    /// The receiving neighbor.
    pub to: NodeId,
    /// Payload bytes (encoded merged summary + `Merged_Brokers` set).
    pub bytes: usize,
}

/// The result of one propagation phase.
#[derive(Debug, Clone)]
pub struct PropagationOutcome {
    /// Per-broker stored state after the phase: the broker's final merged
    /// summary (own + everything received in any iteration) and its
    /// final `Merged_Brokers` set.
    pub stored: Vec<MergedSummary>,
    /// Traffic counters; `metrics.messages` is the paper's hop count for
    /// subscription propagation.
    pub metrics: NetMetrics,
    /// The exact send schedule.
    pub sends: Vec<PropagationSend>,
}

impl PropagationOutcome {
    /// The hop count of the phase (one hop per summary message).
    pub fn hops(&self) -> u64 {
        self.metrics.messages
    }

    /// Verifies the global coverage invariant: every broker appears in at
    /// least one stored `Merged_Brokers` set (trivially true since each
    /// broker stores itself) *and* each broker's final set contains
    /// itself.
    pub fn covers_all_brokers(&self) -> bool {
        let n = self.stored.len();
        let mut covered = vec![false; n];
        for (b, m) in self.stored.iter().enumerate() {
            if !m.merged_brokers.contains(&(b as NodeId)) {
                return false;
            }
            for &x in &m.merged_brokers {
                covered[x as usize] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }
}

/// Runs Algorithm 2 over `topology`, starting from each broker's own
/// per-broker summary (`own[b]` is broker `b`'s summary of its local
/// subscriptions).
///
/// Message sizes are measured through `codec` (the real wire encoding)
/// plus two bytes per `Merged_Brokers` entry.
///
/// # Errors
///
/// Returns [`TypeError::IdOverflow`] if a subscription id exceeds the
/// codec's layout.
///
/// # Panics
///
/// Panics if `own.len()` differs from the topology size.
pub fn propagate(
    topology: &Topology,
    own: &[BrokerSummary],
    codec: &SummaryCodec,
) -> Result<PropagationOutcome, TypeError> {
    assert_eq!(own.len(), topology.len(), "one summary per broker required");
    let n = topology.len();
    let mut metrics = NetMetrics::new(n);
    let mut sends = Vec::new();

    // Stored state per broker.
    let mut stored: Vec<MergedSummary> = own
        .iter()
        .enumerate()
        .map(|(b, s)| MergedSummary {
            summary: s.clone(),
            merged_brokers: BTreeSet::from([b as NodeId]),
        })
        .collect();
    // Summaries received and not yet folded into the *sent* summary
    // (everything received is already folded into `stored` on delivery).
    let mut communicated: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];

    let max_degree = topology.max_degree();
    for iteration in 1..=max_degree {
        let _round_span = STAGE_ROUND.start();
        // Synchronous round: all sends computed against the state at the
        // start of the iteration, delivered at the end.
        let mut deliveries: Vec<(NodeId, MergedSummary, usize)> = Vec::new();
        for b in 0..n as NodeId {
            if topology.degree(b) != iteration {
                continue;
            }
            // Step 1 already holds in `stored[b]`: deliveries fold in on
            // receipt. Step 2: pick the neighbor.
            let candidates: Vec<NodeId> = topology
                .neighbors(b)
                .iter()
                .copied()
                .filter(|&nb| {
                    topology.degree(nb) >= iteration && !communicated[b as usize].contains(&nb)
                })
                .collect();
            let Some(&target) = candidates
                .iter()
                .min_by_key(|&&nb| (topology.degree(nb), nb))
            else {
                continue;
            };
            communicated[b as usize].insert(target);
            let payload = stored[b as usize].clone();
            let bytes = codec.encoded_len(&payload.summary)? + 2 * payload.merged_brokers.len();
            metrics.record(b, target, bytes, 1);
            sends.push(PropagationSend {
                iteration,
                from: b,
                to: target,
                bytes,
            });
            deliveries.push((target, payload, bytes));
        }
        for (target, payload, _) in deliveries {
            let t = target as usize;
            stored[t].apply(&payload);
            // Receiving also counts as having communicated with the
            // sender (no back-send of the same content).
            for s in payload.merged_brokers {
                communicated[t].insert(s);
            }
        }
    }

    Ok(PropagationOutcome {
        stored,
        metrics,
        sends,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_core::ArithWidth;
    use subsum_types::{stock_schema, BrokerId, IdLayout, LocalSubId, NumOp, Schema, Subscription};

    fn codec(schema: &Schema, brokers: usize) -> SummaryCodec {
        let layout = IdLayout::new(brokers as u64, 1000, schema.len() as u32).unwrap();
        SummaryCodec::new(layout, ArithWidth::Eight)
    }

    /// One distinct subscription per broker so coverage is observable.
    fn own_summaries(schema: &Schema, n: usize) -> Vec<BrokerSummary> {
        (0..n)
            .map(|b| {
                let sub = Subscription::builder(schema)
                    .num("price", NumOp::Eq, b as f64)
                    .unwrap()
                    .build()
                    .unwrap();
                let mut s = BrokerSummary::new(schema.clone());
                s.insert(BrokerId(b as u16), LocalSubId(0), &sub);
                s
            })
            .collect()
    }

    #[test]
    fn fig7_schedule_matches_paper() {
        let schema = stock_schema();
        let topo = Topology::fig7_tree();
        let own = own_summaries(&schema, 13);
        let out = propagate(&topo, &own, &codec(&schema, 13)).unwrap();

        // Iteration 1: the seven leaves (paper brokers 1,3,4,6,9,12,13)
        // send to their only neighbor.
        let it1: Vec<_> = out
            .sends
            .iter()
            .filter(|s| s.iteration == 1)
            .map(|s| (s.from, s.to))
            .collect();
        assert_eq!(
            it1,
            vec![(0, 1), (2, 4), (3, 4), (5, 4), (8, 7), (11, 10), (12, 10)]
        );

        // Iteration 2: paper brokers 2→5, 7→8 (smallest-degree choice),
        // 10→8 (tie on degree 3, lowest id).
        let it2: Vec<_> = out
            .sends
            .iter()
            .filter(|s| s.iteration == 2)
            .map(|s| (s.from, s.to))
            .collect();
        assert_eq!(it2, vec![(1, 4), (6, 7), (9, 7)]);

        // Iteration 3: brokers 8 and 11 (nodes 7 and 10) merge but have
        // no equal-or-higher-degree neighbor: no sends. Iterations 4 and
        // 5 also produce none (no degree-4 broker; node 4 has no ≥5
        // neighbor).
        assert!(out.sends.iter().all(|s| s.iteration <= 2));

        // Paper: broker 5 (node 4) ends with knowledge of brokers 1–6.
        assert_eq!(
            out.stored[4].merged_brokers,
            BTreeSet::from([0, 1, 2, 3, 4, 5])
        );
        // Broker 8 (node 7) covers {7, 8, 9, 10}.
        assert_eq!(out.stored[7].merged_brokers, BTreeSet::from([6, 7, 8, 9]));
        // Broker 11 (node 10) covers {11, 12, 13}.
        assert_eq!(out.stored[10].merged_brokers, BTreeSet::from([10, 11, 12]));

        assert!(out.covers_all_brokers());
        // Fewer hops than brokers, as the paper claims.
        assert!(out.hops() < 13);
        assert_eq!(out.hops(), 10);
    }

    #[test]
    fn merged_summaries_contain_received_subscriptions() {
        let schema = stock_schema();
        let topo = Topology::fig7_tree();
        let own = own_summaries(&schema, 13);
        let out = propagate(&topo, &own, &codec(&schema, 13)).unwrap();
        // Node 4 (paper broker 5) holds the subscriptions of brokers 0–5.
        let ids = out.stored[4].summary.subscription_ids();
        let owners: BTreeSet<u16> = ids.iter().map(|id| id.broker.0).collect();
        assert_eq!(owners, BTreeSet::from([0, 1, 2, 3, 4, 5]));
    }

    #[test]
    fn coverage_on_arbitrary_topologies() {
        let schema = stock_schema();
        for topo in [
            Topology::line(8),
            Topology::ring(9),
            Topology::star(10),
            Topology::grid(4, 4),
            Topology::cable_wireless_24(),
            Topology::balanced_tree(3, 3),
        ] {
            let n = topo.len();
            let own = own_summaries(&schema, n);
            let out = propagate(&topo, &own, &codec(&schema, n)).unwrap();
            assert!(out.covers_all_brokers(), "coverage on {n}-node topology");
            // Each broker sends at most once: hops never exceed the
            // broker count (and stay strictly below it whenever some
            // broker lacks an equal-or-higher-degree partner, e.g. a
            // unique maximum-degree hub).
            assert!(
                out.hops() <= n as u64,
                "hops {} must not exceed broker count {n}",
                out.hops()
            );
        }
    }

    #[test]
    fn equal_degree_pair_exchanges() {
        // Two brokers, both degree 1: each sends to the other in
        // iteration 1 (synchronous round), ending with full knowledge.
        let schema = stock_schema();
        let topo = Topology::line(2);
        let own = own_summaries(&schema, 2);
        let out = propagate(&topo, &own, &codec(&schema, 2)).unwrap();
        assert_eq!(out.hops(), 2);
        assert_eq!(out.stored[0].merged_brokers, BTreeSet::from([0, 1]));
        assert_eq!(out.stored[1].merged_brokers, BTreeSet::from([0, 1]));
    }

    #[test]
    fn star_center_collects_everything() {
        let schema = stock_schema();
        let topo = Topology::star(6);
        let own = own_summaries(&schema, 6);
        let out = propagate(&topo, &own, &codec(&schema, 6)).unwrap();
        // All five leaves send to the hub; the hub cannot send.
        assert_eq!(out.hops(), 5);
        assert_eq!(
            out.stored[0].merged_brokers,
            (0..6).collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn bandwidth_grows_with_merged_content() {
        let schema = stock_schema();
        let topo = Topology::line(4);
        let own = own_summaries(&schema, 4);
        let out = propagate(&topo, &own, &codec(&schema, 4)).unwrap();
        // Later-iteration sends carry merged (larger) summaries.
        let first = out.sends.iter().find(|s| s.iteration == 1).unwrap();
        let later = out.sends.iter().max_by_key(|s| s.iteration).unwrap();
        assert!(later.bytes >= first.bytes);
        assert!(out.metrics.payload_bytes > 0);
    }

    #[test]
    fn duplicate_application_is_a_no_op() {
        // Under message duplication (see the `chaos` module) the same
        // propagation payload can be delivered twice; the second apply
        // must leave the stored state bit-identical.
        let schema = stock_schema();
        let own = own_summaries(&schema, 4);
        let mut stored = MergedSummary {
            summary: own[0].clone(),
            merged_brokers: BTreeSet::from([0]),
        };
        let payload = MergedSummary {
            summary: {
                let mut s = own[1].clone();
                s.merge(&own[2]);
                s
            },
            merged_brokers: BTreeSet::from([1, 2]),
        };

        assert!(stored.apply(&payload), "first apply carries new content");
        let digest = stored.summary.digest();
        let brokers = stored.merged_brokers.clone();

        assert!(!stored.apply(&payload), "duplicate must report no change");
        assert_eq!(stored.summary.digest(), digest, "summary unchanged");
        assert_eq!(stored.merged_brokers, brokers, "broker set unchanged");
        #[cfg(debug_assertions)]
        stored.summary.validate();

        // A partially-overlapping payload is *not* a duplicate.
        let fresh = MergedSummary {
            summary: own[3].clone(),
            merged_brokers: BTreeSet::from([2, 3]),
        };
        assert!(stored.apply(&fresh));
        assert_eq!(stored.merged_brokers, BTreeSet::from([0, 1, 2, 3]));
    }

    #[test]
    fn empty_summaries_still_propagate_sets() {
        let schema = stock_schema();
        let topo = Topology::line(3);
        let own: Vec<_> = (0..3).map(|_| BrokerSummary::new(schema.clone())).collect();
        let out = propagate(&topo, &own, &codec(&schema, 3)).unwrap();
        assert!(out.covers_all_brokers());
    }
}
