//! A concurrent broker deployment: one OS thread per broker, channel
//! message passing, and completion detection by channel disconnection.
//!
//! [`BrokerNetwork`] runs the same algorithms as the deterministic
//! [`SummaryPubSub`](crate::SummaryPubSub) engine, but with brokers as
//! independent threads:
//!
//! * **Propagation** (Algorithm 2) is coordinated in synchronous rounds —
//!   the coordinator collects each round's summary messages and delivers
//!   them, preserving the paper's iteration semantics;
//! * **Event routing** (Algorithm 3) is fully decentralized: the event
//!   (with its BROCLI) hops between broker threads over channels, match
//!   notifications travel to owner threads for tier-2 verification, and
//!   the publisher detects completion when every clone of the event's
//!   delivery channel has been dropped.
//!
//! # Example
//!
//! ```
//! use subsum_broker::runtime::BrokerNetwork;
//! use subsum_net::Topology;
//! use subsum_types::{stock_schema, Subscription, Event, NumOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = BrokerNetwork::start(Topology::fig7_tree(), stock_schema(), 1000)?;
//! let schema = net.schema().clone();
//! let sub = Subscription::builder(&schema).num("price", NumOp::Lt, 9.0)?.build()?;
//! let id = net.subscribe(4, &sub)?;
//! net.propagate();
//! let event = Event::builder(&schema).num("price", 8.4)?.build();
//! let deliveries = net.publish(0, &event);
//! assert_eq!(deliveries[0].id, id);
//! net.shutdown();
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use subsum_core::{
    ArithWidth, BrokerSummary, MatchScratch, ShardScratch, ShardedSummary, SummaryCodec,
};
use subsum_net::{NodeId, Topology};
use subsum_telemetry::trace::{SpanKind, TraceCtx, Tracer};
use subsum_telemetry::Stage;
use subsum_types::{Event, IdLayout, LocalSubId, Schema, Subscription, SubscriptionId, TypeError};

use crate::system::Delivery;

static STAGE_HANDLE_MSG: Stage = Stage::new(subsum_telemetry::names::RUNTIME_HANDLE_MSG);

/// Traffic counters reported by a threaded propagation phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PropagationStats {
    /// Summary messages exchanged (the paper's propagation hop count).
    pub hops: u64,
    /// Total payload bytes of those messages.
    pub bytes: u64,
}

/// A summary message between brokers during propagation.
#[derive(Debug, Clone)]
struct SummaryMsg {
    from: NodeId,
    to: NodeId,
    bytes: usize,
    summary: BrokerSummary,
    merged_brokers: BTreeSet<NodeId>,
}

/// Per-event routing context carried with the event. Completion is
/// detected when every clone of `deliveries` has been dropped.
///
/// `trace` and `clock` are runtime-only observability metadata: the
/// trace context chains spans hop-to-hop and the logical clock counts
/// cumulative overlay distance, so span timestamps are deterministic
/// even though thread scheduling is not.
#[derive(Debug, Clone)]
struct EventCtx {
    event: Event,
    deliveries: Sender<Delivery>,
    trace: TraceCtx,
    clock: u64,
}

#[derive(Debug)]
enum Command {
    Subscribe {
        sub: Subscription,
        reply: Sender<Result<SubscriptionId, TypeError>>,
    },
    Unsubscribe {
        id: SubscriptionId,
        reply: Sender<bool>,
    },
    /// Rebuild own summary from the exact store; reset propagation state.
    ResetPropagation {
        reply: Sender<()>,
    },
    /// Run Algorithm 2's iteration `i`; reply with the (at most one)
    /// summary message to deliver this round.
    BeginIteration {
        iteration: usize,
        reply: Sender<Vec<SummaryMsg>>,
    },
    /// Coordinator-mediated delivery of a round's summary message.
    DeliverSummary {
        msg: SummaryMsg,
        reply: Sender<()>,
    },
    /// An event examining this broker (Algorithm 3 step).
    ExamineEvent {
        ctx: EventCtx,
        brocli: Vec<bool>,
    },
    /// Candidate matches reported to this (owner) broker for tier-2
    /// verification.
    Notify {
        ctx: EventCtx,
        ids: Vec<SubscriptionId>,
    },
    /// Installs (or clears) the shared flight-recorder tracer.
    SetTracer {
        tracer: Option<Arc<Tracer>>,
        reply: Sender<()>,
    },
    Shutdown,
}

struct BrokerState {
    id: NodeId,
    topology: Arc<Topology>,
    schema: Schema,
    codec: SummaryCodec,
    peers: Vec<Sender<Command>>,
    exact: HashMap<SubscriptionId, Subscription>,
    next_local: u32,
    own: BrokerSummary,
    stored: BrokerSummary,
    merged_brokers: BTreeSet<NodeId>,
    communicated: BTreeSet<NodeId>,
    /// Per-thread matcher scratch, reused across every event this broker
    /// thread examines. The compiled-plan kernel inside sizes its packed
    /// epoch-counter arrays to the stored summary's high-water population
    /// once (`match.scratch_grows` counts the resizes), after which
    /// steady-state matching is allocation-free.
    scratch: MatchScratch,
    /// When set, the stored summary is additionally maintained as a
    /// [`ShardedSummary`] with this many dense-id-range shards, and
    /// matching goes through the lock-free snapshot path instead of the
    /// flat kernel.
    sharding: Option<usize>,
    sharded: Option<ShardedSummary>,
    shard_scratch: ShardScratch,
    tracer: Option<Arc<Tracer>>,
}

impl BrokerState {
    /// Records a span into the shared flight recorder; 0 when tracing is
    /// off or the trace is unsampled.
    fn span(&self, ctx: TraceCtx, kind: SpanKind, at: u64) -> u32 {
        match &self.tracer {
            Some(t) => t.record_ctx(ctx, self.id, kind, at),
            None => 0,
        }
    }
}

impl BrokerState {
    fn handle(&mut self, cmd: Command) -> bool {
        match cmd {
            Command::Subscribe { sub, reply } => {
                let local = self.next_local;
                self.next_local += 1;
                let id = self
                    .own
                    .insert(subsum_types::BrokerId(self.id), LocalSubId(local), &sub);
                self.stored.insert_with_id(id, &sub);
                if let Some(s) = &self.sharded {
                    s.insert_with_id(id, &sub);
                }
                self.exact.insert(id, sub);
                let _ = reply.send(Ok(id));
            }
            Command::Unsubscribe { id, reply } => {
                let existed = self.exact.remove(&id).is_some();
                if existed {
                    self.own.remove(id);
                    self.stored.remove(id);
                    if let Some(s) = &self.sharded {
                        s.remove(id);
                    }
                }
                let _ = reply.send(existed);
            }
            Command::ResetPropagation { reply } => {
                self.own = BrokerSummary::rebuild(
                    self.schema.clone(),
                    self.exact.iter().map(|(id, sub)| (*id, sub)),
                );
                self.stored = self.own.clone();
                self.sharded = self
                    .sharding
                    .map(|n| ShardedSummary::from_flat(self.stored.clone(), n));
                self.merged_brokers = BTreeSet::from([self.id]);
                self.communicated.clear();
                let _ = reply.send(());
            }
            Command::BeginIteration { iteration, reply } => {
                let mut out = Vec::new();
                if self.topology.degree(self.id) == iteration {
                    let candidate = self
                        .topology
                        .neighbors(self.id)
                        .iter()
                        .copied()
                        .filter(|&nb| {
                            self.topology.degree(nb) >= iteration
                                && !self.communicated.contains(&nb)
                        })
                        .min_by_key(|&nb| (self.topology.degree(nb), nb));
                    if let Some(target) = candidate {
                        self.communicated.insert(target);
                        let bytes = self
                            .codec
                            .encoded_len(&self.stored)
                            .expect("ids fit the layout")
                            + 2 * self.merged_brokers.len();
                        out.push(SummaryMsg {
                            from: self.id,
                            to: target,
                            bytes,
                            summary: self.stored.clone(),
                            merged_brokers: self.merged_brokers.clone(),
                        });
                    }
                }
                let _ = reply.send(out);
            }
            Command::DeliverSummary { msg, reply } => {
                self.stored.merge(&msg.summary);
                if let Some(s) = &self.sharded {
                    s.merge(&msg.summary);
                }
                self.merged_brokers
                    .extend(msg.merged_brokers.iter().copied());
                self.communicated.extend(msg.merged_brokers.iter().copied());
                let _ = reply.send(());
            }
            Command::ExamineEvent { ctx, mut brocli } => {
                self.examine_event(ctx, &mut brocli);
            }
            Command::Notify { ctx, ids } => {
                let vspan = self.span(ctx.trace, SpanKind::OwnerVerify, ctx.clock);
                let child = TraceCtx {
                    trace: ctx.trace.trace,
                    parent: vspan,
                };
                for id in ids {
                    if let Some(sub) = self.exact.get(&id) {
                        if sub.matches(&ctx.event) {
                            self.span(child, SpanKind::Deliver, ctx.clock);
                            let _ = ctx.deliveries.send(Delivery { id, owner: self.id });
                        } else {
                            self.span(child, SpanKind::Drop, ctx.clock);
                        }
                    }
                }
                // ctx drops here, releasing one latch reference.
            }
            Command::SetTracer { tracer, reply } => {
                self.tracer = tracer;
                let _ = reply.send(());
            }
            Command::Shutdown => return false,
        }
        true
    }

    fn examine_event(&mut self, mut ctx: EventCtx, brocli: &mut [bool]) {
        let route_span = self.span(ctx.trace, SpanKind::Route, ctx.clock);
        let match_span = self.span(
            TraceCtx {
                trace: ctx.trace.trace,
                parent: route_span,
            },
            SpanKind::Match,
            ctx.clock,
        );
        // 1. Match against the local merged summary (through this
        //    thread's reusable scratch); report candidates to owners
        //    whose subscriptions were not yet examined. With sharding
        //    enabled, matching pins an epoch-stamped snapshot and fans
        //    out across the dense-id-range shards instead.
        let matched: &[SubscriptionId] = match &self.sharded {
            Some(s) => {
                &s.match_event_into(&ctx.event, &mut self.shard_scratch)
                    .matched
            }
            None => {
                &self
                    .stored
                    .match_event_into(&ctx.event, &mut self.scratch)
                    .matched
            }
        };
        let mut per_owner: HashMap<NodeId, Vec<SubscriptionId>> = HashMap::new();
        for &id in matched {
            let owner = id.broker.0 as NodeId;
            if !brocli[owner as usize] {
                per_owner.entry(owner).or_default().push(id);
            }
        }
        let dist = self.topology.distances(self.id);
        for (owner, ids) in per_owner {
            if owner == self.id {
                // Local verification without a hop.
                let vspan = self.span(
                    TraceCtx {
                        trace: ctx.trace.trace,
                        parent: match_span,
                    },
                    SpanKind::OwnerVerify,
                    ctx.clock,
                );
                let child = TraceCtx {
                    trace: ctx.trace.trace,
                    parent: vspan,
                };
                for id in ids {
                    if let Some(sub) = self.exact.get(&id) {
                        if sub.matches(&ctx.event) {
                            self.span(child, SpanKind::Deliver, ctx.clock);
                            let _ = ctx.deliveries.send(Delivery { id, owner: self.id });
                        } else {
                            self.span(child, SpanKind::Drop, ctx.clock);
                        }
                    }
                }
            } else {
                let mut notify_ctx = ctx.clone();
                notify_ctx.trace.parent = match_span;
                notify_ctx.clock = ctx.clock + u64::from(dist[owner as usize]);
                let _ = self.peers[owner as usize].send(Command::Notify {
                    ctx: notify_ctx,
                    ids,
                });
            }
        }

        // 2. Update BROCLI with the whole Merged_Brokers set.
        brocli[self.id as usize] = true;
        for &b in &self.merged_brokers {
            brocli[b as usize] = true;
        }

        // 3–4. Forward while BROCLI is incomplete.
        if brocli.iter().all(|&c| c) {
            return; // ctx drops; the publisher's collector unblocks.
        }
        let next = (0..self.topology.len() as NodeId)
            .filter(|&v| !brocli[v as usize])
            .min_by_key(|&v| {
                (
                    std::cmp::Reverse(self.topology.degree(v)),
                    dist[v as usize],
                    v,
                )
            })
            .expect("some broker outside BROCLI");
        ctx.trace.parent = route_span;
        ctx.clock += u64::from(dist[next as usize].max(1));
        let _ = self.peers[next as usize].send(Command::ExamineEvent {
            ctx,
            brocli: brocli.to_vec(),
        });
    }
}

/// A running network of broker threads.
#[derive(Debug)]
pub struct BrokerNetwork {
    topology: Arc<Topology>,
    schema: Schema,
    cmds: Vec<Sender<Command>>,
    handles: Vec<JoinHandle<()>>,
    tracer: Option<Arc<Tracer>>,
}

impl BrokerNetwork {
    /// Spawns one thread per broker of `topology`.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::TooManyAttributes`] if the schema exceeds the
    /// id mask width.
    pub fn start(
        topology: Topology,
        schema: Schema,
        max_subs_per_broker: u64,
    ) -> Result<Self, TypeError> {
        Self::start_inner(topology, schema, max_subs_per_broker, None)
    }

    /// Like [`BrokerNetwork::start`], but every broker thread maintains
    /// its stored summary as a [`ShardedSummary`] with `shard_count`
    /// dense-id-range shards and matches events through the lock-free
    /// snapshot path. Routing outcomes are identical to the flat engine;
    /// only the matching kernel differs.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::TooManyAttributes`] if the schema exceeds the
    /// id mask width.
    pub fn start_with_shards(
        topology: Topology,
        schema: Schema,
        max_subs_per_broker: u64,
        shard_count: usize,
    ) -> Result<Self, TypeError> {
        Self::start_inner(
            topology,
            schema,
            max_subs_per_broker,
            Some(shard_count.max(1)),
        )
    }

    fn start_inner(
        topology: Topology,
        schema: Schema,
        max_subs_per_broker: u64,
        sharding: Option<usize>,
    ) -> Result<Self, TypeError> {
        let layout = IdLayout::new(
            topology.len() as u64,
            max_subs_per_broker,
            schema.len() as u32,
        )?;
        let codec = SummaryCodec::new(layout, ArithWidth::Four);
        let topology = Arc::new(topology);
        let n = topology.len();
        let channels: Vec<(Sender<Command>, Receiver<Command>)> =
            (0..n).map(|_| unbounded()).collect();
        let cmds: Vec<Sender<Command>> = channels.iter().map(|(tx, _)| tx.clone()).collect();
        let mut handles = Vec::with_capacity(n);
        for (b, (_, rx)) in channels.into_iter().enumerate() {
            let mut state = BrokerState {
                id: b as NodeId,
                topology: Arc::clone(&topology),
                schema: schema.clone(),
                codec,
                peers: cmds.clone(),
                exact: HashMap::new(),
                next_local: 0,
                own: BrokerSummary::new(schema.clone()),
                stored: BrokerSummary::new(schema.clone()),
                merged_brokers: BTreeSet::from([b as NodeId]),
                communicated: BTreeSet::new(),
                scratch: MatchScratch::new(),
                sharding,
                sharded: sharding.map(|n| ShardedSummary::new(schema.clone(), n)),
                shard_scratch: ShardScratch::new(),
                tracer: None,
            };
            let depth_gauge = subsum_telemetry::gauge(&format!(
                "{}{b}",
                subsum_telemetry::names::RUNTIME_MAILBOX_PREFIX
            ));
            handles.push(std::thread::spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    if subsum_telemetry::enabled() {
                        // Commands still queued behind the one just taken.
                        depth_gauge.set(rx.len() as i64);
                    }
                    let span = STAGE_HANDLE_MSG.start();
                    let keep_going = state.handle(cmd);
                    span.finish();
                    if !keep_going {
                        break;
                    }
                }
            }));
        }
        Ok(BrokerNetwork {
            topology,
            schema,
            cmds,
            handles,
            tracer: None,
        })
    }

    /// Installs a shared causal tracer: every broker thread records its
    /// routing, matching and verification spans into `tracer`'s
    /// per-broker flight recorders, and [`BrokerNetwork::publish`] opens
    /// a fresh root trace per event. Blocks until every thread has
    /// acknowledged the install.
    ///
    /// # Panics
    ///
    /// Panics if a broker thread has shut down.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        let (ack_tx, ack_rx) = unbounded();
        for tx in &self.cmds {
            let sent = tx
                .send(Command::SetTracer {
                    tracer: Some(Arc::clone(&tracer)),
                    reply: ack_tx.clone(),
                })
                .is_ok();
            assert!(sent, "broker thread alive");
        }
        for _ in &self.cmds {
            assert!(ack_rx.recv().is_ok(), "tracer install ack");
        }
        self.tracer = Some(tracer);
    }

    /// The installed tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The shared schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The broker overlay.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Registers a subscription at `broker` (blocking round-trip).
    ///
    /// # Errors
    ///
    /// Propagates id-layout overflows from the broker thread.
    ///
    /// # Panics
    ///
    /// Panics if the broker thread has shut down.
    pub fn subscribe(
        &self,
        broker: NodeId,
        sub: &Subscription,
    ) -> Result<SubscriptionId, TypeError> {
        let (reply, rx) = unbounded();
        self.cmds[broker as usize]
            .send(Command::Subscribe {
                sub: sub.clone(),
                reply,
            })
            .expect("broker thread alive");
        rx.recv().expect("broker thread replies")
    }

    /// Cancels a subscription at its owner broker.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let (reply, rx) = unbounded();
        self.cmds[id.broker.index()]
            .send(Command::Unsubscribe { id, reply })
            .expect("broker thread alive");
        rx.recv().expect("broker thread replies")
    }

    /// Runs a full propagation phase (Algorithm 2) in coordinated
    /// synchronous rounds.
    pub fn propagate(&self) -> PropagationStats {
        // Reset round.
        let (ack_tx, ack_rx) = unbounded();
        for tx in &self.cmds {
            tx.send(Command::ResetPropagation {
                reply: ack_tx.clone(),
            })
            .expect("broker thread alive");
        }
        for _ in &self.cmds {
            ack_rx.recv().expect("reset ack");
        }

        let mut stats = PropagationStats::default();
        for iteration in 1..=self.topology.max_degree() {
            let (round_tx, round_rx) = unbounded();
            for tx in &self.cmds {
                tx.send(Command::BeginIteration {
                    iteration,
                    reply: round_tx.clone(),
                })
                .expect("broker thread alive");
            }
            let mut msgs = Vec::new();
            for _ in &self.cmds {
                msgs.extend(round_rx.recv().expect("iteration reply"));
            }
            // Deterministic delivery order.
            msgs.sort_by_key(|m| (m.from, m.to));
            let (dack_tx, dack_rx) = unbounded();
            let count = msgs.len();
            for msg in msgs {
                stats.hops += 1;
                stats.bytes += msg.bytes as u64;
                let to = msg.to as usize;
                self.cmds[to]
                    .send(Command::DeliverSummary {
                        msg,
                        reply: dack_tx.clone(),
                    })
                    .expect("broker thread alive");
            }
            for _ in 0..count {
                dack_rx.recv().expect("delivery ack");
            }
        }
        stats
    }

    /// Publishes an event at `broker` and blocks until the routing
    /// cascade completes, returning the verified deliveries (sorted).
    pub fn publish(&self, broker: NodeId, event: &Event) -> Vec<Delivery> {
        let (tx, rx) = unbounded();
        let trace = match &self.tracer {
            Some(t) => t.new_root(),
            None => TraceCtx::NONE,
        };
        let ctx = EventCtx {
            event: event.clone(),
            deliveries: tx,
            trace,
            clock: 0,
        };
        let sent = self.cmds[broker as usize]
            .send(Command::ExamineEvent {
                ctx,
                brocli: vec![false; self.topology.len()],
            })
            .is_ok();
        assert!(sent, "broker thread alive");
        // Brokers drop their ctx clones as they finish; once all are
        // gone the iterator below sees the channel disconnect.
        let mut deliveries: Vec<Delivery> = rx.iter().collect();
        deliveries.sort_by_key(|d| d.id);
        deliveries.dedup();
        deliveries
    }

    /// Stops all broker threads and joins them.
    pub fn shutdown(self) {
        for tx in &self.cmds {
            let _ = tx.send(Command::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_types::{stock_schema, NumOp, StrOp};

    #[test]
    fn end_to_end_delivery() {
        let net = BrokerNetwork::start(Topology::fig7_tree(), stock_schema(), 1000).unwrap();
        let schema = net.schema().clone();
        let sub = Subscription::builder(&schema)
            .num("price", NumOp::Gt, 8.30)
            .unwrap()
            .num("price", NumOp::Lt, 8.70)
            .unwrap()
            .build()
            .unwrap();
        let id = net.subscribe(3, &sub).unwrap();
        let stats = net.propagate();
        assert_eq!(stats.hops, 10); // identical to the deterministic engine
        let event = Event::builder(&schema).num("price", 8.40).unwrap().build();
        let deliveries = net.publish(0, &event);
        assert_eq!(deliveries, vec![Delivery { id, owner: 3 }]);
        net.shutdown();
    }

    #[test]
    fn threaded_matches_deterministic_engine() {
        use crate::SummaryPubSub;
        let topo = Topology::cable_wireless_24();
        let schema = stock_schema();
        let net = BrokerNetwork::start(topo.clone(), schema.clone(), 1000).unwrap();
        let mut det = SummaryPubSub::new(topo, schema.clone(), 1000).unwrap();

        for b in 0..24u16 {
            let sub = Subscription::builder(&schema)
                .num("price", NumOp::Lt, (b % 5) as f64)
                .unwrap()
                .build()
                .unwrap();
            net.subscribe(b, &sub).unwrap();
            det.subscribe(b, &sub).unwrap();
        }
        let stats = net.propagate();
        let det_hops;
        let det_bytes;
        {
            let det_out = det.propagate().unwrap();
            det_hops = det_out.hops();
            det_bytes = det_out.metrics.payload_bytes;
        }
        assert_eq!(stats.hops, det_hops);
        assert_eq!(stats.bytes, det_bytes);

        let event = Event::builder(&schema).num("price", 1.5).unwrap().build();
        for publisher in [0u16, 7, 23] {
            let threaded = net.publish(publisher, &event);
            let deterministic = det.publish(publisher, &event);
            let mut a: Vec<_> = threaded.iter().map(|d| d.id).collect();
            let mut b: Vec<_> = deterministic.deliveries.iter().map(|d| d.id).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "publisher {publisher}");
        }
        net.shutdown();
    }

    #[test]
    fn sharded_runtime_matches_flat_runtime() {
        let topo = Topology::cable_wireless_24();
        let schema = stock_schema();
        let flat = BrokerNetwork::start(topo.clone(), schema.clone(), 1000).unwrap();
        let sharded = BrokerNetwork::start_with_shards(topo, schema.clone(), 1000, 4).unwrap();

        let mut flat_ids = Vec::new();
        let mut sharded_ids = Vec::new();
        for b in 0..24u16 {
            for k in 0..4u16 {
                let lo = f64::from((b * 7 + k * 3) % 40);
                let sub = Subscription::builder(&schema)
                    .num("price", NumOp::Ge, lo)
                    .unwrap()
                    .num("price", NumOp::Lt, lo + 15.0)
                    .unwrap()
                    .build()
                    .unwrap();
                flat_ids.push(flat.subscribe(b, &sub).unwrap());
                sharded_ids.push(sharded.subscribe(b, &sub).unwrap());
            }
        }
        let a = flat.propagate();
        let b = sharded.propagate();
        assert_eq!(a, b, "propagation traffic is shard-agnostic");

        // Churn without re-propagation: unsubscribes hit the sharded
        // store in place, new subscriptions ride the lock-free publish.
        for i in (0..flat_ids.len()).step_by(5) {
            assert!(flat.unsubscribe(flat_ids[i]));
            assert!(sharded.unsubscribe(sharded_ids[i]));
        }
        for price in [0.0, 7.5, 19.0, 33.0, 44.0] {
            let event = Event::builder(&schema).num("price", price).unwrap().build();
            for publisher in [0u16, 11, 23] {
                let mut x: Vec<_> = flat.publish(publisher, &event);
                let mut y: Vec<_> = sharded.publish(publisher, &event);
                x.sort_by_key(|d| d.id);
                y.sort_by_key(|d| d.id);
                assert_eq!(
                    x.iter()
                        .map(|d| (d.id.broker, d.id.local))
                        .collect::<Vec<_>>(),
                    y.iter()
                        .map(|d| (d.id.broker, d.id.local))
                        .collect::<Vec<_>>(),
                    "price {price} publisher {publisher}"
                );
            }
        }
        flat.shutdown();
        sharded.shutdown();
    }

    #[test]
    fn unsubscribe_respected_without_repropagation() {
        let net = BrokerNetwork::start(Topology::line(3), stock_schema(), 100).unwrap();
        let schema = net.schema().clone();
        let sub = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Eq, "OTE")
            .unwrap()
            .build()
            .unwrap();
        let id = net.subscribe(2, &sub).unwrap();
        net.propagate();
        let event = Event::builder(&schema)
            .str("symbol", "OTE")
            .unwrap()
            .build();
        assert_eq!(net.publish(0, &event).len(), 1);
        assert!(net.unsubscribe(id));
        // Tier-2 verification rejects the stale candidate.
        assert!(net.publish(0, &event).is_empty());
        net.shutdown();
    }

    #[test]
    fn concurrent_publishes() {
        let net = std::sync::Arc::new(
            BrokerNetwork::start(Topology::ring(6), stock_schema(), 100).unwrap(),
        );
        let schema = net.schema().clone();
        for b in 0..6u16 {
            let sub = Subscription::builder(&schema)
                .num("volume", NumOp::Ge, (b as f64) * 100.0)
                .unwrap()
                .build()
                .unwrap();
            net.subscribe(b, &sub).unwrap();
        }
        net.propagate();
        let mut joins = Vec::new();
        for t in 0..4i64 {
            let net = std::sync::Arc::clone(&net);
            let schema = schema.clone();
            joins.push(std::thread::spawn(move || {
                let event = Event::builder(&schema)
                    .int("volume", 250 + t)
                    .unwrap()
                    .build();
                net.publish((t % 6) as NodeId, &event).len()
            }));
        }
        for j in joins {
            // volume in [250, 254): thresholds 0, 100, 200 match → 3.
            assert_eq!(j.join().unwrap(), 3);
        }
        match std::sync::Arc::try_unwrap(net) {
            Ok(net) => net.shutdown(),
            Err(_) => panic!("all clones joined"),
        }
    }

    #[test]
    fn tracer_records_spans_without_changing_deliveries() {
        use subsum_telemetry::trace::SpanKind;
        let schema = stock_schema();
        let topo = Topology::fig7_tree();
        let sub = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 9.0)
            .unwrap()
            .build()
            .unwrap();

        let plain = BrokerNetwork::start(topo.clone(), schema.clone(), 100).unwrap();
        let mut traced = BrokerNetwork::start(topo.clone(), schema.clone(), 100).unwrap();
        traced.set_tracer(Arc::new(Tracer::new(topo.len(), 256, 0xFEED, 1)));
        let id_p = plain.subscribe(4, &sub).unwrap();
        let id_t = traced.subscribe(4, &sub).unwrap();
        plain.propagate();
        traced.propagate();

        let event = Event::builder(&schema).num("price", 8.4).unwrap().build();
        let a = plain.publish(0, &event);
        let b = traced.publish(0, &event);
        assert_eq!(a, vec![Delivery { id: id_p, owner: 4 }]);
        assert_eq!(b, vec![Delivery { id: id_t, owner: 4 }]);

        let spans = traced.tracer().unwrap().spans();
        assert!(!spans.is_empty(), "tracer captured the cascade");
        let count = |k: SpanKind| spans.iter().filter(|s| s.kind == k).count();
        // One delivery verified at one owner; each examined broker
        // records exactly one Route + Match pair.
        assert_eq!(count(SpanKind::Deliver), 1);
        assert_eq!(count(SpanKind::OwnerVerify), 1);
        assert!(count(SpanKind::Route) >= 1);
        assert_eq!(count(SpanKind::Match), count(SpanKind::Route));
        plain.shutdown();
        traced.shutdown();
    }

    #[test]
    fn publish_with_no_subscribers_terminates() {
        let net = BrokerNetwork::start(Topology::star(5), stock_schema(), 100).unwrap();
        let schema = net.schema().clone();
        net.propagate();
        let event = Event::builder(&schema).num("price", 1.0).unwrap().build();
        assert!(net.publish(3, &event).is_empty());
        net.shutdown();
    }

    #[test]
    fn repropagation_after_churn() {
        let net = BrokerNetwork::start(Topology::grid(3, 3), stock_schema(), 100).unwrap();
        let schema = net.schema().clone();
        let sub = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 5.0)
            .unwrap()
            .build()
            .unwrap();
        let id1 = net.subscribe(0, &sub).unwrap();
        net.propagate();
        let event = Event::builder(&schema).num("price", 1.0).unwrap().build();
        assert_eq!(net.publish(8, &event).len(), 1);

        // Second generation: one leaves, one joins; re-propagate.
        assert!(net.unsubscribe(id1));
        let id2 = net.subscribe(4, &sub).unwrap();
        net.propagate();
        let deliveries = net.publish(8, &event);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].id, id2);
        net.shutdown();
    }

    #[test]
    fn subscription_visible_before_propagation_only_locally() {
        // Until a propagation period runs, remote brokers have no state
        // for a new subscription; publishing at the owner itself still
        // examines its own (stored = own) summary.
        let net = BrokerNetwork::start(Topology::line(3), stock_schema(), 100).unwrap();
        let schema = net.schema().clone();
        net.propagate(); // empty period, installs empty merged summaries
        let sub = Subscription::builder(&schema)
            .num("price", NumOp::Gt, 0.0)
            .unwrap()
            .build()
            .unwrap();
        let id = net.subscribe(2, &sub).unwrap();
        let event = Event::builder(&schema).num("price", 1.0).unwrap().build();
        // Publishing at the owner sees the local subscription at once.
        let local = net.publish(2, &event);
        assert_eq!(local.first().map(|d| d.id), Some(id));
        net.propagate();
        // After propagation every publisher reaches it.
        assert_eq!(net.publish(0, &event).len(), 1);
        net.shutdown();
    }

    #[test]
    fn propagation_stats_are_stable_across_periods() {
        // Algorithm 2's schedule is topology-driven: repeated periods
        // with unchanged content produce identical hop counts.
        let net = BrokerNetwork::start(Topology::cable_wireless_24(), stock_schema(), 100).unwrap();
        let a = net.propagate();
        let b = net.propagate();
        assert_eq!(a.hops, b.hops);
        net.shutdown();
    }

    #[test]
    fn many_concurrent_publishers_stress() {
        let net = std::sync::Arc::new(
            BrokerNetwork::start(Topology::cable_wireless_24(), stock_schema(), 1000).unwrap(),
        );
        let schema = net.schema().clone();
        for b in 0..24u16 {
            let sub = Subscription::builder(&schema)
                .num("volume", NumOp::Ge, (b as f64) * 10.0)
                .unwrap()
                .build()
                .unwrap();
            net.subscribe(b, &sub).unwrap();
        }
        net.propagate();
        let mut joins = Vec::new();
        for t in 0..16i64 {
            let net = std::sync::Arc::clone(&net);
            let schema = schema.clone();
            joins.push(std::thread::spawn(move || {
                let mut total = 0usize;
                for k in 0..25 {
                    let event = Event::builder(&schema)
                        .int("volume", (t * 25 + k) % 240)
                        .unwrap()
                        .build();
                    total += net.publish(((t + k) % 24) as NodeId, &event).len();
                }
                total
            }));
        }
        let grand: usize = joins.into_iter().map(|j| j.join().unwrap()).sum();
        assert!(grand > 0);
        match std::sync::Arc::try_unwrap(net) {
            Ok(net) => net.shutdown(),
            Err(_) => panic!("all clones joined"),
        }
    }
}
