//! The transport seam between broker logic and message delivery.
//!
//! Broker protocols in this crate — summary propagation, anti-entropy
//! repair, event routing — are written against the [`Transport`] trait
//! rather than a concrete network. Two implementations exist:
//!
//! * the deterministic simulator ([`LossyNet`], in `subsum-net`), where
//!   "time" is discrete-event ticks and a seeded [`FaultPlan`]
//!   (`subsum_net::FaultPlan`) decides drops, duplicates, delays,
//!   partitions and crashes — every chaos test runs here;
//! * real sockets (`TcpTransport` in `subsum-transport`), where "time"
//!   is wall-clock milliseconds and the operating system decides.
//!
//! The contract is deliberately the smallest surface the protocols
//! need:
//!
//! * [`Transport::send`] offers one broker message on a directed link;
//!   delivery is best-effort (the simulator may drop it, a socket may
//!   break) and ordering is guaranteed only per link, not globally.
//! * [`Transport::schedule`] plants a control event at a broker after a
//!   delay; control events are exempt from fault injection — timers
//!   must fire even on a partitioned or crashed broker.
//! * [`Transport::recv`] returns the next deliverable envelope and
//!   advances the transport clock; `None` means quiescence (simulator:
//!   queue drained; sockets: shutdown).
//!
//! Protocols driven through this seam must therefore already tolerate
//! loss, duplication and reordering across links — which the summary
//! exchange does by construction (view-replacement updates are
//! idempotent, digests detect divergence, pulls repair it). That is
//! what makes the trait honest: code that converges under a chaos
//! [`FaultPlan`](subsum_net::FaultPlan) needs no changes to run over
//! TCP.

use subsum_net::{Envelope, FaultStats, LossyNet, NodeId};
use subsum_telemetry::trace::TraceCtx;

/// A best-effort, per-link-ordered message fabric for broker protocols.
///
/// See the [module docs](self) for the delivery contract. `M` is the
/// protocol message type; implementations never inspect it.
pub trait Transport<M> {
    /// Offers a broker message on the directed link `from → to` with a
    /// base transit delay in transport ticks. Delivery is best-effort.
    fn send(&mut self, from: NodeId, to: NodeId, delay: u64, ctx: TraceCtx, msg: M);

    /// Schedules a control event at `broker` after `delay` ticks,
    /// exempt from fault injection (timers fire on dead brokers too).
    fn schedule(&mut self, broker: NodeId, delay: u64, ctx: TraceCtx, msg: M);

    /// Pops the next deliverable envelope, advancing the transport
    /// clock. `None` means the transport is quiescent.
    fn recv(&mut self) -> Option<(u64, Envelope<M>)>;

    /// The current transport time (simulator ticks or milliseconds).
    fn now(&self) -> u64;

    /// Delivery counters accumulated so far.
    fn fault_stats(&self) -> FaultStats;
}

impl<M: Clone> Transport<M> for LossyNet<M> {
    fn send(&mut self, from: NodeId, to: NodeId, delay: u64, ctx: TraceCtx, msg: M) {
        self.send_traced(from, to, delay, ctx, msg);
    }

    fn schedule(&mut self, broker: NodeId, delay: u64, ctx: TraceCtx, msg: M) {
        self.schedule_traced(broker, delay, ctx, msg);
    }

    fn recv(&mut self) -> Option<(u64, Envelope<M>)> {
        self.pop()
    }

    fn now(&self) -> u64 {
        LossyNet::now(self)
    }

    fn fault_stats(&self) -> FaultStats {
        *self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_net::FaultPlan;

    /// A driver written only against the trait must behave identically
    /// to one calling the simulator directly.
    fn drive<T: Transport<u32>>(net: &mut T) -> Vec<(u64, NodeId, u32)> {
        for i in 0..5u32 {
            net.send(0, 1, u64::from(i), TraceCtx::NONE, i);
        }
        net.schedule(1, 2, TraceCtx::NONE, 99);
        let mut got = Vec::new();
        while let Some((t, env)) = net.recv() {
            got.push((t, env.to, env.payload));
        }
        got
    }

    #[test]
    fn lossy_net_impl_matches_direct_use() {
        let mut via_trait: LossyNet<u32> = LossyNet::new(FaultPlan::reliable(3));
        let seen = drive(&mut via_trait);

        let mut direct: LossyNet<u32> = LossyNet::new(FaultPlan::reliable(3));
        for i in 0..5u32 {
            direct.send(0, 1, u64::from(i), i);
        }
        direct.schedule(1, 2, 99);
        let mut expect = Vec::new();
        while let Some((t, env)) = direct.pop() {
            expect.push((t, env.to, env.payload));
        }

        assert_eq!(seen, expect);
        assert_eq!(via_trait.fault_stats(), *direct.stats());
        assert_eq!(Transport::<u32>::now(&via_trait), direct.now());
    }
}
