//! Property-based tests for the distributed algorithms: Algorithm 2
//! coverage and Algorithm 3 delivery exactness on random topologies and
//! random interest sets.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_broker::{propagate, route_event, BrokerCheckpoint, RoutingOptions, SummaryPubSub};
use subsum_core::{ArithWidth, BrokerSummary, SummaryCodec};
use subsum_net::{NodeId, Topology};
use subsum_types::{AttrKind, BrokerId, Event, IdLayout, LocalSubId, Schema, StrOp, Subscription};

fn random_topology(seed: u64, n: usize) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    Topology::random_connected(n.max(2), n / 3, &mut rng)
}

fn tag_schema() -> Schema {
    Schema::builder()
        .attr("tag", AttrKind::String)
        .unwrap()
        .build()
}

fn marker_sub(schema: &Schema, b: NodeId) -> Subscription {
    Subscription::builder(schema)
        .str_op("tag", StrOp::Contains, &format!("<b{b}>"))
        .unwrap()
        .build()
        .unwrap()
}

fn marker_event(schema: &Schema, matched: &[NodeId]) -> Event {
    let tag: String = matched.iter().map(|b| format!("<b{b}>")).collect();
    Event::builder(schema).str("tag", tag).unwrap().build()
}

/// Deep structural validation of a broker summary; the validator only
/// exists in debug builds when called from an integration test, so
/// release-mode runs skip it rather than fail to compile.
fn check_invariants(summary: &BrokerSummary) {
    #[cfg(debug_assertions)]
    summary.validate();
    #[cfg(not(debug_assertions))]
    let _ = summary;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Algorithm 2 on arbitrary connected topologies: every broker's set
    /// contains itself, hops never exceed the broker count, and every
    /// broker's subscriptions end up inside the stored summary of every
    /// broker whose `Merged_Brokers` set claims them.
    #[test]
    fn propagation_claims_are_backed_by_content(seed in 0u64..500, n in 2usize..25) {
        let topology = random_topology(seed, n);
        let n = topology.len();
        let schema = tag_schema();
        let layout = IdLayout::new(n as u64, 4, 1).unwrap();
        let codec = SummaryCodec::new(layout, ArithWidth::Four);
        let own: Vec<BrokerSummary> = (0..n as NodeId)
            .map(|b| {
                let mut s = BrokerSummary::new(schema.clone());
                s.insert(BrokerId(b), LocalSubId(0), &marker_sub(&schema, b));
                s
            })
            .collect();
        let out = propagate(&topology, &own, &codec).unwrap();
        prop_assert!(out.covers_all_brokers());
        prop_assert!(out.hops() <= n as u64);
        for (b, stored) in out.stored.iter().enumerate() {
            // Every hop of Algorithm 2 merges decoded summaries, so the
            // stored result exercises merge + wire round-trip; validate
            // each one deeply.
            check_invariants(&stored.summary);
            prop_assert!(stored.merged_brokers.contains(&(b as NodeId)));
            let ids = stored.summary.subscription_ids();
            for &claimed in &stored.merged_brokers {
                prop_assert!(
                    ids.iter().any(|id| id.broker.0 == claimed),
                    "broker {b} claims {claimed} but lacks its subscription"
                );
            }
        }
    }

    /// Algorithm 3 notifies exactly the matched brokers, from any
    /// publisher, with visit count bounded by the broker count.
    #[test]
    fn routing_is_exact_and_bounded(seed in 0u64..500, n in 2usize..25,
                                    raw_matched in proptest::collection::vec(0usize..25, 1..6),
                                    raw_pub in 0usize..25) {
        let topology = random_topology(seed, n);
        let n = topology.len();
        let schema = tag_schema();
        let layout = IdLayout::new(n as u64, 4, 1).unwrap();
        let codec = SummaryCodec::new(layout, ArithWidth::Four);
        let own: Vec<BrokerSummary> = (0..n as NodeId)
            .map(|b| {
                let mut s = BrokerSummary::new(schema.clone());
                s.insert(BrokerId(b), LocalSubId(0), &marker_sub(&schema, b));
                s
            })
            .collect();
        let stored = propagate(&topology, &own, &codec).unwrap().stored;
        for s in &stored {
            check_invariants(&s.summary);
        }
        let mut matched: Vec<NodeId> = raw_matched.iter().map(|&x| (x % n) as NodeId).collect();
        matched.sort_unstable();
        matched.dedup();
        let publisher = (raw_pub % n) as NodeId;
        let event = marker_event(&schema, &matched);
        let out = route_event(&topology, &stored, publisher, &event, 50,
                              &RoutingOptions::new());
        let mut owners: Vec<NodeId> = out.notifications.iter().map(|x| x.owner).collect();
        owners.sort_unstable();
        owners.dedup();
        prop_assert_eq!(owners, matched);
        prop_assert!(out.visits.len() <= n);
        // No broker is visited twice.
        let mut v = out.visits.clone();
        v.sort_unstable();
        v.dedup();
        prop_assert_eq!(v.len(), out.visits.len());
    }

    /// End-to-end: deliveries equal the oracle even under the §6
    /// subsumption filter, on random topologies.
    #[test]
    fn system_with_filter_equals_oracle(seed in 0u64..200, n in 2usize..12,
                                        filter in any::<bool>()) {
        let topology = random_topology(seed, n);
        let n = topology.len();
        let schema = tag_schema();
        let mut sys = SummaryPubSub::new(topology, schema.clone(), 64).unwrap();
        sys.set_subsumption_filter(filter);
        // Broker b watches its own marker; half the brokers also watch
        // the universal containment (covering everything).
        for b in 0..n as NodeId {
            sys.subscribe(b, &marker_sub(&schema, b)).unwrap();
            if b % 2 == 0 {
                let broad = Subscription::builder(&schema)
                    .str_op("tag", StrOp::Contains, "<b")
                    .unwrap()
                    .build()
                    .unwrap();
                sys.subscribe(b, &broad).unwrap();
            }
        }
        sys.propagate().unwrap();
        let matched: Vec<NodeId> = (0..n as NodeId).filter(|b| b % 3 == 0).collect();
        let event = marker_event(&schema, &matched);
        for publisher in 0..n as NodeId {
            let out = sys.publish(publisher, &event);
            let mut got: Vec<_> = out.deliveries.iter().map(|d| d.id).collect();
            got.sort();
            got.dedup();
            prop_assert_eq!(got, sys.oracle_matches(&event));
        }
    }

    /// Checkpoint save → crash (state discarded) → restore rebuilds a
    /// summary that is validate()-clean and digest-equal to the
    /// pre-crash one, with the exact store, local-id counter, and the
    /// dense-id intern table (exercised by `subscription_ids`, which
    /// resolves every posting through it) all coherent.
    #[test]
    fn checkpoint_restore_is_digest_faithful(seed in 0u64..300, n in 2usize..12,
                                             subs_per_broker in 1usize..8) {
        let topology = random_topology(seed, n);
        let n = topology.len();
        let schema = tag_schema();
        let mut sys = SummaryPubSub::new(topology, schema.clone(), 64).unwrap();
        for b in 0..n as NodeId {
            for k in 0..subs_per_broker {
                // A mix of distinct substring interests plus repeated
                // ones, so rows carry multi-id posting lists.
                let sub = if k % 2 == 0 {
                    marker_sub(&schema, b)
                } else {
                    Subscription::builder(&schema)
                        .str_op("tag", StrOp::Prefix, &format!("p{}", k % 3))
                        .unwrap()
                        .build()
                        .unwrap()
                };
                sys.subscribe(b, &sub).unwrap();
            }
        }

        for b in 0..n as NodeId {
            // Pre-crash state, built in the canonical ascending-id order.
            let mut subs: Vec<_> = sys.exact_store(b).iter()
                .map(|(id, s)| (*id, s.clone()))
                .collect();
            subs.sort_by_key(|(id, _)| *id);
            let pre = BrokerSummary::rebuild(
                schema.clone(), subs.iter().map(|(id, s)| (*id, s)));
            let pre_digest = pre.digest();

            // Save, then "crash": everything in memory is gone; only the
            // checkpoint bytes survive.
            let bytes = BrokerCheckpoint::capture(&sys, b).to_bytes();
            drop(subs);

            let cp = BrokerCheckpoint::from_bytes(&bytes).unwrap();
            prop_assert_eq!(cp.next_local, sys.next_local_at(b));
            prop_assert_eq!(cp.subs.len(), sys.exact_store(b).len());

            let restored = BrokerSummary::rebuild(
                schema.clone(), cp.subs.iter().map(|(id, s)| (*id, s)));
            check_invariants(&restored);
            prop_assert_eq!(restored.digest(), pre_digest);
            // Intern-table coherence: the resolved, sorted id set of the
            // restored summary equals the pre-crash one.
            prop_assert_eq!(restored.subscription_ids(), pre.subscription_ids());
            prop_assert_eq!(restored.subscription_count(), cp.subs.len());
        }
    }
}
