//! Seeded chaos scenarios: convergence under faults, determinism of the
//! counters, and the anti-entropy vs naive repair-traffic comparison.
//! The CI chaos smoke job runs exactly this test binary.

use std::sync::Arc;

use subsum_broker::{ChaosConfig, ChaosReport, ChaosRun};
use subsum_net::{CrashEvent, FaultPlan, LinkProfile, Topology};
use subsum_telemetry::trace::Tracer;
use subsum_types::{stock_schema, NumOp, Schema, StrOp, Subscription};

/// The fixed scenario of the acceptance criteria: per-link drops and
/// duplication, plus one broker crash mid-run, on the Fig. 7 tree.
fn stormy_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::reliable(seed);
    plan.default_link = LinkProfile {
        drop: 0.15,
        duplicate: 0.10,
        max_extra_delay: 3,
    };
    plan.crashes.push(CrashEvent {
        broker: 4, // the paper's broker 5, the tree's hub
        at: 120,
        restart_at: 180,
    });
    plan
}

fn populated_run(plan: FaultPlan, config: ChaosConfig) -> ChaosRun {
    let schema = stock_schema();
    let mut run = ChaosRun::new(Topology::fig7_tree(), schema.clone(), plan, config).unwrap();
    for b in 0..13u16 {
        for k in 0..4u32 {
            let sub = mixed_sub(&schema, b, k);
            run.subscribe(b, &sub);
        }
    }
    run.checkpoint_all();
    run
}

fn mixed_sub(schema: &Schema, b: u16, k: u32) -> Subscription {
    if (b as u32 + k) % 2 == 0 {
        Subscription::builder(schema)
            .num("price", NumOp::Lt, (b as f64) + (k as f64) / 4.0)
            .unwrap()
            .build()
            .unwrap()
    } else {
        Subscription::builder(schema)
            .str_op("symbol", StrOp::Prefix, &format!("S{}", (b + k as u16) % 5))
            .unwrap()
            .build()
            .unwrap()
    }
}

fn run_once(seed: u64, naive: bool) -> ChaosReport {
    let config = ChaosConfig {
        naive_repair: naive,
        ..ChaosConfig::default()
    };
    populated_run(stormy_plan(seed), config).run().unwrap()
}

#[test]
fn fixed_seed_chaos_run_converges() {
    let report = run_once(0x5EED, false);
    assert!(
        report.converged,
        "run must converge to the fault-free oracle: {report:?}"
    );
    assert!(report.converged_at.is_some());
    // The plan actually exercised its faults.
    assert!(report.stats.dropped > 0, "drops must occur: {report:?}");
    assert!(report.stats.duplicated > 0, "dups must occur: {report:?}");
    assert_eq!(report.stats.crashes, 1);
    assert_eq!(report.stats.restarts, 1);
    assert!(
        report.stats.resyncs > 0,
        "anti-entropy must repair something: {report:?}"
    );
}

#[test]
fn same_seed_yields_byte_identical_counters() {
    let a = run_once(0xD15EA5E, false);
    let b = run_once(0xD15EA5E, false);
    assert_eq!(a, b, "two runs with one seed must be identical");

    // A different seed perturbs the fault decisions (sanity check that
    // equality above is not vacuous).
    let c = run_once(0xD15EA5E + 1, false);
    assert_ne!(a.stats, c.stats);
}

#[test]
fn anti_entropy_repair_traffic_beats_naive_full_resend() {
    let smart = run_once(0xBEEF, false);
    let naive = run_once(0xBEEF, true);
    assert!(smart.converged && naive.converged);
    assert!(
        smart.stats.total_bytes() < naive.stats.total_bytes() / 2,
        "anti-entropy bytes {} must be well below naive bytes {}",
        smart.stats.total_bytes(),
        naive.stats.total_bytes()
    );
    assert!(smart.stats.digest_bytes > 0);
    assert_eq!(naive.stats.digest_bytes, 0);
}

fn run_traced(seed: u64, trace_seed: u64, one_in: u64) -> (ChaosReport, String) {
    let mut run = populated_run(stormy_plan(seed), ChaosConfig::default());
    run.set_tracer(Arc::new(Tracer::new(13, 4096, trace_seed, one_in)));
    let report = run.run().unwrap();
    let json = run.tracer().unwrap().chrome_trace_string();
    (report, json)
}

#[test]
fn sampled_traced_runs_are_replay_exact_and_do_not_perturb_the_run() {
    // Acceptance: two identical chaos runs at 1-in-64 sampling export
    // byte-identical Chrome traces, and tracing never perturbs the
    // simulation itself.
    let (report_a, json_a) = run_traced(0xCAFE, 0x77ACE, 64);
    let (report_b, json_b) = run_traced(0xCAFE, 0x77ACE, 64);
    assert_eq!(json_a, json_b, "same seed must export identical traces");
    assert_eq!(report_a, report_b);

    let untraced = populated_run(stormy_plan(0xCAFE), ChaosConfig::default())
        .run()
        .unwrap();
    assert_eq!(
        report_a.stats, untraced.stats,
        "tracing must not change fault or repair behavior"
    );
    assert_eq!(report_a.converged_at, untraced.converged_at);
}

#[test]
fn always_on_tracing_captures_spans_and_crash_snapshots() {
    let (report, json) = run_traced(0x5EED, 1, 1);
    assert!(report.converged);
    assert!(
        json.contains("\"traceEvents\""),
        "chrome export must be well-formed"
    );
    // The crash of broker 4 snapshots its flight recorder into the report.
    let snap = report
        .crash_snapshots
        .iter()
        .find(|(b, _)| *b == 4)
        .expect("crash snapshot for broker 4");
    assert!(
        !snap.1.is_empty(),
        "the hub participates in the update waves before crashing"
    );
}

#[test]
fn uncheckpointed_broker_restarts_empty_and_system_still_converges() {
    let schema = stock_schema();
    let mut plan = FaultPlan::reliable(77);
    plan.crashes.push(CrashEvent {
        broker: 2,
        at: 60,
        restart_at: 110,
    });
    let mut run = ChaosRun::new(
        Topology::fig7_tree(),
        schema.clone(),
        plan,
        ChaosConfig::default(),
    )
    .unwrap();
    for b in 0..13u16 {
        run.subscribe(b, &mixed_sub(&schema, b, 0));
    }
    // Checkpoint everyone except the crasher: its subscriptions are
    // genuinely lost, and the oracle (built from final durable state)
    // reflects that.
    for b in 0..13u16 {
        if b != 2 {
            run.checkpoint(b);
        }
    }
    let report = run.run().unwrap();
    assert!(report.converged, "{report:?}");
    assert_eq!(report.stats.crashes, 1);
}

#[test]
fn partition_heals_and_converges() {
    let schema = stock_schema();
    let mut plan = FaultPlan::reliable(31);
    plan.partitions.push(subsum_net::PartitionWindow {
        island: vec![0, 1, 2, 3, 4, 5],
        from: 0,
        until: 150,
    });
    let mut run = ChaosRun::new(
        Topology::fig7_tree(),
        schema.clone(),
        plan,
        ChaosConfig::default(),
    )
    .unwrap();
    for b in 0..13u16 {
        run.subscribe(b, &mixed_sub(&schema, b, 1));
    }
    run.checkpoint_all();
    let report = run.run().unwrap();
    assert!(report.converged, "{report:?}");
    assert!(
        report.stats.link_dropped > 0,
        "partition must sever messages: {report:?}"
    );
    assert!(
        report.converged_at.unwrap_or(0) >= 150,
        "cannot converge before the partition heals: {report:?}"
    );
}
