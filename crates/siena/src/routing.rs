//! Siena-style event routing: reverse-path forwarding (reconstruction).
//!
//! In Siena, "the routing paths for events are set by subscriptions, which
//! are propagated throughout the network from neighbor to neighbor ...
//! when a producer publishes an event matching the subscription, the event
//! is routed following the reverse path put in place by the subscription's
//! propagation" (paper §5.2.2). A subscription from broker `m` floods
//! `m`'s spanning tree, so the reverse path from a publisher `p` to `m` is
//! the tree path `p → m` in the spanning tree rooted at `m`. An event
//! matching several brokers travels the union of those paths, each link
//! carrying the event once.

use std::collections::BTreeSet;

use subsum_net::{NodeId, Topology};
use subsum_telemetry::Stage;

static STAGE_ROUTE: Stage = Stage::new(subsum_telemetry::names::SIENA_ROUTE);

/// The links an event traverses to reach all matched brokers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReversePathRoute {
    /// Undirected links carrying the event (each counted once).
    pub links: BTreeSet<(NodeId, NodeId)>,
}

impl ReversePathRoute {
    /// The event-routing hop count: one hop per link traversal.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// Computes the reverse-path route for an event published at `publisher`
/// that matches the subscriptions of `matched` brokers.
///
/// # Panics
///
/// Panics if any broker id is out of range.
pub fn reverse_path_route(
    topology: &Topology,
    publisher: NodeId,
    matched: &[NodeId],
) -> ReversePathRoute {
    let _span = STAGE_ROUTE.start();
    let mut links = BTreeSet::new();
    for &m in matched {
        if m == publisher {
            continue; // local delivery, no network traversal
        }
        // The subscription of `m` flooded the spanning tree rooted at
        // `m`; the event retraces the tree path from the publisher back
        // to `m`.
        let parent = topology.shortest_path_tree(m);
        let path = Topology::path_to_root(&parent, publisher);
        for pair in path.windows(2) {
            let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            links.insert((a, b));
        }
    }
    ReversePathRoute { links }
}

/// Siena event routing over *subsumption-pruned* subscription state.
///
/// Under the paper's probabilistic model, broker `m`'s subscription only
/// reaches a pruned subtree of `m`'s spanning tree; elsewhere, covering
/// subscriptions stand in for it. An event published outside `m`'s
/// pruned region first travels along covering state until it reaches a
/// broker that still holds `m`'s subscription (modeled as the nearest
/// such broker), and only then follows `m`'s reverse path — the detour
/// that makes Siena's low-popularity hop counts worse than the
/// idealized shortest reverse paths of [`reverse_path_route`].
#[derive(Debug, Clone)]
pub struct SienaEventRouting {
    topology: Topology,
    /// All-pairs BFS distances.
    apsp: Vec<Vec<u32>>,
    /// Per-source spanning tree (parent pointers toward the source).
    trees: Vec<Vec<Option<NodeId>>>,
    /// `reach[m][v]`: does broker `v` hold `m`'s subscription state?
    reach: Vec<Vec<bool>>,
}

impl SienaEventRouting {
    /// Builds routing state by flooding every broker's subscription over
    /// its spanning tree with per-broker pruning probability
    /// `p_B = subsumption_max · degree(B)/max_degree` (the same process
    /// as [`propagate_probabilistic`](crate::propagate_probabilistic)).
    pub fn build<R: rand::Rng>(topology: &Topology, subsumption_max: f64, rng: &mut R) -> Self {
        let n = topology.len();
        let apsp = topology.all_pairs_distances();
        let mut trees = Vec::with_capacity(n);
        let mut reach = Vec::with_capacity(n);
        for m in 0..n as NodeId {
            let parent = topology.shortest_path_tree(m);
            let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
            for v in 0..n as NodeId {
                if let Some(p) = parent[v as usize] {
                    children[p as usize].push(v);
                }
            }
            let mut reached = vec![false; n];
            reached[m as usize] = true;
            let mut queue = vec![m];
            while let Some(v) = queue.pop() {
                let p_v = crate::broker_subsumption_probability(topology, v, subsumption_max);
                for &c in &children[v as usize] {
                    if rng.gen::<f64>() < p_v {
                        continue;
                    }
                    reached[c as usize] = true;
                    queue.push(c);
                }
            }
            trees.push(parent);
            reach.push(reached);
        }
        SienaEventRouting {
            topology: topology.clone(),
            apsp,
            trees,
            reach,
        }
    }

    /// Routes an event from `publisher` to every broker in `matched`,
    /// returning the union of traversed links.
    pub fn route(&self, publisher: NodeId, matched: &[NodeId]) -> ReversePathRoute {
        let _span = STAGE_ROUTE.start();
        let mut links = BTreeSet::new();
        let mut add = |a: NodeId, b: NodeId| {
            links.insert((a.min(b), a.max(b)));
        };
        for &m in matched {
            if m == publisher {
                continue;
            }
            let reach = &self.reach[m as usize];
            // Entry point: the publisher itself if it holds m's state,
            // else the nearest broker that does (m itself always does).
            let entry = if reach[publisher as usize] {
                publisher
            } else {
                (0..self.topology.len() as NodeId)
                    .filter(|&v| reach[v as usize])
                    .min_by_key(|&v| (self.apsp[publisher as usize][v as usize], v))
                    .expect("the source always holds its own state")
            };
            // Detour: covering state carries the event to the entry
            // broker along a shortest overlay path.
            let mut cur = publisher;
            while cur != entry {
                let d = self.apsp[cur as usize][entry as usize];
                let next = self
                    .topology
                    .neighbors(cur)
                    .iter()
                    .copied()
                    .find(|&nb| self.apsp[nb as usize][entry as usize] == d - 1)
                    .expect("BFS distances admit a descending neighbor");
                add(cur, next);
                cur = next;
            }
            // Reverse path from the entry broker to m along m's tree.
            let path = Topology::path_to_root(&self.trees[m as usize], entry);
            for pair in path.windows(2) {
                add(pair[0], pair[1]);
            }
        }
        ReversePathRoute { links }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_target_costs_shortest_path() {
        let topo = Topology::fig7_tree();
        let route = reverse_path_route(&topo, 0, &[12]);
        assert_eq!(route.hops() as u32, topo.distances(0)[12]);
    }

    #[test]
    fn local_match_costs_nothing() {
        let topo = Topology::fig7_tree();
        let route = reverse_path_route(&topo, 3, &[3]);
        assert_eq!(route.hops(), 0);
    }

    #[test]
    fn shared_prefix_counted_once() {
        let topo = Topology::fig7_tree();
        // Nodes 11 and 12 share the path through node 10 from node 0.
        let both = reverse_path_route(&topo, 0, &[11, 12]).hops();
        let sum = topo.distances(0)[11] as usize + topo.distances(0)[12] as usize;
        assert!(both < sum);
        let one = reverse_path_route(&topo, 0, &[11]).hops();
        assert_eq!(both, one + 1);
    }

    #[test]
    fn all_brokers_bounded_by_links_needed() {
        let topo = Topology::cable_wireless_24();
        let all: Vec<NodeId> = (1..24).collect();
        let route = reverse_path_route(&topo, 0, &all);
        // On a general graph the union of per-target shortest paths can
        // use at most every edge once and must reach every broker.
        assert!(route.hops() >= 23);
        assert!(route.hops() <= topo.edge_count());
    }

    #[test]
    fn duplicated_targets_do_not_double_count() {
        let topo = Topology::line(5);
        let a = reverse_path_route(&topo, 0, &[4]);
        let b = reverse_path_route(&topo, 0, &[4, 4, 4]);
        assert_eq!(a, b);
        assert_eq!(a.hops(), 4);
    }

    #[test]
    fn pruned_routing_without_pruning_equals_ideal() {
        let topo = Topology::cable_wireless_24();
        let mut rng = StdRng::seed_from_u64(5);
        let state = SienaEventRouting::build(&topo, 0.0, &mut rng);
        for publisher in [0u16, 7, 23] {
            for matched in [vec![3u16], vec![1, 13, 22], vec![2, 5, 9, 17]] {
                let ideal = reverse_path_route(&topo, publisher, &matched);
                let pruned = state.route(publisher, &matched);
                assert_eq!(ideal.hops(), pruned.hops());
            }
        }
    }

    #[test]
    fn pruning_introduces_detours() {
        let topo = Topology::cable_wireless_24();
        let mut rng = StdRng::seed_from_u64(6);
        let state = SienaEventRouting::build(&topo, 0.9, &mut rng);
        let mut ideal_total = 0usize;
        let mut pruned_total = 0usize;
        for publisher in 0..24u16 {
            for m in 0..24u16 {
                if m == publisher {
                    continue;
                }
                ideal_total += reverse_path_route(&topo, publisher, &[m]).hops();
                pruned_total += state.route(publisher, &[m]).hops();
            }
        }
        assert!(
            pruned_total > ideal_total,
            "heavy pruning should lengthen paths: {pruned_total} vs {ideal_total}"
        );
    }

    #[test]
    fn pruned_routing_reaches_every_target() {
        // The route must end at each matched broker: its final tree link
        // touches the target.
        let topo = Topology::fig7_tree();
        let mut rng = StdRng::seed_from_u64(7);
        let state = SienaEventRouting::build(&topo, 0.5, &mut rng);
        for m in 1..13u16 {
            let route = state.route(0, &[m]);
            assert!(
                route.links.iter().any(|&(a, b)| a == m || b == m),
                "target {m} not reached: {:?}",
                route.links
            );
        }
    }

    #[test]
    fn pruned_routing_deterministic_under_seed() {
        let topo = Topology::ring(8);
        let a = SienaEventRouting::build(&topo, 0.5, &mut StdRng::seed_from_u64(9));
        let b = SienaEventRouting::build(&topo, 0.5, &mut StdRng::seed_from_u64(9));
        for p in 0..8u16 {
            assert_eq!(
                a.route(p, &[(p + 3) % 8]).links,
                b.route(p, &[(p + 3) % 8]).links
            );
        }
    }
}
