//! Siena-style subscription propagation (reconstruction).
//!
//! Siena propagates each broker's subscriptions neighbor-to-neighbor over
//! a per-source (minimum) spanning tree, stopping a subscription's
//! traversal wherever it is *subsumed* by one already forwarded
//! (paper §2.2 and §5.2.1). Two faithful models are provided:
//!
//! * [`propagate_probabilistic`] — the paper's evaluation model: a broker
//!   `B` declines to forward a received subscription to a neighbor with
//!   probability `p_B = p_max · degree(B) / max_degree` (§5.2: brokers
//!   with higher connectivity enjoy higher subsumption probabilities, and
//!   the stated probability is the maximum over brokers);
//! * [`propagate_content`] — real content-based pruning: a subscription is
//!   not forwarded over a link on which a covering subscription has
//!   already been sent (the ablation comparing the paper's probabilistic
//!   abstraction with actual subsumption).

use rand::Rng;

use subsum_net::{NetMetrics, NodeId, Topology};
use subsum_telemetry::Stage;
use subsum_types::{Schema, Subscription};

static STAGE_PROPAGATE: Stage = Stage::new(subsum_telemetry::names::SIENA_PROPAGATE);

/// Parameters of the probabilistic Siena model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SienaParams {
    /// `p_max`: the stated (maximum) subsumption probability; each
    /// broker's own probability scales with `degree / max_degree`.
    pub subsumption_max: f64,
    /// Average subscription size in bytes (Table 2: 50).
    pub sub_size: usize,
}

impl Default for SienaParams {
    fn default() -> Self {
        SienaParams {
            subsumption_max: 0.1,
            sub_size: 50,
        }
    }
}

/// The result of one Siena propagation period.
#[derive(Debug, Clone)]
pub struct SienaPropagation {
    /// Traffic counters; `metrics.messages` is the hop count.
    pub metrics: NetMetrics,
    /// Subscriptions stored per broker after the period (each broker
    /// stores every subscription it received plus its own).
    pub stored_subs: Vec<u64>,
}

impl SienaPropagation {
    /// Propagation hop count (one hop per neighbor-to-neighbor send).
    pub fn hops(&self) -> u64 {
        self.metrics.messages
    }

    /// Total storage in bytes across brokers at `sub_size` bytes per
    /// stored subscription (Fig. 11's Siena series).
    pub fn storage_bytes(&self, sub_size: usize) -> u64 {
        self.stored_subs.iter().sum::<u64>() * sub_size as u64
    }
}

/// Per-broker subsumption probability under the paper's model.
pub fn broker_subsumption_probability(topology: &Topology, broker: NodeId, p_max: f64) -> f64 {
    let max_degree = topology.max_degree().max(1);
    p_max * topology.degree(broker) as f64 / max_degree as f64
}

/// Runs the probabilistic model: each broker sources `sigma` new
/// subscriptions which flood its spanning tree subject to per-broker
/// subsumption pruning.
pub fn propagate_probabilistic<R: Rng>(
    topology: &Topology,
    sigma: usize,
    params: SienaParams,
    rng: &mut R,
) -> SienaPropagation {
    let _span = STAGE_PROPAGATE.start();
    let n = topology.len();
    let mut metrics = NetMetrics::new(n);
    let mut stored = vec![0u64; n];

    // Precompute children lists of each source's spanning tree.
    for source in 0..n as NodeId {
        let parent = topology.shortest_path_tree(source);
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in 0..n as NodeId {
            if let Some(p) = parent[v as usize] {
                children[p as usize].push(v);
            }
        }
        let probs: Vec<f64> = (0..n as NodeId)
            .map(|v| broker_subsumption_probability(topology, v, params.subsumption_max))
            .collect();

        for _ in 0..sigma {
            stored[source as usize] += 1; // the broker's own copy
                                          // BFS down the tree with per-(broker, neighbor) pruning.
            let mut queue = vec![source];
            while let Some(v) = queue.pop() {
                for &c in &children[v as usize] {
                    if rng.gen::<f64>() < probs[v as usize] {
                        continue; // subsumed: not forwarded on this link
                    }
                    metrics.record(v, c, params.sub_size, 1);
                    stored[c as usize] += 1;
                    queue.push(c);
                }
            }
        }
    }

    SienaPropagation {
        metrics,
        stored_subs: stored,
    }
}

/// Runs real content-based pruning: subscription `subs[b]` of each broker
/// `b` floods `b`'s spanning tree, but a subscription is not forwarded
/// over a directed link that already carried a covering subscription.
///
/// Returns the propagation result; `stored_subs[v]` counts subscriptions
/// received (or originated) at `v`.
pub fn propagate_content(
    topology: &Topology,
    schema: &Schema,
    subs: &[Vec<Subscription>],
    arith_width: usize,
) -> SienaPropagation {
    let _span = STAGE_PROPAGATE.start();
    assert_eq!(subs.len(), topology.len());
    let n = topology.len();
    let mut metrics = NetMetrics::new(n);
    let mut stored = vec![0u64; n];
    // Covering subscriptions already forwarded per directed edge,
    // shared across sources as in a real deployment.
    let mut forwarded: std::collections::HashMap<(NodeId, NodeId), Vec<Subscription>> =
        std::collections::HashMap::new();

    for source in 0..n as NodeId {
        let parent = topology.shortest_path_tree(source);
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in 0..n as NodeId {
            if let Some(p) = parent[v as usize] {
                children[p as usize].push(v);
            }
        }
        for sub in &subs[source as usize] {
            stored[source as usize] += 1;
            let size = sub.wire_size(schema, arith_width);
            let mut queue = vec![source];
            while let Some(v) = queue.pop() {
                for &c in &children[v as usize] {
                    let table = forwarded.entry((v, c)).or_default();
                    if table.iter().any(|t| t.covers(sub)) {
                        continue; // genuinely subsumed on this link
                    }
                    // Keep the table minimal: drop entries the new
                    // subscription covers.
                    table.retain(|t| !sub.covers(t));
                    table.push(sub.clone());
                    metrics.record(v, c, size, 1);
                    stored[c as usize] += 1;
                    queue.push(c);
                }
            }
        }
    }

    SienaPropagation {
        metrics,
        stored_subs: stored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use subsum_types::{stock_schema, NumOp};

    #[test]
    fn zero_subsumption_floods_everything() {
        let topo = Topology::fig7_tree();
        let mut rng = StdRng::seed_from_u64(1);
        let params = SienaParams {
            subsumption_max: 0.0,
            sub_size: 50,
        };
        let out = propagate_probabilistic(&topo, 3, params, &mut rng);
        // Every subscription reaches every broker: per source, σ·(B−1)
        // messages → 13·3·12 hops.
        assert_eq!(out.hops(), 13 * 3 * 12);
        assert_eq!(out.metrics.payload_bytes, 13 * 3 * 12 * 50);
        // Every broker stores all 13·3 subscriptions.
        assert!(out.stored_subs.iter().all(|&s| s == 39));
        assert_eq!(out.storage_bytes(50), 13 * 39 * 50);
    }

    #[test]
    fn full_subsumption_prunes_most_traffic() {
        let topo = Topology::fig7_tree();
        let mut rng = StdRng::seed_from_u64(2);
        let none = propagate_probabilistic(
            &topo,
            5,
            SienaParams {
                subsumption_max: 0.0,
                sub_size: 50,
            },
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let heavy = propagate_probabilistic(
            &topo,
            5,
            SienaParams {
                subsumption_max: 0.9,
                sub_size: 50,
            },
            &mut rng,
        );
        assert!(heavy.hops() < none.hops());
        assert!(heavy.storage_bytes(50) < none.storage_bytes(50));
    }

    #[test]
    fn probability_scales_with_degree() {
        let topo = Topology::fig7_tree();
        // Hub (node 4, degree 5 = max): probability equals p_max.
        assert!((broker_subsumption_probability(&topo, 4, 0.9) - 0.9).abs() < 1e-12);
        // A leaf (degree 1): p_max / 5.
        assert!((broker_subsumption_probability(&topo, 0, 0.9) - 0.18).abs() < 1e-12);
    }

    #[test]
    fn content_pruning_subsumed_subscriptions() {
        let topo = Topology::line(4);
        let schema = stock_schema();
        // Broker 0 first registers a broad subscription, then a narrower
        // one the broad one covers: the second never leaves broker 0.
        let broad = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 100.0)
            .unwrap()
            .build()
            .unwrap();
        let narrow = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 10.0)
            .unwrap()
            .build()
            .unwrap();
        let subs = vec![vec![broad, narrow], vec![], vec![], vec![]];
        let out = propagate_content(&topo, &schema, &subs, 4);
        // Only the broad subscription floods: 3 links.
        assert_eq!(out.hops(), 3);
        assert_eq!(out.stored_subs, vec![2, 1, 1, 1]);
    }

    #[test]
    fn content_no_covering_means_full_flood() {
        let topo = Topology::line(3);
        let schema = stock_schema();
        let a = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 1.0)
            .unwrap()
            .build()
            .unwrap();
        let b = Subscription::builder(&schema)
            .num("price", NumOp::Gt, 5.0)
            .unwrap()
            .build()
            .unwrap();
        let subs = vec![vec![a], vec![b], vec![]];
        let out = propagate_content(&topo, &schema, &subs, 4);
        // Each floods its own spanning tree fully: 2 + 2 hops.
        assert_eq!(out.hops(), 4);
    }

    #[test]
    fn content_cross_source_covering() {
        // A covering subscription from one source prunes a later one from
        // another source on shared links.
        let topo = Topology::line(3);
        let schema = stock_schema();
        let broad = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 100.0)
            .unwrap()
            .build()
            .unwrap();
        let narrow = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 10.0)
            .unwrap()
            .build()
            .unwrap();
        // Source 0 floods broad over links (0→1), (1→2). Source 1's
        // narrow is then pruned on (1→2) but still sent on (1→0), which
        // has not carried a covering subscription in that direction.
        let subs = vec![vec![broad], vec![narrow], vec![]];
        let out = propagate_content(&topo, &schema, &subs, 4);
        assert_eq!(out.hops(), 2 + 1);
        assert_eq!(out.stored_subs, vec![1 + 1, 1 + 1, 1]);
    }

    #[test]
    fn deterministic_under_seed() {
        let topo = Topology::cable_wireless_24();
        let params = SienaParams {
            subsumption_max: 0.5,
            sub_size: 50,
        };
        let a = propagate_probabilistic(&topo, 10, params, &mut StdRng::seed_from_u64(9));
        let b = propagate_probabilistic(&topo, 10, params, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.hops(), b.hops());
        assert_eq!(a.stored_subs, b.stored_subs);
    }
}
