//! The subscription-broadcast baseline.
//!
//! The paper's weakest baseline simply has every broker send each of its
//! subscriptions to every other broker, costing
//! `(B − 1) × avg_hops × B × σ × sub_size` bytes per period (§5.2.1) —
//! i.e. `B` sources unicast `σ` subscriptions of `sub_size` bytes to each
//! of the `B − 1` destinations over shortest paths.

use subsum_net::{NetMetrics, NodeId, Topology};

/// The cost of one broadcast period.
#[derive(Debug, Clone)]
pub struct BroadcastCost {
    /// Traffic counters (one message per (source, subscription,
    /// destination), weighted by path length for link bytes).
    pub metrics: NetMetrics,
}

impl BroadcastCost {
    /// Total link bandwidth in bytes — the paper's Fig. 8 baseline curve.
    pub fn bytes(&self) -> u64 {
        self.metrics.link_bytes
    }

    /// Hop count (broker→broker messages).
    pub fn hops(&self) -> u64 {
        self.metrics.messages
    }
}

/// Simulates one broadcast period: every broker unicasts `sigma`
/// subscriptions of `sub_size` bytes to every other broker.
pub fn broadcast_cost(topology: &Topology, sigma: usize, sub_size: usize) -> BroadcastCost {
    let n = topology.len();
    let mut metrics = NetMetrics::new(n);
    for s in 0..n as NodeId {
        let dist = topology.distances(s);
        for t in 0..n as NodeId {
            if s == t {
                continue;
            }
            for _ in 0..sigma {
                metrics.record(s, t, sub_size, dist[t as usize]);
            }
        }
    }
    BroadcastCost { metrics }
}

/// The paper's closed-form estimate of the broadcast bandwidth:
/// `(B − 1) × avg_hops × B × σ × sub_size`.
pub fn broadcast_cost_analytic(topology: &Topology, sigma: usize, sub_size: usize) -> f64 {
    let b = topology.len() as f64;
    (b - 1.0) * topology.mean_pairwise_distance() * b * sigma as f64 * sub_size as f64
}

/// Storage of the broadcast baseline: every broker stores every
/// subscription of every broker (`B² × S × sub_size` bytes).
pub fn broadcast_storage_bytes(brokers: usize, outstanding: usize, sub_size: usize) -> u64 {
    (brokers as u64) * (brokers as u64) * outstanding as u64 * sub_size as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_net::Topology;

    #[test]
    fn simulated_matches_analytic() {
        for topo in [
            Topology::line(5),
            Topology::fig7_tree(),
            Topology::cable_wireless_24(),
        ] {
            let sim = broadcast_cost(&topo, 7, 50);
            let analytic = broadcast_cost_analytic(&topo, 7, 50);
            assert!(
                (sim.bytes() as f64 - analytic).abs() < 1e-6,
                "simulated {} vs analytic {analytic}",
                sim.bytes()
            );
        }
    }

    #[test]
    fn hops_are_all_pairs_messages() {
        let topo = Topology::ring(6);
        let sim = broadcast_cost(&topo, 3, 50);
        assert_eq!(sim.hops(), 6 * 5 * 3);
    }

    #[test]
    fn storage_formula() {
        assert_eq!(broadcast_storage_bytes(24, 1000, 50), 24 * 24 * 1000 * 50);
    }

    #[test]
    fn zero_sigma_costs_nothing() {
        let topo = Topology::line(3);
        let sim = broadcast_cost(&topo, 0, 50);
        assert_eq!(sim.bytes(), 0);
        assert_eq!(sim.hops(), 0);
    }
}
