//! Reconstructed baselines for the subscription-summarization evaluation:
//! a Siena-style subsumption router and a subscription-broadcast flooder.
//!
//! The paper (§2.2, §5.2) compares its summary-centric approach against
//! (a) the Siena notion of *subscription subsumption* — per-source
//! spanning-tree subscription flooding pruned where a covering
//! subscription has already traveled, with events following the reverse
//! paths — and (b) a baseline where every broker broadcasts every
//! subscription to all others. Siena's original implementation is not
//! available; this crate reconstructs the two mechanisms the paper
//! measures, in both the paper's *probabilistic* subsumption model
//! (pruning probability `p_B = p_max · degree(B)/max_degree`) and a real
//! *content-based* model built on `Subscription::covers`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod broadcast;
mod propagation;
mod routing;

pub use broadcast::{
    broadcast_cost, broadcast_cost_analytic, broadcast_storage_bytes, BroadcastCost,
};
pub use propagation::{
    broker_subsumption_probability, propagate_content, propagate_probabilistic, SienaParams,
    SienaPropagation,
};
pub use routing::{reverse_path_route, ReversePathRoute, SienaEventRouting};
