//! §5.2.4 — computational demands of event matching.
//!
//! The paper analyzes the matcher's cost as `T₁` (scanning the summary
//! structures per event attribute) plus `T₂ = Θ(P)` (checking the `P`
//! collected candidates), for a total of `O(N)` in the number of
//! subscriptions — the same asymptotic class as per-subscription
//! matching, but "we expect that event filtering and matching will be
//! faster in our paradigm, given the summaries and the generalized
//! attributes".
//!
//! This experiment measures wall-clock matching latency of the summary
//! matcher against a naive per-subscription scan for growing `N`, on two
//! event mixes:
//!
//! * **selective** events (hit rate 0.2): few constraints satisfied, so
//!   `P ≪ N` — the summary matcher touches only the short satisfied id
//!   lists while the naive scan still evaluates every subscription;
//! * **popular** events (hit rate 0.7): most subscriptions are
//!   candidates, `P = Θ(N)`, and both matchers are linear.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_core::{BrokerSummary, MatchScratch};
use subsum_types::{BrokerId, Event, LocalSubId, Subscription};
use subsum_workload::Workload;

use crate::common::ResultTable;
use crate::config::ExperimentConfig;

fn measure_us(events: &[Event], mut f: impl FnMut(&Event) -> usize) -> f64 {
    let mut total = 0usize;
    let start = Instant::now();
    for e in events {
        total += f(e);
    }
    let us = start.elapsed().as_secs_f64() * 1e6 / events.len() as f64;
    // Keep the result observable so the loop is not optimized away.
    std::hint::black_box(total);
    us
}

/// Runs the matching-cost experiment.
pub fn run(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "compute",
        "event matching cost vs subscription count (us per event)",
        &[
            "subscriptions",
            "summary_selective_us",
            "summary_popular_us",
            "naive_us",
            "speedup_selective",
            "speedup_popular",
        ],
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut workload = Workload::new(cfg.params, 0.7);
    let schema = workload.schema().clone();

    for &n in &cfg.sigma_sweep {
        let subs: Vec<Subscription> = workload.subscriptions(n, &mut rng);
        let mut summary = BrokerSummary::new(schema.clone());
        for (i, sub) in subs.iter().enumerate() {
            summary.insert(BrokerId(0), LocalSubId(i as u32), sub);
        }
        let selective: Vec<Event> = (0..200).map(|_| workload.event(0.2, &mut rng)).collect();
        let popular: Vec<Event> = (0..200).map(|_| workload.event(0.7, &mut rng)).collect();

        // The summary matcher runs through one reused scratch, as a
        // steady-state broker would (zero allocations per event).
        let mut scratch = MatchScratch::new();
        let summary_selective = measure_us(&selective, |e| {
            summary.match_event_into(e, &mut scratch).matched.len()
        });
        let summary_popular = measure_us(&popular, |e| {
            summary.match_event_into(e, &mut scratch).matched.len()
        });
        // The naive scan's cost is independent of selectivity: measure on
        // the popular mix (its best case for cache effects).
        let naive = measure_us(&popular, |e| subs.iter().filter(|s| s.matches(e)).count());

        table.push(vec![
            n as f64,
            summary_selective,
            summary_popular,
            naive,
            naive / summary_selective.max(1e-9),
            naive / summary_popular.max(1e-9),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports_positive_latencies() {
        let cfg = ExperimentConfig {
            sigma_sweep: vec![50, 200],
            ..ExperimentConfig::fast()
        };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert!(row[1] > 0.0 && row[2] > 0.0 && row[3] > 0.0);
        }
    }

    #[test]
    fn summary_matcher_scales_better_than_naive() {
        // On selective events the summary matcher must win decisively at
        // scale; on popular events it must remain at least comparable
        // (the paper's "same complexity, better constants").
        if cfg!(debug_assertions) {
            // Timing claims are meaningful for optimized builds only;
            // `cargo test --release` exercises this assertion.
            return;
        }
        let cfg = ExperimentConfig {
            sigma_sweep: vec![2000],
            ..ExperimentConfig::fast()
        };
        let t = run(&cfg);
        let selective_speedup = t.rows[0][4];
        let popular_speedup = t.rows[0][5];
        assert!(
            selective_speedup > 2.0,
            "expected a decisive selective-event speedup, got {selective_speedup}"
        );
        assert!(
            popular_speedup > 0.7,
            "popular-event matching should stay comparable, got {popular_speedup}"
        );
    }
}
