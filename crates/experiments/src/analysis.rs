//! Cross-checks of the paper's analytical models (§5.1) against the
//! implementation's measured quantities:
//!
//! * equations (1) + (2) — the analytic summary size — against the bytes
//!   the wire codec actually produces;
//! * the broadcast bandwidth formula against the simulated flooding cost.

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_core::{SizeParams, SummaryStats};
use subsum_siena::{broadcast_cost, broadcast_cost_analytic};

use crate::common::ResultTable;
use crate::config::ExperimentConfig;
use crate::fig8::build_own_summaries;

/// Runs the model-vs-measurement analysis.
pub fn run(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "analysis",
        "analytic models vs measured implementation",
        &[
            "subsumption_pct",
            "eq12_bytes",
            "wire_bytes",
            "wire_overhead_pct",
            "broadcast_formula",
            "broadcast_simulated",
        ],
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let size_params = SizeParams::default();
    let sigma = 200;

    for &p in &cfg.subsumption_sweep {
        let (own, codec) = build_own_summaries(cfg, p, sigma, &mut rng);
        let analytic: usize = own
            .iter()
            .map(|s| SummaryStats::of(s).total_size(size_params))
            .sum();
        let measured: usize = own
            .iter()
            .map(|s| codec.encoded_len(s).expect("ids fit"))
            .sum();
        let overhead = 100.0 * (measured as f64 - analytic as f64) / analytic as f64;

        let formula = broadcast_cost_analytic(&cfg.topology, sigma, cfg.params.sub_size);
        let simulated = broadcast_cost(&cfg.topology, sigma, cfg.params.sub_size).bytes() as f64;

        table.push(vec![
            p * 100.0,
            analytic as f64,
            measured as f64,
            overhead,
            formula,
            simulated,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_overhead_is_bounded() {
        let t = run(&ExperimentConfig::fast());
        for row in &t.rows {
            let overhead = row[3];
            assert!(
                overhead > -1.0 && overhead < 120.0,
                "wire overhead {overhead}% out of expected band"
            );
        }
    }

    #[test]
    fn broadcast_formula_matches_simulation() {
        let t = run(&ExperimentConfig::fast());
        for row in &t.rows {
            assert!((row[4] - row[5]).abs() < 1e-6);
        }
    }

    #[test]
    fn analytic_size_shrinks_with_subsumption() {
        let cfg = ExperimentConfig {
            subsumption_sweep: vec![0.10, 0.90],
            ..ExperimentConfig::fast()
        };
        let t = run(&cfg);
        let sizes = t.column_values("eq12_bytes");
        assert!(sizes[1] < sizes[0]);
    }
}
