//! Trace-driven latency attribution — beyond the paper.
//!
//! Replays two instrumented scenarios with the causal tracer attached
//! and distills the recorded [`SpanRecord`]s into a [`TraceAnalysis`]:
//!
//! * **fig8 backbone publishes** — the deterministic engine routes a
//!   seeded event stream over the configured overlay (the same backbone
//!   model as Fig. 8) with every trace sampled;
//! * **chaos recovery** — the PR 5 crash/recovery scenario (drops,
//!   duplicates, one hub crash) with anti-entropy repair, tracing every
//!   control message.
//!
//! The analysis answers the questions the aggregate counters cannot:
//! where a hop's latency went (per-[`SpanKind`] breakdown), how much
//! fan-out one published event caused (spans per trace), and how long
//! the causal critical path is (deepest parent chain).
//!
//! [`run_overhead`] measures the tracing tax directly: the same publish
//! loop with tracing disabled, sampled 1-in-64, and always-on. The
//! acceptance bar (<5 % at 1-in-64) is enforced statistically by the
//! `trace_overhead` bench; the table here reports the measured ratios
//! for the repro report.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use subsum_broker::{ChaosConfig, ChaosRun, SummaryPubSub};
use subsum_net::NodeId;
use subsum_telemetry::trace::{SpanKind, SpanRecord, Tracer};
use subsum_workload::Workload;

use crate::common::ResultTable;
use crate::config::ExperimentConfig;
use crate::recovery::scenario_plan;

/// Flight-recorder capacity per broker for the analysis runs: large
/// enough that neither scenario head-drops.
const RECORDER_CAPACITY: usize = 1 << 16;

/// Subscriptions per broker for the publish scenario.
const SUBS_PER_BROKER: usize = 4;

/// Latency statistics for one [`SpanKind`]: hop latency is the
/// sim-clock delta between a span and its recorded parent.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HopStat {
    /// Spans of this kind.
    pub count: u64,
    /// Hops of this kind whose parent span was also recorded.
    pub with_parent: u64,
    /// Sum of `at - parent.at` over those hops.
    pub total_latency: u64,
    /// Largest single-hop latency.
    pub max_latency: u64,
}

impl HopStat {
    /// Mean hop latency in sim ticks (0 when no parented hop exists).
    pub fn mean_latency(&self) -> f64 {
        if self.with_parent == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.with_parent as f64
        }
    }
}

/// The distilled view of one scenario's recorded spans.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Total spans analyzed.
    pub spans: u64,
    /// Distinct traces observed.
    pub traces: u64,
    /// Per-kind hop-latency breakdown, indexed by `SpanKind as usize`.
    pub per_kind: [HopStat; 9],
    /// Mean spans per trace (fan-out amplification of one event).
    pub fanout_mean: f64,
    /// Largest spans-per-trace fan-out.
    pub fanout_max: u64,
    /// Mean critical-path length (deepest parent chain, in spans).
    pub critical_path_mean: f64,
    /// Longest critical path across all traces.
    pub critical_path_max: u64,
    /// Mean trace makespan (last span tick − first span tick).
    pub makespan_mean: f64,
    /// Largest trace makespan.
    pub makespan_max: u64,
}

/// All nine span kinds in discriminant order.
pub const KINDS: [SpanKind; 9] = [
    SpanKind::Enqueue,
    SpanKind::Dequeue,
    SpanKind::Route,
    SpanKind::Match,
    SpanKind::OwnerVerify,
    SpanKind::Deliver,
    SpanKind::Drop,
    SpanKind::Dup,
    SpanKind::CrashDrop,
];

impl TraceAnalysis {
    /// Distills raw span records into the latency-attribution view.
    pub fn from_spans(spans: &[SpanRecord]) -> TraceAnalysis {
        // Span ids are unique per tracer, so one flat index suffices.
        let by_id: HashMap<u32, &SpanRecord> = spans.iter().map(|s| (s.span, s)).collect();

        let mut per_kind = [HopStat::default(); 9];
        for s in spans {
            let stat = &mut per_kind[s.kind as usize];
            stat.count += 1;
            if let Some(parent) = by_id.get(&s.parent) {
                let lat = s.at.saturating_sub(parent.at);
                stat.with_parent += 1;
                stat.total_latency += lat;
                stat.max_latency = stat.max_latency.max(lat);
            }
        }

        // Depth of the parent chain ending at each span, memoized; the
        // critical path of a trace is its deepest chain.
        let mut depth: HashMap<u32, u64> = HashMap::with_capacity(spans.len());
        for s in spans {
            let mut chain = Vec::new();
            let mut cur = s.span;
            let mut base = 0u64;
            loop {
                if let Some(&d) = depth.get(&cur) {
                    base = d;
                    break;
                }
                chain.push(cur);
                match by_id.get(&cur).and_then(|r| by_id.get(&r.parent)) {
                    Some(parent) => cur = parent.span,
                    None => break,
                }
            }
            for (i, id) in chain.iter().rev().enumerate() {
                depth.insert(*id, base + i as u64 + 1);
            }
        }

        #[derive(Default)]
        struct PerTrace {
            spans: u64,
            deepest: u64,
            first: u64,
            last: u64,
        }
        let mut traces: HashMap<u64, PerTrace> = HashMap::new();
        for s in spans {
            let t = traces.entry(s.trace.0).or_insert(PerTrace {
                spans: 0,
                deepest: 0,
                first: u64::MAX,
                last: 0,
            });
            t.spans += 1;
            t.deepest = t.deepest.max(depth.get(&s.span).copied().unwrap_or(1));
            t.first = t.first.min(s.at);
            t.last = t.last.max(s.at);
        }

        let n = traces.len().max(1) as f64;
        let fanout_max = traces.values().map(|t| t.spans).max().unwrap_or(0);
        let critical_path_max = traces.values().map(|t| t.deepest).max().unwrap_or(0);
        let makespan = |t: &PerTrace| t.last.saturating_sub(t.first);
        let makespan_max = traces.values().map(makespan).max().unwrap_or(0);
        TraceAnalysis {
            spans: spans.len() as u64,
            traces: traces.len() as u64,
            per_kind,
            fanout_mean: traces.values().map(|t| t.spans).sum::<u64>() as f64 / n,
            fanout_max,
            critical_path_mean: traces.values().map(|t| t.deepest).sum::<u64>() as f64 / n,
            critical_path_max,
            makespan_mean: traces.values().map(makespan).sum::<u64>() as f64 / n,
            makespan_max,
        }
    }

    /// The [`HopStat`] of one kind.
    pub fn kind(&self, kind: SpanKind) -> &HopStat {
        &self.per_kind[kind as usize]
    }
}

/// Builds the traced publish scenario and returns its tracer after the
/// event stream has been routed.
fn backbone_tracer(cfg: &ExperimentConfig, sample_one_in: u64) -> (Arc<Tracer>, usize) {
    let mut workload = Workload::new(cfg.params, 0.5);
    let schema = workload.schema().clone();
    let mut sys =
        SummaryPubSub::new(cfg.topology.clone(), schema, 1000).expect("schema fits the id layout");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7AACE5);
    for b in 0..cfg.topology.len() as u16 {
        for _ in 0..SUBS_PER_BROKER {
            let sub = workload.subscription(&mut rng);
            sys.subscribe(b, &sub).expect("id layout fits");
        }
    }
    sys.propagate().expect("propagation is schema-consistent");
    let tracer = Arc::new(Tracer::new(
        cfg.topology.len(),
        RECORDER_CAPACITY,
        cfg.seed,
        sample_one_in,
    ));
    sys.set_tracer(Arc::clone(&tracer));
    let events = cfg.events_per_broker.max(4) * 2;
    let mut deliveries = 0usize;
    for _ in 0..events {
        let publisher = rng.gen_range(0..cfg.topology.len() as u16) as NodeId;
        let event = workload.event(0.7, &mut rng);
        deliveries += sys.publish(publisher, &event).deliveries.len();
    }
    (tracer, deliveries)
}

/// Runs the PR 5 chaos recovery scenario with tracing always on and
/// returns the tracer.
fn chaos_tracer(cfg: &ExperimentConfig) -> Arc<Tracer> {
    let mut workload = Workload::new(cfg.params, 0.5);
    let schema = workload.schema().clone();
    let mut run = ChaosRun::new(
        cfg.topology.clone(),
        schema,
        scenario_plan(cfg),
        ChaosConfig::default(),
    )
    .expect("schema fits the id layout");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC4A05);
    for b in 0..cfg.topology.len() as u16 {
        for _ in 0..SUBS_PER_BROKER {
            let sub = workload.subscription(&mut rng);
            run.subscribe(b, &sub);
        }
    }
    run.checkpoint_all();
    let tracer = Arc::new(Tracer::new(
        cfg.topology.len(),
        RECORDER_CAPACITY,
        cfg.seed,
        1,
    ));
    run.set_tracer(Arc::clone(&tracer));
    run.run().expect("chaos run is schema-consistent");
    tracer
}

fn push_analysis(table: &mut ResultTable, scenario: f64, tracer: &Tracer) {
    let spans = tracer.spans();
    let a = TraceAnalysis::from_spans(&spans);
    let route = a.kind(SpanKind::Route);
    let deq = a.kind(SpanKind::Dequeue);
    table.push(vec![
        scenario,
        a.traces as f64,
        a.spans as f64,
        route.count as f64,
        a.kind(SpanKind::Deliver).count as f64,
        a.kind(SpanKind::Drop).count as f64 + a.kind(SpanKind::CrashDrop).count as f64,
        route.mean_latency(),
        deq.mean_latency(),
        a.fanout_mean,
        a.fanout_max as f64,
        a.critical_path_mean,
        a.critical_path_max as f64,
        a.makespan_max as f64,
        tracer.head_drops() as f64,
    ]);
}

/// Runs the trace-attribution experiment: one row per scenario
/// (0 = backbone publishes, 1 = chaos recovery).
pub fn run(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "traces",
        "Causal-trace latency attribution: per-hop breakdown, fan-out \
         amplification and critical paths (scenario 0 = backbone publishes, \
         1 = chaos recovery)",
        &[
            "scenario",
            "traces",
            "spans",
            "route_spans",
            "deliver_spans",
            "drop_spans",
            "route_hop_mean",
            "dequeue_hop_mean",
            "fanout_mean",
            "fanout_max",
            "critical_path_mean",
            "critical_path_max",
            "makespan_max",
            "head_drops",
        ],
    );
    let (publish_tracer, _) = backbone_tracer(cfg, 1);
    push_analysis(&mut table, 0.0, &publish_tracer);
    let chaos = chaos_tracer(cfg);
    push_analysis(&mut table, 1.0, &chaos);
    table
}

/// Measures the tracing tax on the publish path: the same seeded event
/// stream with tracing disabled, sampled 1-in-64, and always-on. One
/// row per mode (`sample_one_in` 0 = no tracer attached).
pub fn run_overhead(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "trace_overhead",
        "Publish throughput with tracing disabled / sampled 1-in-64 / \
         always-on (overhead_pct is relative to the disabled run)",
        &[
            "sample_one_in",
            "events",
            "elapsed_ns",
            "events_per_sec",
            "overhead_pct",
            "spans",
        ],
    );
    let mut baseline_ns = 0.0f64;
    for &mode in &[0u64, 64, 1] {
        let mut workload = Workload::new(cfg.params, 0.5);
        let schema = workload.schema().clone();
        let mut sys = SummaryPubSub::new(cfg.topology.clone(), schema, 1000)
            .expect("schema fits the id layout");
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7AACE5);
        for b in 0..cfg.topology.len() as u16 {
            for _ in 0..SUBS_PER_BROKER {
                let sub = workload.subscription(&mut rng);
                sys.subscribe(b, &sub).expect("id layout fits");
            }
        }
        sys.propagate().expect("propagation is schema-consistent");
        let tracer = (mode > 0).then(|| {
            Arc::new(Tracer::new(
                cfg.topology.len(),
                RECORDER_CAPACITY,
                cfg.seed,
                mode,
            ))
        });
        if let Some(t) = &tracer {
            sys.set_tracer(Arc::clone(t));
        }
        let events: Vec<_> = (0..cfg.events_per_broker.max(4) * 2)
            .map(|_| {
                (
                    rng.gen_range(0..cfg.topology.len() as u16) as NodeId,
                    workload.event(0.7, &mut rng),
                )
            })
            .collect();
        let start = std::time::Instant::now();
        let mut sink = 0usize;
        for (publisher, event) in &events {
            sink += sys.publish(*publisher, event).deliveries.len();
        }
        let elapsed = start.elapsed().as_nanos().max(1) as f64;
        std::hint::black_box(sink);
        if mode == 0 {
            baseline_ns = elapsed;
        }
        let overhead = if baseline_ns > 0.0 {
            (elapsed / baseline_ns - 1.0) * 100.0
        } else {
            0.0
        };
        table.push(vec![
            mode as f64,
            events.len() as f64,
            elapsed,
            events.len() as f64 / (elapsed / 1e9),
            overhead,
            tracer.map_or(0.0, |t| t.spans().len() as f64),
        ]);
    }
    table
}

/// Exports the backbone publish scenario as Chrome `trace_event` JSON
/// (Perfetto-loadable) for `repro --trace-json`.
pub fn export_chrome(cfg: &ExperimentConfig) -> String {
    backbone_tracer(cfg, 1).0.chrome_trace_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_telemetry::trace::{TraceCtx, TraceId};

    fn rec(trace: u64, span: u32, parent: u32, kind: SpanKind, at: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            span,
            parent,
            broker: 0,
            kind,
            at,
        }
    }

    #[test]
    fn analysis_attributes_latency_fanout_and_critical_path() {
        // Trace 1: root route at t0 → match at t0 → two deliveries at t3.
        // Trace 2: a single route span.
        let spans = vec![
            rec(1, 1, 0, SpanKind::Route, 0),
            rec(1, 2, 1, SpanKind::Match, 0),
            rec(1, 3, 2, SpanKind::Deliver, 3),
            rec(1, 4, 2, SpanKind::Deliver, 5),
            rec(2, 5, 0, SpanKind::Route, 10),
        ];
        let a = TraceAnalysis::from_spans(&spans);
        assert_eq!(a.spans, 5);
        assert_eq!(a.traces, 2);
        assert_eq!(a.kind(SpanKind::Route).count, 2);
        assert_eq!(a.kind(SpanKind::Deliver).count, 2);
        assert_eq!(a.kind(SpanKind::Deliver).with_parent, 2);
        assert_eq!(a.kind(SpanKind::Deliver).total_latency, 3 + 5);
        assert_eq!(a.kind(SpanKind::Deliver).max_latency, 5);
        assert_eq!(a.kind(SpanKind::Deliver).mean_latency(), 4.0);
        // Roots have no recorded parent.
        assert_eq!(a.kind(SpanKind::Route).with_parent, 0);
        assert_eq!(a.fanout_max, 4);
        assert_eq!(a.fanout_mean, 2.5);
        assert_eq!(a.critical_path_max, 3); // route → match → deliver
        assert_eq!(a.makespan_max, 5);
    }

    #[test]
    fn analysis_of_empty_input_is_zeroed() {
        let a = TraceAnalysis::from_spans(&[]);
        assert_eq!(a.spans, 0);
        assert_eq!(a.traces, 0);
        assert_eq!(a.fanout_mean, 0.0);
        assert_eq!(a.critical_path_max, 0);
    }

    #[test]
    fn backbone_scenario_produces_causally_complete_traces() {
        let cfg = ExperimentConfig::fast();
        let (tracer, deliveries) = backbone_tracer(&cfg, 1);
        let spans = tracer.spans();
        let a = TraceAnalysis::from_spans(&spans);
        assert!(a.traces > 0, "publishes must open traces");
        // Every published event visits at least one broker.
        assert!(a.kind(SpanKind::Route).count >= a.traces);
        assert_eq!(a.kind(SpanKind::Route).count, a.kind(SpanKind::Match).count);
        assert_eq!(a.kind(SpanKind::Deliver).count as usize, deliveries);
        // Match spans chain under route spans: latency attribution has
        // parents for every non-root span kind on the publish path.
        assert_eq!(
            a.kind(SpanKind::Match).with_parent,
            a.kind(SpanKind::Match).count
        );
        assert!(a.critical_path_max >= 2, "route → match at minimum");
        assert_eq!(tracer.head_drops(), 0, "capacity must absorb the run");
    }

    #[test]
    fn tables_have_expected_shape_and_are_deterministic_where_promised() {
        let cfg = ExperimentConfig::fast();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.name, "traces");
        let spans = t.column_values("spans");
        assert!(spans[0] > 0.0 && spans[1] > 0.0);
        // The analysis is a pure function of the seeded runs.
        assert_eq!(run(&cfg).rows, t.rows);
    }

    #[test]
    fn overhead_table_reports_all_three_modes() {
        let cfg = ExperimentConfig {
            events_per_broker: 4,
            ..ExperimentConfig::fast()
        };
        let t = run_overhead(&cfg);
        assert_eq!(t.name, "trace_overhead");
        assert_eq!(t.column_values("sample_one_in"), vec![0.0, 64.0, 1.0]);
        let spans = t.column_values("spans");
        assert_eq!(spans[0], 0.0, "no tracer attached in the disabled run");
        assert!(
            spans[2] >= spans[1],
            "always-on records at least as much as 1-in-64"
        );
    }

    #[test]
    fn unused_ctx_type_is_reexported_for_callers() {
        // Smoke-check the public trace surface the experiments depend on.
        let ctx = TraceCtx::NONE;
        assert!(!ctx.trace.is_traced());
    }
}
