//! Experiment engine regenerating every table and figure of the ICDCS
//! 2004 subscription-summarization evaluation (§5).
//!
//! Each module reproduces one figure and returns a [`ResultTable`] whose
//! rows mirror the paper's plotted series:
//!
//! | module | paper | metric |
//! |--------|-------|--------|
//! | [`fig8`] | Fig. 8 | bandwidth for subscription propagation vs σ |
//! | [`fig9`] | Fig. 9 | mean hops for subscription propagation vs subsumption |
//! | [`fig10`] | Fig. 10 | mean hops for event processing vs popularity |
//! | [`fig11`] | Fig. 11 | total subscription storage vs S |
//! | [`compute`] | §5.2.4 | matching latency vs subscription count |
//! | [`analysis`] | Eq. (1)/(2) | analytic sizes vs measured wire bytes |
//! | [`ablations`] | §6 / §5.2 | virtual degrees; subsumption models; the §6 filter |
//! | [`latency`] | beyond the paper | delivery latency: sequential BROCLI vs parallel flood |
//! | [`telemetry_probe`] | beyond the paper | deterministic stage-coverage run for `repro --telemetry-json` |
//! | [`recovery`] | beyond the paper | crash/recovery convergence; anti-entropy vs naive repair traffic |
//! | [`traces`] | beyond the paper | causal-trace latency attribution; tracing overhead |
//!
//! All experiments are deterministic under [`ExperimentConfig::seed`].
//!
//! # Example
//!
//! ```
//! use subsum_experiments::{fig9, ExperimentConfig};
//! let table = fig9::run(&ExperimentConfig::fast());
//! println!("{table}");
//! assert_eq!(table.columns[0], "subsumption_pct");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod ablations;
pub mod analysis;
mod common;
pub mod compute;
mod config;
pub mod fig10;
pub mod fig11;
pub mod fig8;
pub mod fig9;
pub mod latency;
pub mod recovery;
pub mod scaling;
pub mod telemetry_probe;
pub mod traces;

pub use common::{mean, stddev, ResultTable};
pub use config::ExperimentConfig;

/// Runs every experiment, returning the regenerated tables in paper
/// order.
pub fn run_all(cfg: &ExperimentConfig) -> Vec<ResultTable> {
    vec![
        fig8::run(cfg),
        fig9::run(cfg),
        fig10::run(cfg),
        fig11::run(cfg),
        compute::run(cfg),
        analysis::run(cfg),
        ablations::run_virtual_degrees(cfg),
        ablations::run_subsumption_models(cfg),
        ablations::run_subsumption_filter(cfg),
        latency::run(cfg),
        scaling::run(cfg),
        recovery::run(cfg),
        traces::run(cfg),
        traces::run_overhead(cfg),
    ]
}
