//! Delivery-latency experiment (beyond the paper's hop counts).
//!
//! The paper evaluates event processing by hop count (§5.2.2). Hops tell
//! only half the story: Algorithm 3 examines brokers **sequentially** —
//! the event visits summary hubs one after another — while Siena's
//! reverse-path multicast fans out in **parallel**. With every overlay
//! link costing one time unit, this experiment measures when each matched
//! broker actually receives the event:
//!
//! * **Summary**: the event reaches visit *k* after the cumulative length
//!   of the forwarding chain's first *k* legs; a notification sent from
//!   that visit reaches its owner after the owner's distance on top.
//! * **Siena (idealized)**: every matched broker receives the event after
//!   its shortest-path distance from the publisher (parallel flood).
//!
//! The trade-off quantified here: the summary approach saves hops
//! (bandwidth, broker involvement) but pays serialization latency for
//! late-visited matches, growing with popularity.

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_broker::{propagate, route_event, RoutingOptions};
use subsum_core::{ArithWidth, BrokerSummary, SummaryCodec};
use subsum_net::NodeId;
use subsum_types::{BrokerId, IdLayout, LocalSubId};
use subsum_workload::popularity::{
    event_for, interest_schema, interest_subscription, random_matched_set,
};

use crate::common::{mean, ResultTable};
use crate::config::ExperimentConfig;

/// Runs the delivery-latency experiment.
pub fn run(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "latency",
        "delivery latency (link time units) vs event popularity",
        &[
            "popularity_pct",
            "summary_mean",
            "summary_max",
            "siena_mean",
            "siena_max",
        ],
    );
    let n = cfg.topology.len();
    let schema = interest_schema();
    let layout = IdLayout::new(n as u64, 16, schema.len() as u32).expect("tiny schema");
    let codec = SummaryCodec::new(layout, ArithWidth::Four);
    let own: Vec<BrokerSummary> = (0..n)
        .map(|b| {
            let mut s = BrokerSummary::new(schema.clone());
            s.insert(
                BrokerId(b as u16),
                LocalSubId(0),
                &interest_subscription(&schema, b as NodeId),
            );
            s
        })
        .collect();
    let stored = propagate(&cfg.topology, &own, &codec)
        .expect("ids fit")
        .stored;
    let apsp = cfg.topology.all_pairs_distances();
    let options = RoutingOptions::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    for &popularity in &cfg.popularity_sweep {
        let mut summary_lat = Vec::new();
        let mut summary_max = Vec::new();
        let mut siena_lat = Vec::new();
        let mut siena_max = Vec::new();
        for publisher in 0..n as NodeId {
            for _ in 0..cfg.events_per_broker {
                let matched = random_matched_set(n, popularity, &mut rng);
                let event = event_for(&schema, &matched);
                let out = route_event(
                    &cfg.topology,
                    &stored,
                    publisher,
                    &event,
                    cfg.params.sub_size,
                    &options,
                );
                // Arrival time of the event at each visited broker.
                let mut arrival = vec![0u32; out.visits.len()];
                for k in 1..out.visits.len() {
                    let (a, b) = (out.visits[k - 1], out.visits[k]);
                    arrival[k] = arrival[k - 1] + apsp[a as usize][b as usize];
                }
                let visit_time = |broker: NodeId| {
                    out.visits
                        .iter()
                        .position(|&v| v == broker)
                        .map(|k| arrival[k])
                };
                let mut per_event = Vec::with_capacity(out.notifications.len());
                for note in &out.notifications {
                    let t = visit_time(note.found_at).expect("found_at was visited")
                        + apsp[note.found_at as usize][note.owner as usize];
                    per_event.push(t as f64);
                }
                if !per_event.is_empty() {
                    summary_lat.push(mean(&per_event));
                    summary_max.push(per_event.iter().cloned().fold(0.0, f64::max));
                }
                // Siena: parallel flood along reverse paths.
                let siena: Vec<f64> = matched
                    .iter()
                    .map(|&m| apsp[publisher as usize][m as usize] as f64)
                    .collect();
                if !siena.is_empty() {
                    siena_lat.push(mean(&siena));
                    siena_max.push(siena.iter().cloned().fold(0.0, f64::max));
                }
            }
        }
        table.push(vec![
            popularity * 100.0,
            mean(&summary_lat),
            mean(&summary_max),
            mean(&siena_lat),
            mean(&siena_max),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tail_latency_grows_with_popularity() {
        // More matches reach deeper into the sequential visit chain: the
        // worst-case (tail) delivery latency rises with popularity.
        let cfg = ExperimentConfig {
            events_per_broker: 10,
            popularity_sweep: vec![0.10, 0.90],
            ..ExperimentConfig::default()
        };
        let t = run(&cfg);
        let max_lat = t.column_values("summary_max");
        assert!(
            max_lat[1] > max_lat[0],
            "tail latency should grow: {max_lat:?}"
        );
    }

    #[test]
    fn siena_parallel_flood_is_faster_at_high_popularity() {
        // The serialization cost of the BROCLI chain: at high popularity
        // Siena's parallel flood must deliver (on average) sooner.
        let cfg = ExperimentConfig {
            events_per_broker: 10,
            popularity_sweep: vec![0.90],
            ..ExperimentConfig::default()
        };
        let t = run(&cfg);
        let row = &t.rows[0];
        assert!(
            row[3] < row[1],
            "siena mean {} should beat summary mean {} at 90%",
            row[3],
            row[1]
        );
    }

    #[test]
    fn latencies_nonnegative_and_bounded() {
        let cfg = ExperimentConfig {
            events_per_broker: 5,
            popularity_sweep: vec![0.25],
            ..ExperimentConfig::default()
        };
        let t = run(&cfg);
        let row = &t.rows[0];
        for &v in &row[1..] {
            assert!(v >= 0.0);
            // Any latency is bounded by diameter × visits.
            assert!(v < (cfg.topology.diameter() as f64) * 24.0);
        }
        // Max ≥ mean.
        assert!(row[2] >= row[1]);
        assert!(row[4] >= row[3]);
    }
}
