//! Fig. 10 — mean hop counts for distributed event processing.
//!
//! For varying event popularity (the fraction of brokers whose
//! subscriptions an event matches, chosen randomly per event), the
//! experiment publishes events from every broker and counts hops:
//!
//! * **Summary** — Algorithm 3: forwards between examining brokers plus
//!   notifications to matched owners;
//! * **Siena** — reverse-path multicast: the union of the overlay paths
//!   from the publisher to every matched broker.
//!
//! The paper finds the summary approach better for popularities up to
//! ~75%, with Siena winning only for extremely popular events.

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_broker::{propagate, route_event, RoutingOptions};
use subsum_core::{ArithWidth, BrokerSummary, SummaryCodec};
use subsum_net::NodeId;
use subsum_siena::{reverse_path_route, SienaEventRouting};
use subsum_types::{BrokerId, IdLayout, LocalSubId};
use subsum_workload::popularity::{
    event_for, interest_schema, interest_subscription, random_matched_set,
};

use crate::common::{mean, ResultTable};
use crate::config::ExperimentConfig;

/// Runs the Fig. 10 experiment.
pub fn run(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "fig10",
        "mean hops for event processing vs event popularity",
        &["popularity_pct", "summary", "siena", "siena_ideal"],
    );
    let n = cfg.topology.len();
    let schema = interest_schema();
    let layout = IdLayout::new(n as u64, 16, schema.len() as u32).expect("tiny schema fits");
    let codec = SummaryCodec::new(layout, ArithWidth::Four);

    // Every broker registers its interest marker subscription once.
    let own: Vec<BrokerSummary> = (0..n)
        .map(|b| {
            let mut s = BrokerSummary::new(schema.clone());
            s.insert(
                BrokerId(b as u16),
                LocalSubId(0),
                &interest_subscription(&schema, b as NodeId),
            );
            s
        })
        .collect();
    let stored = propagate(&cfg.topology, &own, &codec)
        .expect("ids fit the layout")
        .stored;
    let options = RoutingOptions::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Siena's routing state after a propagation period at 50% stated
    // subsumption (the middle of the paper's sweep).
    let siena_state = SienaEventRouting::build(&cfg.topology, 0.5, &mut rng);

    for &popularity in &cfg.popularity_sweep {
        let mut summary_hops = Vec::new();
        let mut siena_hops = Vec::new();
        let mut siena_ideal_hops = Vec::new();
        for publisher in 0..n as NodeId {
            for _ in 0..cfg.events_per_broker {
                let matched = random_matched_set(n, popularity, &mut rng);
                let event = event_for(&schema, &matched);
                let out = route_event(
                    &cfg.topology,
                    &stored,
                    publisher,
                    &event,
                    cfg.params.sub_size,
                    &options,
                );
                debug_assert_eq!(
                    out.notifications.len(),
                    matched.len(),
                    "routing must find exactly the matched brokers"
                );
                summary_hops.push(out.total_hops() as f64);
                siena_hops.push(siena_state.route(publisher, &matched).hops() as f64);
                siena_ideal_hops
                    .push(reverse_path_route(&cfg.topology, publisher, &matched).hops() as f64);
            }
        }
        table.push(vec![
            popularity * 100.0,
            mean(&summary_hops),
            mean(&siena_hops),
            mean(&siena_ideal_hops),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_grow_with_popularity() {
        let cfg = ExperimentConfig {
            events_per_broker: 5,
            popularity_sweep: vec![0.10, 0.90],
            ..ExperimentConfig::default()
        };
        let t = run(&cfg);
        let summary = t.column_values("summary");
        let siena = t.column_values("siena");
        assert!(summary[1] > summary[0]);
        assert!(siena[1] > siena[0]);
    }

    #[test]
    fn summary_wins_at_mid_popularity() {
        // The paper's headline: the summary approach wins through the
        // mid-popularity range (its Fig. 10 shows wins up to ~75%).
        let cfg = ExperimentConfig {
            events_per_broker: 10,
            popularity_sweep: vec![0.25, 0.50, 0.75],
            ..ExperimentConfig::default()
        };
        let t = run(&cfg);
        for row in &t.rows {
            assert!(
                row[1] < row[2],
                "summary {} should beat siena {} at {}% popularity",
                row[1],
                row[2],
                row[0]
            );
        }
    }

    #[test]
    fn low_popularity_within_fixed_cost_band() {
        // At 10% popularity the summary approach pays a fixed BROCLI
        // completion cost; it must stay within a small factor of Siena.
        let cfg = ExperimentConfig {
            events_per_broker: 10,
            popularity_sweep: vec![0.10],
            ..ExperimentConfig::default()
        };
        let t = run(&cfg);
        let row = &t.rows[0];
        assert!(
            row[1] < row[2] * 1.5,
            "summary {} should stay near siena {} at 10%",
            row[1],
            row[2]
        );
    }

    #[test]
    fn siena_competitive_at_extreme_popularity() {
        // The paper's crossover: at very high popularity Siena's
        // saturated multicast tree is no worse than visiting brokers and
        // notifying owners individually.
        let cfg = ExperimentConfig {
            events_per_broker: 10,
            popularity_sweep: vec![0.90],
            ..ExperimentConfig::default()
        };
        let t = run(&cfg);
        let row = &t.rows[0];
        let siena_ideal = row[3];
        assert!(
            siena_ideal <= row[1] * 1.25,
            "ideal siena {} should be at least competitive with summary {} at 90%",
            siena_ideal,
            row[1]
        );
    }
}
