//! A deterministic end-to-end run that exercises every instrumented
//! pipeline stage, for `repro --telemetry-json`.
//!
//! The figure experiments drive individual algorithms; depending on the
//! figure chosen, some stages (e.g. the threaded runtime's message
//! handler) never execute. The probe guarantees a populated [`RunReport`]
//! regardless of the figure selection by running one small pass through:
//!
//! * [`SummaryPubSub`]: subscribe → propagate → publish, which times
//!   `broker.subscribe`, `broker.propagate`, `propagate.round`,
//!   `publish.route`, `publish.candidate_match`, `publish.owner_verify`
//!   and the `core.summary.*` stages, and bumps the `publish.*` counters;
//! * [`BrokerNetwork`]: a tiny threaded deployment, which times
//!   `runtime.handle_msg` and sets the `runtime.mailbox.*` depth gauges;
//! * the Siena baseline: `siena.propagate` and `siena.route`, so summary
//!   and baseline timings land in the same report.
//!
//! The probe records nothing unless the caller has switched the global
//! recorder on with [`subsum_telemetry::set_enabled`]; its event counts
//! and network metrics are returned either way.

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_broker::runtime::BrokerNetwork;
use subsum_broker::SummaryPubSub;
use subsum_net::{NetMetrics, NodeId, Topology};
use subsum_siena::{propagate_probabilistic, reverse_path_route, SienaParams};
use subsum_telemetry::Json;
use subsum_workload::Workload;

use crate::config::ExperimentConfig;

/// Subscriptions registered per broker by the probe.
const SUBS_PER_BROKER: usize = 4;
/// Events published per broker by the probe.
const EVENTS_PER_BROKER: usize = 2;

/// What the probe did, with the aggregated network cost of every phase.
#[derive(Debug, Clone)]
pub struct ProbeOutcome {
    /// Summed traffic of propagation, event routing and the Siena
    /// baseline period (per-broker vectors grown to the largest
    /// population touched).
    pub net_metrics: NetMetrics,
    /// Subscriptions registered.
    pub subscriptions: usize,
    /// Events published.
    pub events: usize,
    /// Verified deliveries across all events.
    pub deliveries: usize,
    /// Mean per-event false-positive rate (rejected candidates over all
    /// candidates).
    pub mean_false_positive_rate: f64,
}

impl ProbeOutcome {
    /// The probe's summary as an embeddable JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("subscriptions", Json::UInt(self.subscriptions as u64)),
            ("events", Json::UInt(self.events as u64)),
            ("deliveries", Json::UInt(self.deliveries as u64)),
            (
                "mean_false_positive_rate",
                Json::Num(self.mean_false_positive_rate),
            ),
        ])
    }
}

/// Renders network-cost counters as an embeddable JSON object.
pub fn net_metrics_to_json(m: &NetMetrics) -> Json {
    let per_broker = |v: &[u64]| Json::Arr(v.iter().map(|&x| Json::UInt(x)).collect());
    Json::obj([
        ("messages", Json::UInt(m.messages)),
        ("link_bytes", Json::UInt(m.link_bytes)),
        ("payload_bytes", Json::UInt(m.payload_bytes)),
        ("max_broker_load", Json::UInt(m.max_broker_load())),
        ("mean_broker_load", Json::Num(m.mean_broker_load())),
        ("sent_per_broker", per_broker(&m.sent_per_broker)),
        ("received_per_broker", per_broker(&m.received_per_broker)),
        ("bytes_per_broker", per_broker(&m.bytes_per_broker)),
    ])
}

/// Runs the probe; deterministic under `cfg.seed`.
pub fn run(cfg: &ExperimentConfig) -> ProbeOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7E1E_4E7B);
    let mut workload = Workload::new(cfg.params, 0.5);
    let schema = workload.schema().clone();
    let n = cfg.topology.len();
    let mut net = NetMetrics::new(n);

    // Phase 1: the deterministic end-to-end engine.
    let mut sys = SummaryPubSub::new(cfg.topology.clone(), schema.clone(), 10_000)
        .expect("probe workload fits the id layout");
    let mut subscriptions = 0usize;
    for b in 0..n as NodeId {
        for sub in workload.subscriptions(SUBS_PER_BROKER, &mut rng) {
            sys.subscribe(b, &sub).expect("probe capacity suffices");
            subscriptions += 1;
        }
    }
    let prop_metrics = sys
        .propagate()
        .expect("probe ids fit the layout")
        .metrics
        .clone();
    net.merge(&prop_metrics);

    // Publish through the batch path (per-thread scratch reuse); the
    // batch is generated in the same rng order the sequential loop used,
    // and outcomes come back in input order, so the probe's metrics stay
    // deterministic.
    let mut batch: Vec<(NodeId, subsum_types::Event)> = Vec::with_capacity(n * EVENTS_PER_BROKER);
    for b in 0..n as NodeId {
        for _ in 0..EVENTS_PER_BROKER {
            batch.push((b, workload.event(0.7, &mut rng)));
        }
    }
    let outcomes = sys.publish_batch(&batch);
    let events = outcomes.len();
    let mut deliveries = 0usize;
    let mut fp_rate_sum = 0.0;
    for out in &outcomes {
        deliveries += out.deliveries.len();
        fp_rate_sum += out.false_positive_rate();
        net.merge(&out.routing.metrics);
    }

    // Phase 1b: replay the same batch through the sharded matching path
    // (lock-free snapshot reads over dense-id-range shards), so the
    // `match.shard_*` and `summary.snapshot_*` counters land in the
    // report. Outcomes are identical by construction, so the probe's
    // delivery counts and network metrics are taken from the flat pass
    // only.
    sys.enable_sharded_matching(4);
    let sharded_outcomes = sys.publish_batch(&batch);
    debug_assert_eq!(sharded_outcomes.len(), outcomes.len());
    for (s, f) in sharded_outcomes.iter().zip(&outcomes) {
        debug_assert_eq!(s.deliveries, f.deliveries, "sharded replay diverged");
    }

    // Phase 2: a tiny threaded deployment (runtime stages and mailbox
    // gauges), itself sharded so the snapshot path also runs under real
    // thread concurrency. Kept small: thread startup is the dominant
    // cost.
    let threaded = BrokerNetwork::start_with_shards(Topology::line(4), schema.clone(), 100, 2)
        .expect("tiny threaded probe starts");
    let sub = workload.subscription(&mut rng);
    threaded.subscribe(2, &sub).expect("threaded subscribe");
    threaded.propagate();
    let event = workload.event(0.7, &mut rng);
    let _ = threaded.publish(0, &event);
    threaded.shutdown();

    // Phase 3: the Siena baseline period and one reverse-path multicast.
    let siena = propagate_probabilistic(&cfg.topology, 2, SienaParams::default(), &mut rng);
    net.merge(&siena.metrics);
    let matched: Vec<NodeId> = (0..n as NodeId).step_by(3).collect();
    let _ = reverse_path_route(&cfg.topology, 0, &matched);

    ProbeOutcome {
        net_metrics: net,
        subscriptions,
        events,
        deliveries,
        mean_false_positive_rate: if events == 0 {
            0.0
        } else {
            fp_rate_sum / events as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_deterministic_and_produces_traffic() {
        let cfg = ExperimentConfig::fast();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.net_metrics, b.net_metrics);
        assert_eq!(a.subscriptions, 24 * SUBS_PER_BROKER);
        assert_eq!(a.events, 24 * EVENTS_PER_BROKER);
        assert!(a.net_metrics.messages > 0);
        assert!((0.0..=1.0).contains(&a.mean_false_positive_rate));
    }

    #[test]
    fn probe_populates_the_required_stages() {
        // The acceptance bar for `repro --telemetry-json`: at least five
        // named stages with recorded spans. The recorder is global, so
        // take the delta of the probe's own stages rather than asserting
        // on absolute counts (other tests may record concurrently).
        subsum_telemetry::set_enabled(true);
        let before: std::collections::BTreeMap<String, u64> =
            subsum_telemetry::histograms_snapshot()
                .into_iter()
                .map(|(n, s)| (n, s.count))
                .collect();
        run(&ExperimentConfig::fast());
        subsum_telemetry::set_enabled(false);
        let after = subsum_telemetry::histograms_snapshot();
        let grown: Vec<String> = after
            .into_iter()
            .filter(|(n, s)| s.count > before.get(n).copied().unwrap_or(0))
            .map(|(n, _)| n)
            .collect();
        use subsum_telemetry::names;
        for stage in [
            names::BROKER_SUBSCRIBE,
            names::BROKER_PROPAGATE,
            names::PROPAGATE_ROUND,
            names::PUBLISH_ROUTE,
            names::PUBLISH_CANDIDATE_MATCH,
            names::PUBLISH_OWNER_VERIFY,
            names::CORE_SUMMARY_INSERT,
            names::CORE_SUMMARY_MATCH,
            names::RUNTIME_HANDLE_MSG,
            names::SIENA_PROPAGATE,
            names::SIENA_ROUTE,
        ] {
            assert!(
                grown.contains(&stage.to_string()),
                "stage {stage} not recorded"
            );
        }
    }

    #[test]
    fn probe_populates_the_shard_counters() {
        // The sharded replay and the sharded threaded deployment must
        // leave the shard fan-out and snapshot counters non-zero; delta
        // against the global recorder as above.
        subsum_telemetry::set_enabled(true);
        let before: std::collections::BTreeMap<String, u64> =
            subsum_telemetry::counters_snapshot().into_iter().collect();
        run(&ExperimentConfig::fast());
        subsum_telemetry::set_enabled(false);
        let after: std::collections::BTreeMap<String, u64> =
            subsum_telemetry::counters_snapshot().into_iter().collect();
        use subsum_telemetry::names;
        for counter in [names::MATCH_SHARD_FANOUT, names::SUMMARY_SNAPSHOT_FLIPS] {
            let grew = after.get(counter).copied().unwrap_or(0)
                > before.get(counter).copied().unwrap_or(0);
            assert!(grew, "counter {counter} not bumped by the probe");
        }
    }

    #[test]
    fn json_embeddings_are_well_formed() {
        let cfg = ExperimentConfig::fast();
        let out = run(&cfg);
        let net = net_metrics_to_json(&out.net_metrics).to_json_string();
        assert!(net.contains("\"messages\""));
        assert!(net.contains("\"sent_per_broker\":["));
        let probe = out.to_json().to_json_string();
        assert!(probe.contains("\"events\":48"));
    }
}
