//! Regenerates the paper's tables and figures from the command line.
//!
//! ```text
//! repro [--fast] [--csv] [--out DIR] [--telemetry-json FILE] [--trace-json FILE]
//!       [fig8|fig9|fig10|fig11|compute|analysis|vdeg|subsumption|filter|latency|scaling|recovery|traces|all]
//! ```
//!
//! With `--trace-json FILE`, the backbone publish scenario is replayed
//! with the causal tracer always on and its flight-recorder contents
//! are exported as Chrome `trace_event` JSON — load the file in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! With `--telemetry-json FILE`, the global telemetry recorder is
//! switched on for the run; afterwards a [`RunReport`] — per-stage
//! latency digests, the `publish.*` counters, mailbox gauges, and the
//! probe's aggregated network metrics — is written to `FILE` as one JSON
//! object. A deterministic stage-coverage probe
//! ([`subsum_experiments::telemetry_probe`]) runs after the selected
//! experiments so every instrumented stage appears in the report
//! regardless of the figure chosen.

use subsum_experiments::{
    ablations, analysis, compute, fig10, fig11, fig8, fig9, latency, recovery, scaling,
    telemetry_probe, traces,
};
use subsum_experiments::{ExperimentConfig, ResultTable};
use subsum_telemetry::RunReport;

struct Args {
    fast: bool,
    csv: bool,
    out_dir: Option<String>,
    telemetry_json: Option<String>,
    trace_json: Option<String>,
    what: String,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        fast: false,
        csv: false,
        out_dir: None,
        telemetry_json: None,
        trace_json: None,
        what: "all".to_owned(),
    };
    let mut what: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--fast" => args.fast = true,
            "--csv" => args.csv = true,
            "--out" => {
                i += 1;
                args.out_dir = Some(
                    argv.get(i)
                        .ok_or_else(|| "--out requires a directory".to_owned())?
                        .clone(),
                );
            }
            "--telemetry-json" => {
                i += 1;
                args.telemetry_json = Some(
                    argv.get(i)
                        .ok_or_else(|| "--telemetry-json requires a file path".to_owned())?
                        .clone(),
                );
            }
            "--trace-json" => {
                i += 1;
                args.trace_json = Some(
                    argv.get(i)
                        .ok_or_else(|| "--trace-json requires a file path".to_owned())?
                        .clone(),
                );
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            name => {
                if let Some(prev) = &what {
                    return Err(format!("two experiment names given: `{prev}` and `{name}`"));
                }
                what = Some(name.to_owned());
            }
        }
        i += 1;
    }
    if let Some(w) = what {
        args.what = w;
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: repro [--fast] [--csv] [--out DIR] [--telemetry-json FILE] \
                 [--trace-json FILE] [EXPERIMENT]"
            );
            std::process::exit(2);
        }
    };

    let cfg = if args.fast {
        ExperimentConfig::fast()
    } else {
        ExperimentConfig::default()
    };

    if args.telemetry_json.is_some() {
        subsum_telemetry::set_enabled(true);
        subsum_telemetry::reset();
    }

    let tables: Vec<ResultTable> = match args.what.as_str() {
        "fig8" => vec![fig8::run(&cfg)],
        "fig9" => vec![fig9::run(&cfg)],
        "fig10" => vec![fig10::run(&cfg)],
        "fig11" => vec![fig11::run(&cfg)],
        "compute" => vec![compute::run(&cfg)],
        "analysis" => vec![analysis::run(&cfg)],
        "vdeg" => vec![ablations::run_virtual_degrees(&cfg)],
        "subsumption" => vec![ablations::run_subsumption_models(&cfg)],
        "filter" => vec![ablations::run_subsumption_filter(&cfg)],
        "latency" => vec![latency::run(&cfg)],
        "scaling" => vec![scaling::run(&cfg)],
        "recovery" => vec![recovery::run(&cfg)],
        "traces" => vec![traces::run(&cfg), traces::run_overhead(&cfg)],
        "all" => subsum_experiments::run_all(&cfg),
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected one of fig8 fig9 fig10 fig11 \
                 compute analysis vdeg subsumption filter latency scaling recovery traces all"
            );
            std::process::exit(2);
        }
    };

    if let Some(dir) = &args.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create `{dir}`: {e}");
            std::process::exit(1);
        }
    }
    for t in tables {
        if args.csv {
            println!("# {} — {}", t.name, t.caption);
            print!("{}", t.to_csv());
            println!();
        } else {
            println!("{t}");
        }
        if let Some(dir) = &args.out_dir {
            let path = std::path::Path::new(dir).join(format!("{}.csv", t.name));
            if let Err(e) = std::fs::write(&path, t.to_csv()) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &args.trace_json {
        let json = traces::export_chrome(&cfg);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "trace: {} bytes of Chrome trace_event JSON -> {path}",
            json.len()
        );
    }

    if let Some(path) = &args.telemetry_json {
        // The probe guarantees stage coverage beyond what the selected
        // figure exercised.
        let probe = telemetry_probe::run(&cfg);
        let mut report = RunReport::capture(format!("repro.{}", args.what));
        report.embed(
            "net_metrics",
            telemetry_probe::net_metrics_to_json(&probe.net_metrics),
        );
        report.embed("probe", probe.to_json());
        subsum_telemetry::set_enabled(false);
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "telemetry: {} stages, {} counters -> {path}",
            report.stages.len(),
            report.counters.len()
        );
    }
}
