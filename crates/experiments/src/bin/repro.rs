//! Regenerates the paper's tables and figures from the command line.
//!
//! ```text
//! repro [--fast] [--csv] [--out DIR]
//!       [fig8|fig9|fig10|fig11|compute|analysis|vdeg|subsumption|filter|latency|scaling|all]
//! ```

use subsum_experiments::{
    ablations, analysis, compute, fig10, fig11, fig8, fig9, latency, scaling,
};
use subsum_experiments::{ExperimentConfig, ResultTable};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let csv = args.iter().any(|a| a == "--csv");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut skip_next = false;
    let what = args
        .iter()
        .find(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--out" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .cloned()
        .unwrap_or_else(|| "all".to_owned());

    let cfg = if fast {
        ExperimentConfig::fast()
    } else {
        ExperimentConfig::default()
    };

    let tables: Vec<ResultTable> = match what.as_str() {
        "fig8" => vec![fig8::run(&cfg)],
        "fig9" => vec![fig9::run(&cfg)],
        "fig10" => vec![fig10::run(&cfg)],
        "fig11" => vec![fig11::run(&cfg)],
        "compute" => vec![compute::run(&cfg)],
        "analysis" => vec![analysis::run(&cfg)],
        "vdeg" => vec![ablations::run_virtual_degrees(&cfg)],
        "subsumption" => vec![ablations::run_subsumption_models(&cfg)],
        "filter" => vec![ablations::run_subsumption_filter(&cfg)],
        "latency" => vec![latency::run(&cfg)],
        "scaling" => vec![scaling::run(&cfg)],
        "all" => subsum_experiments::run_all(&cfg),
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected one of fig8 fig9 fig10 fig11 \
                 compute analysis vdeg subsumption filter latency scaling all"
            );
            std::process::exit(2);
        }
    };

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create `{dir}`: {e}");
            std::process::exit(1);
        }
    }
    for t in tables {
        if csv {
            println!("# {} — {}", t.name, t.caption);
            print!("{}", t.to_csv());
            println!();
        } else {
            println!("{t}");
        }
        if let Some(dir) = &out_dir {
            let path = std::path::Path::new(dir).join(format!("{}.csv", t.name));
            if let Err(e) = std::fs::write(&path, t.to_csv()) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
