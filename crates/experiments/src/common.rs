//! Shared experiment infrastructure: result tables and statistics.

use std::fmt;

/// A labelled result table: one experiment's regenerated figure/table.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    /// The experiment id, e.g. `"fig8"`.
    pub name: String,
    /// A one-line description of what the paper figure shows.
    pub caption: String,
    /// Column headers; the first column is the x-axis.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, caption: impl Into<String>, columns: &[&str]) -> Self {
        ResultTable {
            name: name.into(),
            caption: caption.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// The column index for a header name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The values of one column.
    pub fn column_values(&self, name: &str) -> Vec<f64> {
        match self.column(name) {
            Some(i) => self.rows.iter().map(|r| r[i]).collect(),
            None => Vec::new(),
        }
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format_num(*v)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

fn format_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

impl fmt::Display for ResultTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.name, self.caption)?;
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|r| format_num(r[i]).len())
                    .chain([c.len()])
                    .max()
                    .unwrap_or(c.len())
            })
            .collect();
        for (c, w) in self.columns.iter().zip(&widths) {
            write!(f, "{c:>w$}  ", w = w)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (v, w) in row.iter().zip(&widths) {
                write!(f, "{:>w$}  ", format_num(*v), w = w)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Arithmetic mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() as f64 - 1.0)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = ResultTable::new("fig0", "test", &["x", "y"]);
        t.push(vec![1.0, 10.0]);
        t.push(vec![2.0, 20.5]);
        assert_eq!(t.column("y"), Some(1));
        assert_eq!(t.column_values("y"), vec![10.0, 20.5]);
        let csv = t.to_csv();
        assert!(csv.starts_with("x,y\n1,10\n2,20.500"));
        let rendered = format!("{t}");
        assert!(rendered.contains("fig0"));
        assert!(rendered.contains("20.500"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = ResultTable::new("t", "c", &["a", "b"]);
        t.push(vec![1.0]);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138).abs() < 0.01);
        assert_eq!(stddev(&[1.0]), 0.0);
    }
}
