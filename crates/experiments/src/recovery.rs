//! Recovery experiment — beyond the paper: convergence time and repair
//! traffic under a seeded fault plan.
//!
//! Runs the same chaos scenario (per-link drops + duplication, one
//! broker crash with checkpoint recovery) twice over the configured
//! topology: once with digest-driven **anti-entropy** repair and once
//! with the **naive** baseline that re-sends the full summary to every
//! neighbor each round. Both runs must converge to the fault-free
//! oracle; the interesting deltas are the bytes on the wire and the
//! repair traffic after the faults end.
//!
//! One row per strategy: convergence tick, total/full/digest/pull
//! bytes, and the fault counters (drops, duplicates, crash drops,
//! resyncs).

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_broker::{ChaosConfig, ChaosReport, ChaosRun};
use subsum_net::{CrashEvent, FaultPlan, LinkProfile};
use subsum_workload::Workload;

use crate::common::ResultTable;
use crate::config::ExperimentConfig;

/// Subscriptions per broker (kept small: the scenario exchanges whole
/// summaries repeatedly).
const SUBS_PER_BROKER: usize = 4;

/// The shared crash/recovery fault plan (also replayed by the traces
/// experiment for latency attribution under faults).
pub(crate) fn scenario_plan(cfg: &ExperimentConfig) -> FaultPlan {
    let mut plan = FaultPlan::reliable(cfg.seed);
    plan.default_link = LinkProfile {
        drop: 0.15,
        duplicate: 0.10,
        max_extra_delay: 3,
    };
    // Crash the highest-degree broker mid-run; it recovers from its
    // checkpoint two repair rounds later.
    let hub = (0..cfg.topology.len() as u16)
        .max_by_key(|&b| cfg.topology.degree(b))
        .unwrap_or(0);
    plan.crashes.push(CrashEvent {
        broker: hub,
        at: 120,
        restart_at: 220,
    });
    plan
}

fn run_strategy(cfg: &ExperimentConfig, naive: bool) -> ChaosReport {
    let mut workload = Workload::new(cfg.params, 0.5);
    let schema = workload.schema().clone();
    let config = ChaosConfig {
        naive_repair: naive,
        ..ChaosConfig::default()
    };
    let mut run = ChaosRun::new(cfg.topology.clone(), schema, scenario_plan(cfg), config)
        .expect("schema fits the id layout");
    // Identical subscriptions for both strategies: one seeded generator
    // per strategy call.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC4A05);
    for b in 0..cfg.topology.len() as u16 {
        for _ in 0..SUBS_PER_BROKER {
            let sub = workload.subscription(&mut rng);
            run.subscribe(b, &sub);
        }
    }
    run.checkpoint_all();
    run.run().expect("chaos run is schema-consistent")
}

/// Runs the recovery experiment.
pub fn run(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "recovery",
        "Crash/recovery with anti-entropy repair vs naive full re-propagation \
         (drops 15%, dups 10%, one broker crash; strategy 0 = anti-entropy, 1 = naive)",
        &[
            "naive",
            "converged",
            "converged_at",
            "total_bytes",
            "full_summary_bytes",
            "digest_bytes",
            "pull_bytes",
            "full_updates",
            "resyncs",
            "dropped",
            "duplicated",
            "crash_dropped",
        ],
    );
    for naive in [false, true] {
        let report = run_strategy(cfg, naive);
        table.push(vec![
            naive as u64 as f64,
            report.converged as u64 as f64,
            report.converged_at.unwrap_or(0) as f64,
            report.stats.total_bytes() as f64,
            report.stats.full_summary_bytes as f64,
            report.stats.digest_bytes as f64,
            report.stats.pull_bytes as f64,
            report.stats.full_updates as f64,
            report.stats.resyncs as f64,
            report.stats.dropped as f64,
            report.stats.duplicated as f64,
            report.stats.crash_dropped as f64,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_strategies_converge_and_anti_entropy_is_cheaper() {
        let cfg = ExperimentConfig::fast();
        let table = run(&cfg);
        assert_eq!(table.rows.len(), 2);
        let col = |name: &str, row: usize| {
            let i = table.columns.iter().position(|c| c == name).unwrap();
            table.rows[row][i]
        };
        for row in 0..2 {
            assert_eq!(col("converged", row), 1.0, "strategy {row} must converge");
        }
        let smart = col("total_bytes", 0);
        let naive = col("total_bytes", 1);
        assert!(
            smart < naive,
            "anti-entropy bytes {smart} must beat naive {naive}"
        );
        assert!(col("digest_bytes", 0) > 0.0);
        assert_eq!(col("digest_bytes", 1), 0.0);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let cfg = ExperimentConfig::fast();
        assert_eq!(run(&cfg).rows, run(&cfg).rows);
    }
}
