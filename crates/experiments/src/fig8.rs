//! Fig. 8 — network bandwidth for subscription propagation.
//!
//! Total bytes for all brokers to fully propagate one period's σ new
//! subscriptions each, for σ ∈ {10 … 1000}:
//!
//! * **Broadcast** — every broker unicasts raw subscriptions to every
//!   other broker (the paper's `(B−1)·avg_hops·B·σ·50` formula);
//! * **Siena** (subsumption 10% / 90%) — per-source spanning-tree
//!   flooding under the probabilistic subsumption model;
//! * **Summary** (subsumption 10% / 90%) — Algorithm 2 with real encoded
//!   multi-broker summaries.
//!
//! The paper reports Broadcast ≫ Siena > Summary across the whole sweep
//! (up to three orders of magnitude over Broadcast, 4–8× over Siena).

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_broker::propagate;
use subsum_core::{ArithWidth, BrokerSummary, SummaryCodec};
use subsum_siena::{broadcast_cost, propagate_probabilistic, SienaParams};
use subsum_types::{BrokerId, IdLayout, LocalSubId};
use subsum_workload::Workload;

use crate::common::ResultTable;
use crate::config::ExperimentConfig;

/// Builds each broker's own summary from σ generated subscriptions.
pub(crate) fn build_own_summaries(
    cfg: &ExperimentConfig,
    subsumption: f64,
    sigma: usize,
    rng: &mut StdRng,
) -> (Vec<BrokerSummary>, SummaryCodec) {
    let mut workload = Workload::new(cfg.params, subsumption);
    let schema = workload.schema().clone();
    let layout = IdLayout::new(
        cfg.topology.len() as u64,
        sigma.max(cfg.params.outstanding) as u64,
        schema.len() as u32,
    )
    .expect("schema fits the id mask");
    let codec = SummaryCodec::new(layout, ArithWidth::Four);
    let summaries = (0..cfg.topology.len())
        .map(|b| {
            let mut s = BrokerSummary::new(schema.clone());
            for i in 0..sigma {
                let sub = workload.subscription(rng);
                s.insert(BrokerId(b as u16), LocalSubId(i as u32), &sub);
            }
            s
        })
        .collect();
    (summaries, codec)
}

/// Runs the Fig. 8 experiment.
pub fn run(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "fig8",
        "bandwidth (bytes) for subscription propagation vs sigma",
        &[
            "sigma",
            "broadcast",
            "siena_p10",
            "summary_p10",
            "siena_p90",
            "summary_p90",
        ],
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for &sigma in &cfg.sigma_sweep {
        let broadcast = broadcast_cost(&cfg.topology, sigma, cfg.params.sub_size).bytes() as f64;
        let mut cells = vec![sigma as f64, broadcast];
        for &p in &[0.10, 0.90] {
            let siena = propagate_probabilistic(
                &cfg.topology,
                sigma,
                SienaParams {
                    subsumption_max: p,
                    sub_size: cfg.params.sub_size,
                },
                &mut rng,
            );
            let (own, codec) = build_own_summaries(cfg, p, sigma, &mut rng);
            let summary =
                propagate(&cfg.topology, &own, &codec).expect("generated ids fit the layout");
            cells.push(siena.metrics.link_bytes as f64);
            cells.push(summary.metrics.link_bytes as f64);
        }
        table.push(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_match_paper() {
        let cfg = ExperimentConfig {
            sigma_sweep: vec![10, 100],
            ..ExperimentConfig::fast()
        };
        let t = run(&cfg);
        for row in &t.rows {
            let (broadcast, siena10, summary10, siena90, summary90) =
                (row[1], row[2], row[3], row[4], row[5]);
            // Broadcast dominates: Siena saves the path-length factor
            // (≈3× on this overlay at p=10%), summaries far more.
            assert!(
                broadcast > 2.0 * siena10,
                "broadcast {broadcast} vs siena {siena10}"
            );
            assert!(broadcast > 10.0 * summary10);
            // Summaries beat Siena at both subsumption levels.
            assert!(
                summary10 < siena10,
                "summary {summary10} vs siena {siena10}"
            );
            assert!(
                summary90 < siena90,
                "summary {summary90} vs siena {siena90}"
            );
        }
    }

    #[test]
    fn bandwidth_grows_with_sigma() {
        let cfg = ExperimentConfig {
            sigma_sweep: vec![10, 500],
            ..ExperimentConfig::fast()
        };
        let t = run(&cfg);
        for col in ["broadcast", "siena_p10", "summary_p10"] {
            let v = t.column_values(col);
            assert!(v[1] > v[0], "{col} should grow with sigma");
        }
    }

    #[test]
    fn summary_bandwidth_sublinear_in_sigma_at_high_subsumption() {
        // With p = 0.9 most constraints collapse into canonical rows, so
        // summary bytes grow much slower than σ (the paper's "nearly
        // flat" observation; id lists still grow linearly, structure does
        // not).
        let cfg = ExperimentConfig {
            sigma_sweep: vec![10, 1000],
            ..ExperimentConfig::fast()
        };
        let t = run(&cfg);
        let v = t.column_values("summary_p90");
        let growth = v[1] / v[0];
        assert!(
            growth < 100.0 * 0.9,
            "summary bandwidth grew {growth}× for a 100× sigma increase"
        );
    }
}
