//! Schema-width scaling of the matcher — an empirical check of the
//! paper's T₁ analysis (§5.2.4).
//!
//! The paper bounds matching time by
//! `T₁ = n_ae · max(n_sr·L_a, n_e·L_a) + n_se · n_r · L_s`: linear in the
//! number of *event* attributes (`n_ae + n_se`), with per-attribute costs
//! set by the summary row counts. This experiment sweeps the schema width
//! `n_t` (holding the subscription population fixed) and reports matching
//! latency and summary size: both should grow roughly linearly with the
//! event attribute count `n_t/2`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_core::{BrokerSummary, SizeParams, SummaryStats};
use subsum_types::{BrokerId, Event, LocalSubId};
use subsum_workload::{PaperParams, Workload};

use crate::common::ResultTable;
use crate::config::ExperimentConfig;

/// Runs the schema-width scaling experiment.
pub fn run(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "scaling_nt",
        "matcher latency and summary size vs schema width (S = 500)",
        &[
            "nt",
            "attrs_per_event",
            "match_us",
            "summary_bytes",
            "rows_scanned",
        ],
    );
    let subs = 500;
    for &nt in &[4usize, 10, 20, 40] {
        let params = PaperParams { nt, ..cfg.params };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut workload = Workload::new(params, 0.7);
        let schema = workload.schema().clone();
        let mut summary = BrokerSummary::new(schema.clone());
        for i in 0..subs {
            let sub = workload.subscription(&mut rng);
            summary.insert(BrokerId(0), LocalSubId(i as u32), &sub);
        }
        let events: Vec<Event> = (0..200).map(|_| workload.event(0.5, &mut rng)).collect();
        let mut total = 0usize;
        let start = Instant::now();
        for e in &events {
            total += summary.match_event(e).len();
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / events.len() as f64;
        std::hint::black_box(total);
        let stats = SummaryStats::of(&summary);
        table.push(vec![
            nt as f64,
            params.attrs_per_sub() as f64,
            us,
            stats.total_size(SizeParams::default()) as f64,
            summary
                .match_event_with_stats(&events[0])
                .stats
                .rows_scanned as f64,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_size_grows_with_schema_width() {
        let t = run(&ExperimentConfig::fast());
        let sizes = t.column_values("summary_bytes");
        assert!(
            sizes.last().unwrap() > sizes.first().unwrap(),
            "wider schemata must produce larger summaries: {sizes:?}"
        );
    }

    #[test]
    fn latency_growth_is_roughly_linear_in_event_width() {
        // From nt = 4 to nt = 40 the event attribute count grows 10×;
        // latency should grow far less than quadratically. (Ratio-based,
        // so it holds in both debug and release builds.)
        let t = run(&ExperimentConfig::fast());
        let lat = t.column_values("match_us");
        let growth = lat.last().unwrap() / lat.first().unwrap().max(1e-9);
        assert!(
            growth < 100.0,
            "latency growth {growth}× looks super-linear"
        );
        assert!(lat.iter().all(|&v| v > 0.0));
    }
}
