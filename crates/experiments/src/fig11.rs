//! Fig. 11 — total subscription storage across all brokers.
//!
//! With `S` outstanding subscriptions per broker fully propagated:
//!
//! * **Broadcast** stores every raw subscription at every broker
//!   (`B² · S · 50` bytes);
//! * **Siena** stores raw subscriptions wherever flooding delivered them
//!   (approaching broadcast at low subsumption, as the paper notes);
//! * **Summary** stores each broker's merged multi-broker summary,
//!   sized by the paper's equations (1) + (2).
//!
//! The paper reports the summary approach 2–5× below Siena.

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_broker::propagate;
use subsum_core::{SizeParams, SummaryStats};
use subsum_siena::{broadcast_storage_bytes, propagate_probabilistic, SienaParams};

use crate::common::ResultTable;
use crate::config::ExperimentConfig;
use crate::fig8::build_own_summaries;

/// Runs the Fig. 11 experiment.
pub fn run(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "fig11",
        "total storage (bytes) across brokers vs outstanding subscriptions",
        &[
            "outstanding",
            "broadcast",
            "siena_p10",
            "summary_p10",
            "siena_p90",
            "summary_p90",
        ],
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let size_params = SizeParams {
        arith_width: cfg.params.sst,
        id_width: cfg.params.sst,
    };

    for &outstanding in &cfg.sigma_sweep {
        let broadcast =
            broadcast_storage_bytes(cfg.topology.len(), outstanding, cfg.params.sub_size) as f64;
        let mut cells = vec![outstanding as f64, broadcast];
        for &p in &[0.10, 0.90] {
            let siena = propagate_probabilistic(
                &cfg.topology,
                outstanding,
                SienaParams {
                    subsumption_max: p,
                    sub_size: cfg.params.sub_size,
                },
                &mut rng,
            );
            let (own, codec) = build_own_summaries(cfg, p, outstanding, &mut rng);
            let outcome = propagate(&cfg.topology, &own, &codec).expect("ids fit");
            let summary_storage: usize = outcome
                .stored
                .iter()
                .map(|m| SummaryStats::of(&m.summary).total_size(size_params))
                .sum();
            cells.push(siena.storage_bytes(cfg.params.sub_size) as f64);
            cells.push(summary_storage as f64);
        }
        table.push(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_storage_beats_siena() {
        let cfg = ExperimentConfig {
            sigma_sweep: vec![50, 200],
            ..ExperimentConfig::fast()
        };
        let t = run(&cfg);
        for row in &t.rows {
            assert!(
                row[3] < row[2],
                "summary_p10 {} vs siena_p10 {}",
                row[3],
                row[2]
            );
            assert!(
                row[5] < row[4],
                "summary_p90 {} vs siena_p90 {}",
                row[5],
                row[4]
            );
        }
    }

    #[test]
    fn siena_approaches_broadcast_at_low_subsumption() {
        let cfg = ExperimentConfig {
            sigma_sweep: vec![100],
            ..ExperimentConfig::fast()
        };
        let t = run(&cfg);
        let row = &t.rows[0];
        // p = 10% prunes little: Siena within a small factor of broadcast.
        assert!(
            row[2] > row[1] * 0.5,
            "siena {} vs broadcast {}",
            row[2],
            row[1]
        );
        assert!(row[2] <= row[1]);
    }

    #[test]
    fn storage_grows_with_outstanding() {
        let cfg = ExperimentConfig {
            sigma_sweep: vec![10, 500],
            ..ExperimentConfig::fast()
        };
        let t = run(&cfg);
        for col in ["broadcast", "siena_p10", "summary_p10", "summary_p90"] {
            let v = t.column_values(col);
            assert!(v[1] > v[0], "{col} should grow with S");
        }
    }
}
