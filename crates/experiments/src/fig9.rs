//! Fig. 9 — mean hop counts for subscription propagation.
//!
//! Hops reflect the number of brokers involved: one hop per
//! broker→broker message. Siena floods each broker's subscriptions over
//! per-source spanning trees (up to `B·(B−1)` hops at subsumption 0%,
//! i.e. 24·23 = 552 on the 24-node overlay), decreasing with the
//! subsumption probability. The summary approach needs at most one send
//! per broker per period regardless of subsumption — fewer hops than
//! brokers.

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_broker::propagate;
use subsum_siena::{propagate_probabilistic, SienaParams};

use crate::common::{mean, ResultTable};
use crate::config::ExperimentConfig;
use crate::fig8::build_own_summaries;

/// Runs the Fig. 9 experiment.
pub fn run(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "fig9",
        "mean hops for subscription propagation vs subsumption probability",
        &["subsumption_pct", "siena", "summary"],
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    for &p in &cfg.subsumption_sweep {
        // Siena: mean over trials of propagating one period with one new
        // subscription per broker.
        let siena_samples: Vec<f64> = (0..cfg.trials)
            .map(|_| {
                propagate_probabilistic(
                    &cfg.topology,
                    1,
                    SienaParams {
                        subsumption_max: p,
                        sub_size: cfg.params.sub_size,
                    },
                    &mut rng,
                )
                .hops() as f64
            })
            .collect();

        // Summary: Algorithm 2's schedule is content-independent; its hop
        // count is a property of the topology.
        let (own, codec) = build_own_summaries(cfg, p, 1, &mut rng);
        let summary_hops = propagate(&cfg.topology, &own, &codec)
            .expect("ids fit the layout")
            .hops() as f64;

        table.push(vec![p * 100.0, mean(&siena_samples), summary_hops]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_always_below_broker_count() {
        let cfg = ExperimentConfig::fast();
        let t = run(&cfg);
        for v in t.column_values("summary") {
            assert!(v <= cfg.topology.len() as f64);
        }
    }

    #[test]
    fn siena_hops_decrease_with_subsumption() {
        let cfg = ExperimentConfig {
            trials: 8,
            ..ExperimentConfig::default()
        };
        let t = run(&cfg);
        let siena = t.column_values("siena");
        assert!(
            siena.first().unwrap() > siena.last().unwrap(),
            "siena hops should fall from p=10% to p=90%: {siena:?}"
        );
        // At p = 10% Siena approaches full flooding: hundreds of hops.
        assert!(siena[0] > 250.0, "siena at 10%: {}", siena[0]);
    }

    #[test]
    fn summary_beats_siena_everywhere() {
        let t = run(&ExperimentConfig::fast());
        for row in &t.rows {
            assert!(
                row[2] < row[1],
                "summary {} should beat siena {} at p={}",
                row[2],
                row[1],
                row[0]
            );
        }
    }

    #[test]
    fn summary_hops_independent_of_subsumption() {
        let t = run(&ExperimentConfig::fast());
        let summary = t.column_values("summary");
        assert!(summary.windows(2).all(|w| w[0] == w[1]));
    }
}
