//! Shared experiment configuration.

use subsum_net::Topology;
use subsum_workload::PaperParams;

/// Configuration shared by all figure experiments.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The broker overlay (default: the 24-node backbone model).
    pub topology: Topology,
    /// The workload parameter set (default: Table 2).
    pub params: PaperParams,
    /// RNG seed; all experiments are deterministic under a fixed seed.
    pub seed: u64,
    /// Repetitions for experiments with random components.
    pub trials: usize,
    /// Events per broker for the event-routing experiment (the paper uses
    /// 1000; the default here keeps `cargo bench` runs short).
    pub events_per_broker: usize,
    /// The σ sweep (new subscriptions per broker per period).
    pub sigma_sweep: Vec<usize>,
    /// The subsumption-probability sweep.
    pub subsumption_sweep: Vec<f64>,
    /// The event-popularity sweep.
    pub popularity_sweep: Vec<f64>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            topology: Topology::cable_wireless_24(),
            params: PaperParams::default(),
            seed: 0x5EED,
            trials: 5,
            events_per_broker: 50,
            sigma_sweep: PaperParams::sigma_sweep().to_vec(),
            subsumption_sweep: PaperParams::subsumption_sweep().to_vec(),
            popularity_sweep: PaperParams::popularity_sweep().to_vec(),
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for quick smoke runs and CI.
    pub fn fast() -> Self {
        ExperimentConfig {
            trials: 2,
            events_per_broker: 10,
            sigma_sweep: vec![10, 100, 500],
            ..ExperimentConfig::default()
        }
    }
}
