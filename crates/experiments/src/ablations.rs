//! Ablation studies for design choices called out in the paper.
//!
//! * **Virtual degrees** (§6, ongoing work): capping the advertised
//!   degree of maximum-degree brokers during event routing spreads the
//!   examination load at a modest hop-count cost.
//! * **Probabilistic vs content-based subsumption** (§5.2 model): the
//!   paper abstracts Siena's pruning with a per-broker probability; the
//!   ablation compares it against real `covers()`-based pruning on the
//!   same workloads, showing which probability the content model
//!   effectively realizes.

use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_broker::{propagate, route_event, RoutingOptions};
use subsum_core::{ArithWidth, BrokerSummary, SummaryCodec};
use subsum_net::{NetMetrics, NodeId};
use subsum_siena::{propagate_content, propagate_probabilistic, SienaParams};
use subsum_types::{BrokerId, IdLayout, LocalSubId, Subscription};
use subsum_workload::popularity::{
    event_for, interest_schema, interest_subscription, random_matched_set,
};
use subsum_workload::Workload;

use crate::common::{mean, ResultTable};
use crate::config::ExperimentConfig;

/// Virtual-degree ablation: routing load vs the degree cap.
pub fn run_virtual_degrees(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "ablation_vdeg",
        "event routing load with virtual degree caps (popularity 25%)",
        &[
            "degree_cap",
            "max_broker_load",
            "mean_broker_load",
            "mean_hops",
        ],
    );
    let n = cfg.topology.len();
    let schema = interest_schema();
    let layout = IdLayout::new(n as u64, 16, schema.len() as u32).expect("tiny schema");
    let codec = SummaryCodec::new(layout, ArithWidth::Four);
    let own: Vec<BrokerSummary> = (0..n)
        .map(|b| {
            let mut s = BrokerSummary::new(schema.clone());
            s.insert(
                BrokerId(b as u16),
                LocalSubId(0),
                &interest_subscription(&schema, b as NodeId),
            );
            s
        })
        .collect();
    let stored = propagate(&cfg.topology, &own, &codec)
        .expect("ids fit")
        .stored;

    let max_degree = cfg.topology.max_degree();
    let caps: Vec<Option<usize>> = [None]
        .into_iter()
        .chain((1..max_degree).rev().map(Some))
        .collect();

    for cap in caps {
        let options = match cap {
            None => RoutingOptions::new(),
            Some(c) => RoutingOptions::with_virtual_degrees(&cfg.topology, c),
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut metrics = NetMetrics::new(n);
        let mut hops = Vec::new();
        for publisher in 0..n as NodeId {
            for _ in 0..cfg.events_per_broker {
                let matched = random_matched_set(n, 0.25, &mut rng);
                let event = event_for(&schema, &matched);
                let out = route_event(
                    &cfg.topology,
                    &stored,
                    publisher,
                    &event,
                    cfg.params.sub_size,
                    &options,
                );
                metrics.merge(&out.metrics);
                hops.push(out.total_hops() as f64);
            }
        }
        table.push(vec![
            cap.map(|c| c as f64).unwrap_or(max_degree as f64),
            metrics.max_broker_load() as f64,
            metrics.mean_broker_load(),
            mean(&hops),
        ]);
    }
    table
}

/// Subsumption-model ablation: hops under the probabilistic abstraction
/// vs real content-based pruning on the same generated workloads.
pub fn run_subsumption_models(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "ablation_subsumption",
        "siena propagation: probabilistic model vs content-based pruning",
        &[
            "workload_subsumption_pct",
            "probabilistic_hops",
            "content_hops",
            "content_bytes",
        ],
    );
    let sigma = 50;
    for &p in &cfg.subsumption_sweep {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let prob = propagate_probabilistic(
            &cfg.topology,
            sigma,
            SienaParams {
                subsumption_max: p,
                sub_size: cfg.params.sub_size,
            },
            &mut rng,
        );

        let mut workload = Workload::new(cfg.params, p);
        let schema = workload.schema().clone();
        let subs: Vec<Vec<Subscription>> = (0..cfg.topology.len())
            .map(|_| workload.subscriptions(sigma, &mut rng))
            .collect();
        let content = propagate_content(&cfg.topology, &schema, &subs, cfg.params.sst);

        table.push(vec![
            p * 100.0,
            prob.hops() as f64,
            content.hops() as f64,
            content.metrics.payload_bytes as f64,
        ]);
    }
    table
}

/// §6 "combining summarization and subsumption" ablation: propagation
/// bandwidth with and without the subscription-shadowing filter.
///
/// Covering between the independently-drawn subscriptions of the Table 2
/// model is rare (see [`run_subsumption_models`]), so the filter is
/// exercised on a workload where covering actually occurs: a fraction of
/// subscriptions are *threshold* filters (`num0 < v`, `v` from a small
/// Zipf-skewed pool), which nest into covering chains — the alert-style
/// subscriptions real deployments see.
pub fn run_subsumption_filter(cfg: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "ablation_filter",
        "summary propagation bytes with/without the subsumption filter",
        &[
            "threshold_fraction_pct",
            "bytes_unfiltered",
            "bytes_filtered",
            "shadowed_subs",
            "savings_pct",
        ],
    );
    let sigma = 100;
    let zipf = subsum_workload::Zipf::new(10, 1.0);
    for &frac in &cfg.subsumption_sweep {
        let run = |filter: bool| -> (u64, usize) {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let mut workload = Workload::new(cfg.params, 0.5);
            let schema = workload.schema().clone();
            let mut sys = subsum_broker::SummaryPubSub::new(
                cfg.topology.clone(),
                schema.clone(),
                sigma as u64 + 1,
            )
            .expect("schema fits");
            sys.set_subsumption_filter(filter);
            for b in 0..cfg.topology.len() as NodeId {
                for _ in 0..sigma {
                    let sub = if rng.gen::<f64>() < frac {
                        // Nested threshold subscription: larger bounds
                        // cover smaller ones.
                        let rank = zipf.sample(&mut rng);
                        let bound = 100.0 * (rank as f64 + 1.0);
                        Subscription::builder(&schema)
                            .num("num0", subsum_types::NumOp::Lt, bound)
                            .expect("num0 exists")
                            .build()
                            .expect("non-empty")
                    } else {
                        workload.subscription(&mut rng)
                    };
                    sys.subscribe(b, &sub).expect("ids fit");
                }
            }
            sys.propagate().expect("ids fit");
            let shadowed = (0..cfg.topology.len() as NodeId)
                .map(|b| sys.shadowed_count(b))
                .sum();
            (sys.propagation_metrics().payload_bytes, shadowed)
        };
        let (unfiltered, _) = run(false);
        let (filtered, shadowed) = run(true);
        table.push(vec![
            frac * 100.0,
            unfiltered as f64,
            filtered as f64,
            shadowed as f64,
            100.0 * (unfiltered as f64 - filtered as f64) / unfiltered as f64,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_degrees_reduce_peak_load() {
        let cfg = ExperimentConfig {
            events_per_broker: 10,
            ..ExperimentConfig::default()
        };
        let t = run_virtual_degrees(&cfg);
        // First row: no cap (true degrees). Strongest cap: last row.
        let uncapped_max = t.rows[0][1];
        let capped_max = t.rows.last().unwrap()[1];
        assert!(
            capped_max < uncapped_max,
            "cap should reduce peak load: {capped_max} vs {uncapped_max}"
        );
    }

    #[test]
    fn virtual_degrees_cost_hops() {
        let cfg = ExperimentConfig {
            events_per_broker: 10,
            ..ExperimentConfig::default()
        };
        let t = run_virtual_degrees(&cfg);
        let uncapped_hops = t.rows[0][3];
        let capped_hops = t.rows.last().unwrap()[3];
        assert!(capped_hops >= uncapped_hops * 0.9);
    }

    #[test]
    fn filter_saves_bandwidth_at_high_covering() {
        let cfg = ExperimentConfig {
            subsumption_sweep: vec![0.9],
            ..ExperimentConfig::fast()
        };
        let t = run_subsumption_filter(&cfg);
        let row = &t.rows[0];
        assert!(row[3] > 0.0, "high covering must shadow some subscriptions");
        assert!(
            row[2] < row[1],
            "filtered bytes {} should undercut unfiltered {}",
            row[2],
            row[1]
        );
    }

    #[test]
    fn content_pruning_increases_with_workload_subsumption() {
        let cfg = ExperimentConfig {
            subsumption_sweep: vec![0.10, 0.90],
            ..ExperimentConfig::fast()
        };
        let t = run_subsumption_models(&cfg);
        let hops = t.column_values("content_hops");
        assert!(
            hops[1] < hops[0],
            "higher workload subsumption must prune more: {hops:?}"
        );
    }
}
