//! Glob-style string patterns with a *covering* (language inclusion) test.
//!
//! The paper's subscription schema supports string operators for equality,
//! prefix (`>*`), suffix (`*<`) and containment (`*`), as well as general
//! patterns with interior wildcards such as `N*SE` (Fig. 3) or `m*t`
//! (§3.1). All of these are instances of one pattern language: literal
//! segments separated by `*` wildcards, each wildcard matching any
//! (possibly empty) string.
//!
//! The SACS summary structure relies on deciding whether one constraint
//! *covers* (subsumes) another — e.g. `m*t` covers `microsoft` — which for
//! patterns is the language-inclusion problem `L(q) ⊆ L(p)`.
//! [`Pattern::covers`] decides it exactly for this pattern class:
//!
//! * if `q` is wildcard-free its language is a single string, and inclusion
//!   reduces to a match test;
//! * otherwise every wildcard of `q` can be instantiated adversarially, so
//!   `p` covers `q` iff the literal segments of `p` can be embedded, in
//!   order and without crossing wildcards, into the literal segments of
//!   `q`, with `p`'s anchors respected by `q`'s anchors. A greedy
//!   earliest-placement embedding is optimal by the standard exchange
//!   argument.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::TypeError;

/// A string pattern: literal segments separated by `*` wildcards.
///
/// # Examples
///
/// ```
/// use subsum_types::Pattern;
/// let p: Pattern = "m*t".parse().unwrap();
/// assert!(p.matches("microsoft"));
/// assert!(p.matches("mt"));
/// assert!(!p.matches("microsofts"));
///
/// let q = Pattern::literal("microsoft");
/// assert!(p.covers(&q));
/// assert!(!q.covers(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pattern {
    /// `true` if the pattern does not begin with a wildcard.
    anchored_start: bool,
    /// `true` if the pattern does not end with a wildcard.
    anchored_end: bool,
    /// Non-empty literal segments, in order.
    segments: Vec<String>,
}

impl Pattern {
    fn normalized(anchored_start: bool, anchored_end: bool, segments: Vec<String>) -> Self {
        debug_assert!(segments.iter().all(|s| !s.is_empty()));
        if segments.is_empty() && !(anchored_start && anchored_end) {
            // `*`, `a*`-minus-segment etc. all collapse to the universal
            // pattern, canonically unanchored on both sides.
            return Pattern {
                anchored_start: false,
                anchored_end: false,
                segments,
            };
        }
        Pattern {
            anchored_start,
            anchored_end,
            segments,
        }
    }

    /// The pattern matching every string (`*`).
    pub fn universal() -> Self {
        Pattern::normalized(false, false, Vec::new())
    }

    /// A wildcard-free pattern matching exactly `s`.
    pub fn literal(s: impl Into<String>) -> Self {
        let s = s.into();
        if s.is_empty() {
            Pattern::normalized(true, true, Vec::new())
        } else {
            Pattern::normalized(true, true, vec![s])
        }
    }

    /// The prefix pattern `s*` (the paper's `>*` operator).
    pub fn prefix(s: impl Into<String>) -> Self {
        let s = s.into();
        if s.is_empty() {
            Pattern::universal()
        } else {
            Pattern::normalized(true, false, vec![s])
        }
    }

    /// The suffix pattern `*s` (the paper's `*<` operator).
    pub fn suffix(s: impl Into<String>) -> Self {
        let s = s.into();
        if s.is_empty() {
            Pattern::universal()
        } else {
            Pattern::normalized(false, true, vec![s])
        }
    }

    /// The containment pattern `*s*` (the paper's `*` operator).
    pub fn substring(s: impl Into<String>) -> Self {
        let s = s.into();
        if s.is_empty() {
            Pattern::universal()
        } else {
            Pattern::normalized(false, false, vec![s])
        }
    }

    /// Parses a glob pattern where `*` matches any (possibly empty)
    /// string. Consecutive wildcards collapse. There is no escape
    /// syntax: literal asterisks cannot occur in values.
    ///
    /// # Errors
    ///
    /// Never fails for well-formed UTF-8 input; the `Result` exists for
    /// forward compatibility with an escaped syntax.
    pub fn parse(text: &str) -> Result<Self, TypeError> {
        let raw: Vec<&str> = text.split('*').collect();
        let anchored_start = !raw.first().is_some_and(|s| s.is_empty()) || raw.len() == 1;
        let anchored_end = !raw.last().is_some_and(|s| s.is_empty()) || raw.len() == 1;
        let segments: Vec<String> = raw
            .into_iter()
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
        if text.is_empty() {
            return Ok(Pattern::literal(""));
        }
        Ok(Pattern::normalized(anchored_start, anchored_end, segments))
    }

    /// Returns `true` if the pattern matches every string.
    pub fn is_universal(&self) -> bool {
        self.segments.is_empty() && !self.anchored_start
    }

    /// If the pattern is wildcard-free, returns the single string it
    /// matches.
    pub fn as_literal(&self) -> Option<&str> {
        if self.anchored_start && self.anchored_end {
            match self.segments.as_slice() {
                [] => Some(""),
                [s] => Some(s),
                _ => None,
            }
        } else {
            None
        }
    }

    /// The literal segments, in order.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// Whether the pattern is anchored at the start (no leading `*`).
    pub fn anchored_start(&self) -> bool {
        self.anchored_start
    }

    /// Whether the pattern is anchored at the end (no trailing `*`).
    pub fn anchored_end(&self) -> bool {
        self.anchored_end
    }

    /// The rendered length in bytes, used by the paper's per-character
    /// string storage accounting (`s_sv`). Computed from the segment
    /// structure without rendering, so size accounting never allocates;
    /// equals `self.to_string().len()` by construction.
    pub fn wire_size(&self) -> usize {
        if self.segments.is_empty() {
            return usize::from(self.is_universal());
        }
        let literals: usize = self.segments.iter().map(String::len).sum();
        literals
            + (self.segments.len() - 1)
            + usize::from(!self.anchored_start)
            + usize::from(!self.anchored_end)
    }

    /// Tests whether the pattern matches `s`, by greedy segment placement.
    pub fn matches(&self, s: &str) -> bool {
        let segs = &self.segments;
        if segs.is_empty() {
            // Universal, or the empty literal.
            return self.is_universal() || s.is_empty();
        }
        let mut lo = 0usize;
        let mut hi = s.len();
        let mut first = 0usize;
        let mut last = segs.len();
        if self.anchored_start {
            let seg = &segs[0];
            if !s.starts_with(seg.as_str()) {
                return false;
            }
            lo = seg.len();
            first = 1;
        }
        if self.anchored_end {
            if last == first {
                // The only segment was consumed by the start anchor; the
                // pattern is the literal seg[0], so s must end here too.
                return lo == hi;
            }
            let seg = &segs[last - 1];
            if hi - lo < seg.len() || !s[lo..hi].ends_with(seg.as_str()) {
                return false;
            }
            hi -= seg.len();
            last -= 1;
        }
        for seg in &segs[first..last] {
            match s[lo..hi].find(seg.as_str()) {
                Some(p) => lo += p + seg.len(),
                None => return false,
            }
        }
        true
    }

    /// Decides language inclusion: returns `true` iff every string matched
    /// by `other` is matched by `self`.
    ///
    /// This is the covering test of the paper's SACS structure (§3.1): a
    /// row's constraint may be substituted by a more general one exactly
    /// when the new constraint covers it.
    pub fn covers(&self, other: &Pattern) -> bool {
        let (p, q) = (self, other);
        if p.is_universal() {
            return true;
        }
        if let Some(s) = q.as_literal() {
            return p.matches(s);
        }
        if p.as_literal().is_some() {
            // q contains a wildcard, so its language is infinite and
            // cannot be included in a single-string language.
            return false;
        }
        // q contains at least one wildcard, each of which can be
        // instantiated adversarially; p's segments must embed into q's
        // literal chunks.
        if q.is_universal() {
            // p is not universal here, and any non-universal pattern
            // rejects some string.
            return false;
        }
        let chunks = &q.segments;
        let psegs = &p.segments;
        let mut pi = 0usize;
        let mut pend = psegs.len();
        // Current embedding position: (chunk index, byte offset).
        let mut ci = 0usize;
        let mut off = 0usize;

        if p.anchored_start {
            if !q.anchored_start {
                return false;
            }
            // q non-literal with anchored start has at least one chunk.
            let q0 = &chunks[0];
            let p0 = &psegs[0];
            if !q0.starts_with(p0.as_str()) {
                return false;
            }
            off = p0.len();
            pi = 1;
        }

        // Reserve the final segment if p is anchored at the end.
        let mut reserve: Option<(usize, usize)> = None;
        if p.anchored_end {
            if !q.anchored_end {
                return false;
            }
            if pi == pend {
                // p is a literal consumed by the start anchor, but q's
                // language is infinite: cannot be included in one string.
                return false;
            }
            // `q.anchored_end` with empty chunks means q is a bare
            // literal/anchor combination; claiming no coverage is always
            // a safe (conservative) answer for this predicate.
            let Some(qe) = chunks.last() else {
                return false;
            };
            let pe = &psegs[pend - 1];
            if !qe.ends_with(pe.as_str()) {
                return false;
            }
            reserve = Some((chunks.len() - 1, qe.len() - pe.len()));
            pend -= 1;
        }

        // Greedy earliest embedding of the middle segments.
        for seg in &psegs[pi..pend] {
            loop {
                if ci >= chunks.len() {
                    return false;
                }
                if let Some(p) = chunks[ci][off..].find(seg.as_str()) {
                    off += p + seg.len();
                    break;
                }
                ci += 1;
                off = 0;
            }
        }

        // The reserved end segment must start at or after the embedding
        // frontier.
        if let Some((rc, roff)) = reserve {
            if ci > rc || (ci == rc && off > roff) {
                return false;
            }
        }
        true
    }
}

impl FromStr for Pattern {
    type Err = TypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Pattern::parse(s)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.segments.is_empty() {
            return f.write_str(if self.is_universal() { "*" } else { "" });
        }
        if !self.anchored_start {
            f.write_str("*")?;
        }
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                f.write_str("*")?;
            }
            f.write_str(seg)?;
        }
        if !self.anchored_end {
            f.write_str("*")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Pattern {
        Pattern::parse(s).unwrap()
    }

    #[test]
    fn parse_normalizes() {
        assert_eq!(p("*"), Pattern::universal());
        assert_eq!(p("**"), Pattern::universal());
        assert_eq!(p("a**b"), p("a*b"));
        assert_eq!(p(""), Pattern::literal(""));
        assert_eq!(p("abc"), Pattern::literal("abc"));
        assert_eq!(p("ab*"), Pattern::prefix("ab"));
        assert_eq!(p("*ab"), Pattern::suffix("ab"));
        assert_eq!(p("*ab*"), Pattern::substring("ab"));
    }

    #[test]
    fn display_roundtrips() {
        for s in ["*", "", "abc", "ab*", "*ab", "*ab*", "a*b*c", "N*SE"] {
            let pat = p(s);
            assert_eq!(p(&pat.to_string()), pat, "roundtrip of {s}");
        }
    }

    #[test]
    fn matches_literal() {
        assert!(p("abc").matches("abc"));
        assert!(!p("abc").matches("abcd"));
        assert!(!p("abc").matches("ab"));
        assert!(p("").matches(""));
        assert!(!p("").matches("x"));
    }

    #[test]
    fn matches_paper_examples() {
        // Fig. 3: exchange matches "N*SE"; Fig. 2 event has NYSE.
        assert!(p("N*SE").matches("NYSE"));
        assert!(p("N*SE").matches("NSE"));
        assert!(!p("N*SE").matches("NYSEX"));
        // Fig. 3: symbol >* OT (prefix); "OTE" matches.
        assert!(p("OT*").matches("OTE"));
        assert!(!p("OT*").matches("XOT"));
        // §3.1: "m*t" covers "microsoft" and "micronet".
        assert!(p("m*t").matches("microsoft"));
        assert!(p("m*t").matches("micronet"));
        assert!(p("m*t").matches("mt"));
        assert!(!p("m*t").matches("microsofts"));
    }

    #[test]
    fn matches_multi_wildcard() {
        let pat = p("a*b*c");
        assert!(pat.matches("abc"));
        assert!(pat.matches("aXbYc"));
        assert!(pat.matches("abbc"));
        assert!(!pat.matches("acb"));
        assert!(!pat.matches("ab"));
        assert!(p("*a*a*").matches("aa"));
        assert!(p("*a*a*").matches("xaxax"));
        assert!(!p("*a*a*").matches("a"));
    }

    #[test]
    fn matches_universal() {
        assert!(p("*").matches(""));
        assert!(p("*").matches("anything"));
    }

    #[test]
    fn matches_greedy_backtrack_free_pitfall() {
        // Greedy earliest placement must still find this: suffix anchor
        // reserves the tail before middles are placed.
        assert!(p("*ab*b").matches("abb"));
        assert!(!p("*ab*b").matches("ab"));
        assert!(p("a*ab").matches("aab"));
        assert!(!p("a*ab").matches("ab"));
    }

    #[test]
    fn covers_literal() {
        assert!(p("m*t").covers(&p("microsoft")));
        assert!(p("m*t").covers(&p("mt")));
        assert!(!p("m*t").covers(&p("mx")));
        assert!(!p("microsoft").covers(&p("m*t")));
        assert!(p("abc").covers(&p("abc")));
    }

    #[test]
    fn covers_universal() {
        assert!(p("*").covers(&p("a*b")));
        assert!(p("*").covers(&p("*")));
        assert!(!p("*a*").covers(&p("*")));
    }

    #[test]
    fn covers_prefix_suffix() {
        assert!(p("OT*").covers(&p("OTE*")));
        assert!(!p("OTE*").covers(&p("OT*")));
        assert!(p("*E").covers(&p("*TE")));
        assert!(!p("*TE").covers(&p("*E")));
        // Prefix does not cover suffix or vice versa.
        assert!(!p("OT*").covers(&p("*OT")));
        assert!(!p("*OT").covers(&p("OT*")));
    }

    #[test]
    fn covers_substring() {
        assert!(p("*a*").covers(&p("*ab*")));
        assert!(p("*a*").covers(&p("ab*")));
        assert!(p("*a*").covers(&p("*ba")));
        assert!(!p("*ab*").covers(&p("*a*b*")));
        assert!(p("*a*b*").covers(&p("*ab*")));
    }

    #[test]
    fn covers_adversarial_gap() {
        // q = "ab*cd": strings ab·X·cd. p = "abc*d" fails on X = "x".
        assert!(!p("abc*d").covers(&p("ab*cd")));
        assert!(p("ab*cd").covers(&p("ab*cd")));
        assert!(p("ab*d").covers(&p("ab*cd")));
        assert!(p("a*cd").covers(&p("ab*cd")));
        assert!(p("a*d").covers(&p("ab*cd")));
        // Segment spilling past an anchored prefix chunk.
        assert!(!p("abx*").covers(&p("ab*x*")));
    }

    #[test]
    fn covers_end_reservation_conflict() {
        // p = "*c*cd": needs a "c" strictly before the final "cd".
        assert!(!p("*c*cd").covers(&p("*acd")));
        assert!(p("*c*cd").covers(&p("*c*acd")));
        assert!(p("*c*d").covers(&p("*cxd")));
    }

    #[test]
    fn covers_is_reflexive() {
        for s in [
            "*", "", "abc", "ab*", "*ab", "*ab*", "a*b*c", "N*SE", "*a*a*",
        ] {
            assert!(p(s).covers(&p(s)), "reflexivity of {s}");
        }
    }

    #[test]
    fn covers_repeated_segments() {
        assert!(p("*a*a*").covers(&p("*aa*")));
        assert!(!p("*aa*").covers(&p("*a*a*")));
        assert!(p("*a*a*").covers(&p("*a*a*")));
        assert!(!p("*a*a*a*").covers(&p("*a*a*")));
    }

    #[test]
    fn covers_empty_literal() {
        assert!(p("*").covers(&p("")));
        assert!(!p("").covers(&p("*")));
        assert!(p("").covers(&p("")));
        assert!(!p("a*").covers(&p("")));
    }

    #[test]
    fn exhaustive_soundness_small_alphabet() {
        // For every pattern pair over {a,b} with ≤2 wildcards and short
        // segments, verify: covers(p, q) implies every string of length ≤ 6
        // matched by q is matched by p.
        let pats: Vec<Pattern> = [
            "*", "", "a", "b", "ab", "ba", "aa", "a*", "*a", "*a*", "b*", "*b", "*b*", "a*b",
            "b*a", "*a*b", "a*b*", "*a*b*", "ab*", "*ab", "*ab*", "aa*", "*aa*", "a*a", "*a*a*",
        ]
        .iter()
        .map(|s| p(s))
        .collect();
        let mut strings = vec![String::new()];
        let mut frontier = vec![String::new()];
        for _ in 0..6 {
            let mut next = Vec::new();
            for s in &frontier {
                for c in ['a', 'b'] {
                    next.push(format!("{s}{c}"));
                }
            }
            strings.extend(next.iter().cloned());
            frontier = next;
        }
        for pp in &pats {
            for qq in &pats {
                if pp.covers(qq) {
                    for s in &strings {
                        if qq.matches(s) {
                            assert!(
                                pp.matches(s),
                                "covers({pp}, {qq}) but {pp} rejects {s:?} matched by {qq}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn covers_transitive_spot_checks() {
        let a = p("*a*");
        let b = p("*ab*");
        let c = p("ab*c");
        assert!(a.covers(&b));
        assert!(b.covers(&c));
        assert!(a.covers(&c));
    }

    #[test]
    fn utf8_patterns() {
        assert!(p("α*ω").matches("αβγω"));
        assert!(!p("α*ω").matches("βγω"));
        assert!(p("α*").covers(&p("αβ*")));
    }

    #[test]
    fn wire_size_equals_rendered_length() {
        for text in [
            "*", "", "abc", "*abc", "abc*", "*abc*", "a*b", "*a*b*", "α*ω", "a**b", "NYSE",
        ] {
            let pat = p(text);
            assert_eq!(
                pat.wire_size(),
                pat.to_string().len(),
                "pattern {text:?} renders {:?}",
                pat.to_string()
            );
        }
        assert_eq!(Pattern::universal().wire_size(), 1);
        assert_eq!(Pattern::literal("").wire_size(), 0);
    }
}
