//! Subscription identifiers: the bit-packed `(c1, c2, c3)` ids of §3.2.
//!
//! A subscription id concatenates three components:
//!
//! * `c1` — the id of the broker owning the subscription, in
//!   `⌈log₂(brokers)⌉` bits;
//! * `c2` — the broker-local subscription number, in
//!   `⌈log₂(max outstanding subscriptions)⌉` bits;
//! * `c3` — one bit per schema attribute, set for attributes the
//!   subscription constrains.
//!
//! [`IdLayout`] fixes the widths for a system; [`SubscriptionId`] is the
//! decoded form. The layout's `encode`/`decode` pair is the wire format
//! used whenever ids travel inside summaries, and `byte_len` is the `s_id`
//! quantity of the paper's bandwidth equations.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TypeError;
use crate::schema::AttrId;

/// Identifier of a broker in the overlay (the `c1` component).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BrokerId(pub u16);

impl BrokerId {
    /// The broker's index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BrokerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Broker-local subscription number (the `c2` component).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LocalSubId(pub u32);

impl fmt::Display for LocalSubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A set of attribute ids as a 64-bit mask (the `c3` component).
///
/// # Example
///
/// ```
/// use subsum_types::{AttrMask, AttrId};
/// let mut m = AttrMask::empty();
/// m.set(AttrId(3));
/// m.set(AttrId(5));
/// assert_eq!(m.count(), 2);
/// assert!(m.contains(AttrId(3)));
/// assert!(!m.contains(AttrId(4)));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AttrMask(pub u64);

impl AttrMask {
    /// The empty mask.
    pub fn empty() -> Self {
        AttrMask(0)
    }

    /// Marks an attribute as present.
    pub fn set(&mut self, attr: AttrId) {
        debug_assert!(attr.index() < 64, "attribute id exceeds mask width");
        self.0 |= 1u64 << attr.index();
    }

    /// Tests whether an attribute is present.
    pub fn contains(self, attr: AttrId) -> bool {
        attr.index() < 64 && (self.0 >> attr.index()) & 1 == 1
    }

    /// The number of attributes present (the match counter target of the
    /// paper's Algorithm 1, step 2).
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over the present attribute ids in ascending order.
    pub fn iter(self) -> impl Iterator<Item = AttrId> {
        (0..64u16)
            .filter(move |i| (self.0 >> i) & 1 == 1)
            .map(AttrId)
    }
}

impl FromIterator<AttrId> for AttrMask {
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        let mut m = AttrMask::empty();
        for a in iter {
            m.set(a);
        }
        m
    }
}

impl fmt::Binary for AttrMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

/// A fully qualified subscription identifier `(c1, c2, c3)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SubscriptionId {
    /// `c1`: the broker the subscription belongs to.
    pub broker: BrokerId,
    /// `c2`: the subscription's number at that broker.
    pub local: LocalSubId,
    /// `c3`: the attributes the subscription constrains.
    pub mask: AttrMask,
}

impl SubscriptionId {
    /// Creates an id from its components.
    pub fn new(broker: BrokerId, local: LocalSubId, mask: AttrMask) -> Self {
        SubscriptionId {
            broker,
            local,
            mask,
        }
    }
}

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.broker, self.local)
    }
}

/// The bit layout of subscription ids for one system configuration.
///
/// Mirrors the paper's example (§3.2): a system with 4 brokers, 8
/// outstanding subscriptions per broker and 7 attributes packs ids into
/// 2 + 3 + 7 = 12 bits.
///
/// # Example
///
/// ```
/// use subsum_types::IdLayout;
/// let layout = IdLayout::new(4, 8, 7).unwrap();
/// assert_eq!(layout.bit_len(), 12);
/// assert_eq!(layout.byte_len(), 2);
/// let layout = IdLayout::new(1000, 1_000_000, 10).unwrap();
/// assert_eq!(layout.bit_len(), 10 + 20 + 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IdLayout {
    broker_bits: u32,
    local_bits: u32,
    attr_bits: u32,
}

/// Number of bits needed to represent `n` distinct values (⌈log₂ n⌉,
/// minimum 1).
fn bits_for(n: u64) -> u32 {
    if n <= 2 {
        1
    } else {
        64 - (n - 1).leading_zeros()
    }
}

impl IdLayout {
    /// Computes the layout for a system of `brokers` brokers, each holding
    /// at most `max_subs` outstanding subscriptions, over a schema of
    /// `attrs` attributes.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::TooManyAttributes`] if `attrs > 64`.
    pub fn new(brokers: u64, max_subs: u64, attrs: u32) -> Result<Self, TypeError> {
        if attrs > 64 {
            return Err(TypeError::TooManyAttributes(attrs as usize));
        }
        Ok(IdLayout {
            broker_bits: bits_for(brokers.max(1)),
            local_bits: bits_for(max_subs.max(1)),
            attr_bits: attrs,
        })
    }

    /// Width of `c1` in bits.
    pub fn broker_bits(&self) -> u32 {
        self.broker_bits
    }

    /// Width of `c2` in bits.
    pub fn local_bits(&self) -> u32 {
        self.local_bits
    }

    /// Width of `c3` in bits.
    pub fn attr_bits(&self) -> u32 {
        self.attr_bits
    }

    /// Total id width in bits.
    pub fn bit_len(&self) -> u32 {
        self.broker_bits + self.local_bits + self.attr_bits
    }

    /// Total id width in whole bytes — the `s_id` of the paper's
    /// bandwidth equations (Table 2 uses 4).
    pub fn byte_len(&self) -> usize {
        self.bit_len().div_ceil(8) as usize
    }

    /// Packs an id into an integer: `c1` in the most significant bits,
    /// then `c2`, then `c3` (attribute 0 in the least significant bit).
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::IdOverflow`] if a component exceeds its width.
    pub fn encode(&self, id: SubscriptionId) -> Result<u128, TypeError> {
        let broker = id.broker.0 as u64;
        if self.broker_bits < 64 && broker >= (1u64 << self.broker_bits) {
            return Err(TypeError::IdOverflow {
                component: "c1",
                value: broker,
                bits: self.broker_bits,
            });
        }
        let local = id.local.0 as u64;
        if self.local_bits < 64 && local >= (1u64 << self.local_bits) {
            return Err(TypeError::IdOverflow {
                component: "c2",
                value: local,
                bits: self.local_bits,
            });
        }
        let mask = id.mask.0;
        if self.attr_bits < 64 && mask >= (1u64 << self.attr_bits) {
            return Err(TypeError::IdOverflow {
                component: "c3",
                value: mask,
                bits: self.attr_bits,
            });
        }
        let mut packed: u128 = broker as u128;
        packed = (packed << self.local_bits) | local as u128;
        packed = (packed << self.attr_bits) | mask as u128;
        Ok(packed)
    }

    /// Unpacks an id packed by [`IdLayout::encode`].
    pub fn decode(&self, packed: u128) -> SubscriptionId {
        let attr_mask = low_bits(self.attr_bits);
        let local_mask = low_bits(self.local_bits);
        let mask = (packed & attr_mask) as u64;
        let local = ((packed >> self.attr_bits) & local_mask) as u64;
        let broker = (packed >> (self.attr_bits + self.local_bits)) as u64;
        SubscriptionId {
            broker: BrokerId(broker as u16),
            local: LocalSubId(local as u32),
            mask: AttrMask(mask),
        }
    }

    /// Serializes an id to exactly [`IdLayout::byte_len`] big-endian bytes.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::IdOverflow`] if a component exceeds its width.
    pub fn encode_bytes(&self, id: SubscriptionId, out: &mut Vec<u8>) -> Result<(), TypeError> {
        let packed = self.encode(id)?;
        let n = self.byte_len();
        for i in (0..n).rev() {
            out.push((packed >> (8 * i)) as u8);
        }
        Ok(())
    }

    /// Deserializes an id written by [`IdLayout::encode_bytes`].
    ///
    /// Returns `None` if fewer than [`IdLayout::byte_len`] bytes remain.
    pub fn decode_bytes(&self, bytes: &[u8]) -> Option<(SubscriptionId, usize)> {
        let n = self.byte_len();
        if bytes.len() < n {
            return None;
        }
        let mut packed: u128 = 0;
        // BOUND: bytes.len() >= n was checked above.
        for &b in &bytes[..n] {
            packed = (packed << 8) | b as u128;
        }
        Some((self.decode(packed), n))
    }
}

fn low_bits(bits: u32) -> u128 {
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_matches_paper_examples() {
        // §3.2: 1000 brokers → 10 bits; 1,000,000 subscriptions → 20 bits.
        assert_eq!(bits_for(1000), 10);
        assert_eq!(bits_for(1_000_000), 20);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(1024), 10);
        assert_eq!(bits_for(1025), 11);
    }

    #[test]
    fn paper_fig6_example() {
        // 4 brokers, 8 subscriptions, 7 attributes: subscription 1 at
        // broker 2 with attributes {3, 5, 6}.
        let layout = IdLayout::new(4, 8, 7).unwrap();
        assert_eq!(layout.broker_bits(), 2);
        assert_eq!(layout.local_bits(), 3);
        assert_eq!(layout.attr_bits(), 7);
        assert_eq!(layout.bit_len(), 12);
        let mask: AttrMask = [AttrId(3), AttrId(5), AttrId(6)].into_iter().collect();
        let id = SubscriptionId::new(BrokerId(2), LocalSubId(1), mask);
        let packed = layout.encode(id).unwrap();
        // c1=10, c2=001, c3=1101000 (attribute 0 least significant).
        #[allow(clippy::unusual_byte_groupings)] // grouped as c1_c2_c3
        let expected = 0b10_001_1101000;
        assert_eq!(packed, expected);
        assert_eq!(layout.decode(packed), id);
    }

    #[test]
    fn roundtrip_bytes() {
        let layout = IdLayout::new(24, 1000, 10).unwrap();
        let id = SubscriptionId::new(
            BrokerId(23),
            LocalSubId(999),
            [AttrId(0), AttrId(9)].into_iter().collect(),
        );
        let mut buf = Vec::new();
        layout.encode_bytes(id, &mut buf).unwrap();
        assert_eq!(buf.len(), layout.byte_len());
        let (decoded, consumed) = layout.decode_bytes(&buf).unwrap();
        assert_eq!(decoded, id);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn overflow_detected() {
        let layout = IdLayout::new(4, 8, 7).unwrap();
        let too_big_broker = SubscriptionId::new(BrokerId(4), LocalSubId(0), AttrMask::empty());
        assert!(matches!(
            layout.encode(too_big_broker),
            Err(TypeError::IdOverflow {
                component: "c1",
                ..
            })
        ));
        let too_big_local = SubscriptionId::new(BrokerId(0), LocalSubId(8), AttrMask::empty());
        assert!(matches!(
            layout.encode(too_big_local),
            Err(TypeError::IdOverflow {
                component: "c2",
                ..
            })
        ));
        let too_big_mask = SubscriptionId::new(BrokerId(0), LocalSubId(0), AttrMask(1 << 7));
        assert!(matches!(
            layout.encode(too_big_mask),
            Err(TypeError::IdOverflow {
                component: "c3",
                ..
            })
        ));
    }

    #[test]
    fn too_many_attrs_rejected() {
        assert!(IdLayout::new(4, 8, 65).is_err());
        assert!(IdLayout::new(4, 8, 64).is_ok());
    }

    #[test]
    fn mask_iter_and_count() {
        let mask: AttrMask = [AttrId(1), AttrId(5), AttrId(63)].into_iter().collect();
        assert_eq!(mask.count(), 3);
        let ids: Vec<u16> = mask.iter().map(|a| a.0).collect();
        assert_eq!(ids, vec![1, 5, 63]);
        assert!(mask.contains(AttrId(63)));
        assert!(!mask.contains(AttrId(0)));
    }

    #[test]
    fn decode_bytes_short_input() {
        let layout = IdLayout::new(24, 1000, 10).unwrap();
        assert!(layout.decode_bytes(&[0u8]).is_none());
    }

    #[test]
    fn table2_sid_is_four_bytes() {
        // Table 2: s_id = 4 bytes. With 24 brokers (5 bits), 1000
        // outstanding subscriptions (10 bits) and 10 attributes, ids pack
        // into 25 bits → 4 bytes.
        let layout = IdLayout::new(24, 1000, 10).unwrap();
        assert_eq!(layout.byte_len(), 4);
    }
}
