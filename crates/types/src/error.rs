//! Error types for schema, value and identifier construction.

use std::fmt;

/// Errors produced while building or validating schemata, events,
/// subscriptions and subscription identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TypeError {
    /// The attribute name is not defined in the schema.
    UnknownAttribute(String),
    /// An attribute was used with a value or operator of the wrong kind.
    KindMismatch {
        /// The attribute whose kind was violated.
        attribute: String,
        /// The kind declared in the schema.
        expected: crate::AttrKind,
    },
    /// The same attribute name was declared twice in a schema.
    DuplicateAttribute(String),
    /// A schema exceeded the supported number of attributes (64, the width
    /// of the `c3` attribute bit mask).
    TooManyAttributes(usize),
    /// A floating point value was NaN, which has no place in a total order.
    NanValue,
    /// A numeric identifier component does not fit in its configured bit
    /// width (see [`IdLayout`](crate::IdLayout)).
    IdOverflow {
        /// Which component overflowed (`"c1"`, `"c2"` or `"c3"`).
        component: &'static str,
        /// The value that did not fit.
        value: u64,
        /// The configured width in bits.
        bits: u32,
    },
    /// A subscription was built without any constraint.
    EmptySubscription,
    /// A string pattern was empty or otherwise malformed.
    InvalidPattern(String),
    /// A schema change was not an append-only extension of the current
    /// schema (dynamic evolution only widens the attribute list).
    NotAnExtension,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownAttribute(name) => {
                write!(f, "unknown attribute `{name}`")
            }
            TypeError::KindMismatch {
                attribute,
                expected,
            } => write!(
                f,
                "attribute `{attribute}` has kind {expected}, which does not accept this value or operator"
            ),
            TypeError::DuplicateAttribute(name) => {
                write!(f, "attribute `{name}` declared twice")
            }
            TypeError::TooManyAttributes(n) => {
                write!(f, "schema declares {n} attributes, more than the supported 64")
            }
            TypeError::NanValue => write!(f, "value is NaN, which is not a valid attribute value"),
            TypeError::IdOverflow {
                component,
                value,
                bits,
            } => write!(
                f,
                "id component {component} value {value} does not fit in {bits} bits"
            ),
            TypeError::EmptySubscription => {
                write!(f, "subscription has no constraints")
            }
            TypeError::InvalidPattern(p) => write!(f, "invalid string pattern `{p}`"),
            TypeError::NotAnExtension => {
                write!(f, "new schema is not an append-only extension of the current one")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<TypeError> = vec![
            TypeError::UnknownAttribute("x".into()),
            TypeError::DuplicateAttribute("x".into()),
            TypeError::TooManyAttributes(65),
            TypeError::NanValue,
            TypeError::IdOverflow {
                component: "c1",
                value: 9,
                bits: 3,
            },
            TypeError::EmptySubscription,
            TypeError::InvalidPattern("".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<TypeError>();
    }
}
