//! Minimal byte-level codec used by the summary wire format.
//!
//! The paper's bandwidth analysis (§5.1) counts exact byte sizes for the
//! summary structures. [`ByteWriter`] and [`ByteReader`] provide a small,
//! deterministic, length-accountable encoding layer over [`bytes`]
//! buffers; the summary codec in `subsum-core` builds on it.

use std::fmt;

use bytes::{Buf, BufMut, BytesMut};

/// Errors from [`ByteReader`] when the input is truncated or malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The input ended before a value could be read.
    UnexpectedEnd,
    /// A length prefix or enum tag had an invalid value.
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// An append-only byte sink with exact size accounting.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: BytesMut,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> bytes::Bytes {
        self.buf.freeze()
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Writes a big-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Writes a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Writes a big-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Writes a big-endian IEEE-754 `f64`.
    pub fn f64(&mut self, v: f64) {
        self.buf.put_f64(v);
    }

    /// Writes raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Writes a `u16`-length-prefixed string.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds 65535 bytes; summary string values are
    /// attribute names and pattern texts, far below the limit.
    pub fn str16(&mut self, v: &str) {
        assert!(v.len() <= u16::MAX as usize, "string too long for str16");
        self.u16(v.len() as u16);
        self.bytes(v.as_bytes());
    }
}

/// A cursor over encoded bytes; the mirror of [`ByteWriter`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let mut b = self.take(2)?;
        Ok(b.get_u16())
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let mut b = self.take(4)?;
        Ok(b.get_u32())
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut b = self.take(8)?;
        Ok(b.get_u64())
    }

    /// Reads a big-endian IEEE-754 `f64`.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        let mut b = self.take(8)?;
        Ok(b.get_f64())
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    pub fn str16(&mut self) -> Result<&'a str, DecodeError> {
        let n = self.u16()? as usize;
        let raw = self.take(n)?;
        std::str::from_utf8(raw).map_err(|_| DecodeError::Malformed("utf-8 string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.f64(8.40);
        w.str16("NYSE");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f64().unwrap(), 8.40);
        assert_eq!(r.str16().unwrap(), "NYSE");
        assert!(r.is_exhausted());
    }

    #[test]
    fn length_accounting_is_exact() {
        let mut w = ByteWriter::new();
        w.u8(1);
        assert_eq!(w.len(), 1);
        w.u32(1);
        assert_eq!(w.len(), 5);
        w.str16("abc");
        assert_eq!(w.len(), 5 + 2 + 3);
    }

    #[test]
    fn truncated_input_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.u32().unwrap_err(), DecodeError::UnexpectedEnd);
        // Reader is unchanged after a failed read of this kind.
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.u16().unwrap(), 0x0102);
    }

    #[test]
    fn invalid_utf8_errors() {
        let mut w = ByteWriter::new();
        w.u16(2);
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.str16(), Err(DecodeError::Malformed(_))));
    }
}
