//! Wire codec for raw subscriptions.
//!
//! Summaries have their own codec in `subsum-core`; this one serializes
//! *exact* subscriptions, used by (a) the baselines, which ship raw
//! subscriptions, and (b) broker state snapshots, which persist each
//! broker's exact store for recovery.
//!
//! Format (all integers big-endian):
//!
//! ```text
//! subscription := u16 n_constraints, constraint*
//! constraint   := u16 attr, u8 tag, operand
//! tag          := 0..=5 NumOp(Eq Ne Lt Le Gt Ge)  → f64 operand
//!               | 6 Str pattern                   → str16 rendered glob
//!               | 7 StrNe                         → str16 literal
//!
//! event        := u16 n_attrs, attr_value*
//! attr_value   := u16 attr, u8 kind, value
//! kind         := 0 Str → str16 | 1 Int → u64(two's complement)
//!               | 2 Float → f64 | 3 Date → u64(two's complement)
//! ```

use crate::codec::{ByteReader, ByteWriter, DecodeError};
use crate::constraint::{Constraint, NumOp, Predicate};
use crate::event::Event;
use crate::pattern::Pattern;
use crate::schema::AttrId;
use crate::subscription::Subscription;
use crate::value::Num;
use crate::value::Value;

/// Constraint wire tags. Each tag is written by exactly one encoder arm
/// and matched by name in the decoder; the `cargo xtask check` wire-tag
/// lint rejects a tag constant that is not referenced on both sides.
const TAG_NUM_EQ: u8 = 0;
const TAG_NUM_NE: u8 = 1;
const TAG_NUM_LT: u8 = 2;
const TAG_NUM_LE: u8 = 3;
const TAG_NUM_GT: u8 = 4;
const TAG_NUM_GE: u8 = 5;
const TAG_STR_PATTERN: u8 = 6;
const TAG_STR_NE: u8 = 7;

/// Event value kind tags, paired the same way.
const KIND_STR: u8 = 0;
const KIND_INT: u8 = 1;
const KIND_FLOAT: u8 = 2;
const KIND_DATE: u8 = 3;

impl Subscription {
    /// Serializes the subscription to `w`.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u16(self.constraints().len() as u16);
        for c in self.constraints() {
            w.u16(c.attr.0);
            match &c.pred {
                Predicate::Num(op, v) => {
                    let tag = match op {
                        NumOp::Eq => TAG_NUM_EQ,
                        NumOp::Ne => TAG_NUM_NE,
                        NumOp::Lt => TAG_NUM_LT,
                        NumOp::Le => TAG_NUM_LE,
                        NumOp::Gt => TAG_NUM_GT,
                        NumOp::Ge => TAG_NUM_GE,
                    };
                    w.u8(tag);
                    w.f64(v.get());
                }
                Predicate::Str(p) => {
                    w.u8(TAG_STR_PATTERN);
                    w.str16(&p.to_string());
                }
                Predicate::StrNe(s) => {
                    w.u8(TAG_STR_NE);
                    w.str16(s);
                }
            }
        }
    }

    /// Deserializes a subscription written by [`Subscription::encode`].
    ///
    /// The caller is responsible for schema validity (snapshots persist
    /// schema and subscriptions together).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Subscription, DecodeError> {
        let n = r.u16()? as usize;
        let mut constraints = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let attr = AttrId(r.u16()?);
            let tag = r.u8()?;
            let pred = match tag {
                TAG_NUM_EQ | TAG_NUM_NE | TAG_NUM_LT | TAG_NUM_LE | TAG_NUM_GT | TAG_NUM_GE => {
                    let op = match tag {
                        TAG_NUM_EQ => NumOp::Eq,
                        TAG_NUM_NE => NumOp::Ne,
                        TAG_NUM_LT => NumOp::Lt,
                        TAG_NUM_LE => NumOp::Le,
                        TAG_NUM_GT => NumOp::Gt,
                        _ => NumOp::Ge,
                    };
                    let v =
                        Num::new(r.f64()?).map_err(|_| DecodeError::Malformed("NaN operand"))?;
                    Predicate::Num(op, v)
                }
                TAG_STR_PATTERN => {
                    let text = r.str16()?;
                    let p =
                        Pattern::parse(text).map_err(|_| DecodeError::Malformed("glob pattern"))?;
                    Predicate::Str(p)
                }
                TAG_STR_NE => Predicate::StrNe(r.str16()?.to_owned()),
                _ => return Err(DecodeError::Malformed("constraint tag")),
            };
            constraints.push(Constraint { attr, pred });
        }
        Subscription::from_constraints(constraints)
            .map_err(|_| DecodeError::Malformed("empty subscription"))
    }
}

impl Event {
    /// Serializes the event to `w` — the payload brokers forward during
    /// event routing.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u16(self.len() as u16);
        for (attr, value) in self.iter() {
            w.u16(attr.0);
            match value {
                Value::Str(s) => {
                    w.u8(KIND_STR);
                    w.str16(s);
                }
                Value::Int(v) => {
                    w.u8(KIND_INT);
                    w.u64(*v as u64);
                }
                Value::Float(v) => {
                    w.u8(KIND_FLOAT);
                    w.f64(v.get());
                }
                Value::Date(v) => {
                    w.u8(KIND_DATE);
                    w.u64(*v as u64);
                }
            }
        }
    }

    /// Deserializes an event written by [`Event::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Event, DecodeError> {
        let n = r.u16()? as usize;
        let mut event = Event::default();
        for _ in 0..n {
            let attr = AttrId(r.u16()?);
            let value = match r.u8()? {
                KIND_STR => Value::Str(r.str16()?.to_owned()),
                KIND_INT => Value::Int(r.u64()? as i64),
                KIND_FLOAT => {
                    Value::float(r.f64()?).map_err(|_| DecodeError::Malformed("NaN event value"))?
                }
                KIND_DATE => Value::Date(r.u64()? as i64),
                _ => return Err(DecodeError::Malformed("value kind")),
            };
            event.set_raw(attr, value);
        }
        Ok(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::stock_schema;
    use crate::StrOp;

    fn roundtrip(sub: &Subscription) -> Subscription {
        let mut w = ByteWriter::new();
        sub.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = Subscription::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        decoded
    }

    #[test]
    fn roundtrip_mixed_constraints() {
        let schema = stock_schema();
        let sub = Subscription::builder(&schema)
            .str_pattern("exchange", "N*SE")
            .unwrap()
            .str_op("symbol", StrOp::Ne, "IBM")
            .unwrap()
            .num("price", NumOp::Lt, 8.70)
            .unwrap()
            .num("price", NumOp::Gt, 8.30)
            .unwrap()
            .num("volume", NumOp::Ge, 130000.0)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(roundtrip(&sub), sub);
    }

    #[test]
    fn roundtrip_all_num_ops() {
        let schema = stock_schema();
        for op in [
            NumOp::Eq,
            NumOp::Ne,
            NumOp::Lt,
            NumOp::Le,
            NumOp::Gt,
            NumOp::Ge,
        ] {
            let sub = Subscription::builder(&schema)
                .num("price", op, -3.25)
                .unwrap()
                .build()
                .unwrap();
            assert_eq!(roundtrip(&sub), sub);
        }
    }

    #[test]
    fn roundtrip_all_str_ops() {
        let schema = stock_schema();
        for op in [
            StrOp::Eq,
            StrOp::Ne,
            StrOp::Prefix,
            StrOp::Suffix,
            StrOp::Contains,
        ] {
            let sub = Subscription::builder(&schema)
                .str_op("symbol", op, "OT")
                .unwrap()
                .build()
                .unwrap();
            assert_eq!(roundtrip(&sub), sub);
        }
    }

    #[test]
    fn event_roundtrip() {
        use crate::event::Event;
        let schema = stock_schema();
        let e = Event::builder(&schema)
            .str("exchange", "NYSE")
            .unwrap()
            .str("symbol", "OTE")
            .unwrap()
            .date("when", 1_057_055_125)
            .unwrap()
            .num("price", 8.40)
            .unwrap()
            .int("volume", -5)
            .unwrap()
            .build();
        let mut w = ByteWriter::new();
        e.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = Event::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(decoded, e);
    }

    #[test]
    fn event_bad_input_rejected() {
        use crate::event::Event;
        let mut w = ByteWriter::new();
        w.u16(1);
        w.u16(0);
        w.u8(9); // bad kind
        let bytes = w.into_bytes();
        assert!(Event::decode(&mut ByteReader::new(&bytes)).is_err());
        assert!(Event::decode(&mut ByteReader::new(&[0])).is_err());
    }

    #[test]
    fn bad_input_rejected() {
        // Bad tag.
        let mut w = ByteWriter::new();
        w.u16(1);
        w.u16(0);
        w.u8(99);
        let bytes = w.into_bytes();
        assert!(Subscription::decode(&mut ByteReader::new(&bytes)).is_err());
        // Truncation.
        let schema = stock_schema();
        let sub = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 1.0)
            .unwrap()
            .build()
            .unwrap();
        let mut w = ByteWriter::new();
        sub.encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(Subscription::decode(&mut ByteReader::new(&bytes[..cut])).is_err());
        }
        // Zero constraints.
        let mut w = ByteWriter::new();
        w.u16(0);
        let bytes = w.into_bytes();
        assert!(Subscription::decode(&mut ByteReader::new(&bytes)).is_err());
    }
}
