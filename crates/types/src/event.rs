//! Events: untyped sets of typed attribute–value pairs (paper §2.1, Fig. 2).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TypeError;
use crate::schema::{AttrId, Schema};
use crate::value::{Num, Value};

/// A published event: a set of attribute values conforming to a [`Schema`].
///
/// An event may carry any subset of the schema's attributes — matching
/// against subscriptions only requires that every *subscription* attribute
/// be present and satisfied; events may carry more (paper §2.1).
///
/// # Example
///
/// ```
/// use subsum_types::{Schema, AttrKind, Event};
/// # fn main() -> Result<(), subsum_types::TypeError> {
/// let schema = Schema::builder()
///     .attr("symbol", AttrKind::String)?
///     .attr("price", AttrKind::Float)?
///     .build();
/// let event = Event::builder(&schema)
///     .str("symbol", "OTE")?
///     .num("price", 8.40)?
///     .build();
/// assert_eq!(event.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Event {
    attrs: BTreeMap<AttrId, Value>,
}

impl Event {
    /// Starts building an event against `schema`.
    pub fn builder(schema: &Schema) -> EventBuilder<'_> {
        EventBuilder {
            schema,
            attrs: BTreeMap::new(),
        }
    }

    /// The value of attribute `attr`, if present.
    pub fn get(&self, attr: AttrId) -> Option<&Value> {
        self.attrs.get(&attr)
    }

    /// The number of attributes carried.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Returns `true` if the event carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over `(attribute, value)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Value)> {
        self.attrs.iter().map(|(k, v)| (*k, v))
    }

    /// Sets an attribute value without schema validation (decoder
    /// internals; snapshots and wire input carry their schema alongside).
    pub(crate) fn set_raw(&mut self, attr: AttrId, value: Value) {
        self.attrs.insert(attr, value);
    }

    /// The event's size in bytes under the paper's accounting model
    /// (§5.1): per attribute, the name length plus the value size
    /// (strings one byte per character, arithmetic values `arith_width`).
    pub fn wire_size(&self, schema: &Schema, arith_width: usize) -> usize {
        self.attrs
            .iter()
            .map(|(id, v)| schema.spec(*id).name.len() + v.wire_size(arith_width))
            .sum()
    }
}

/// Incremental [`Event`] construction; see [`Event::builder`].
#[derive(Debug)]
pub struct EventBuilder<'a> {
    schema: &'a Schema,
    attrs: BTreeMap<AttrId, Value>,
}

impl EventBuilder<'_> {
    /// Sets a string attribute.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::UnknownAttribute`] for undeclared names and
    /// [`TypeError::KindMismatch`] for non-string attributes.
    pub fn str(self, name: &str, value: impl Into<String>) -> Result<Self, TypeError> {
        self.set(name, Value::Str(value.into()))
    }

    /// Sets an arithmetic attribute from a float, coercing to the
    /// attribute's declared kind (integer and date values are rounded).
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::UnknownAttribute`], [`TypeError::KindMismatch`]
    /// for string attributes, or [`TypeError::NanValue`].
    pub fn num(self, name: &str, value: f64) -> Result<Self, TypeError> {
        let id = self.schema.require(name)?;
        let v = match self.schema.kind(id) {
            crate::schema::AttrKind::Integer => Value::Int(value.round() as i64),
            crate::schema::AttrKind::Date => Value::Date(value.round() as i64),
            crate::schema::AttrKind::Float => Value::Float(Num::new(value)?),
            crate::schema::AttrKind::String => {
                return Err(TypeError::KindMismatch {
                    attribute: name.to_owned(),
                    expected: crate::schema::AttrKind::String,
                })
            }
        };
        self.set_id(id, v)
    }

    /// Sets an integer attribute.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::UnknownAttribute`] or [`TypeError::KindMismatch`].
    pub fn int(self, name: &str, value: i64) -> Result<Self, TypeError> {
        self.set(name, Value::Int(value))
    }

    /// Sets a date attribute (epoch seconds).
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::UnknownAttribute`] or [`TypeError::KindMismatch`].
    pub fn date(self, name: &str, epoch_seconds: i64) -> Result<Self, TypeError> {
        self.set(name, Value::Date(epoch_seconds))
    }

    /// Sets an attribute from a pre-built [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::UnknownAttribute`] or [`TypeError::KindMismatch`].
    pub fn set(self, name: &str, value: Value) -> Result<Self, TypeError> {
        let id = self.schema.require(name)?;
        if !self.schema.kind(id).accepts(&value) {
            return Err(TypeError::KindMismatch {
                attribute: name.to_owned(),
                expected: self.schema.kind(id),
            });
        }
        self.set_id(id, value)
    }

    /// Sets an attribute by id without a kind check (the caller guarantees
    /// the value kind; used by generators on hot paths).
    pub fn set_id(mut self, id: AttrId, value: Value) -> Result<Self, TypeError> {
        self.attrs.insert(id, value);
        Ok(self)
    }

    /// Finalizes the event.
    pub fn build(self) -> Event {
        Event { attrs: self.attrs }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (id, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{id}={v}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::stock_schema;

    #[test]
    fn builds_paper_fig2_event() {
        let schema = stock_schema();
        let e = Event::builder(&schema)
            .str("exchange", "NYSE")
            .unwrap()
            .str("symbol", "OTE")
            .unwrap()
            .date("when", 1057055125)
            .unwrap()
            .num("price", 8.40)
            .unwrap()
            .int("volume", 132700)
            .unwrap()
            .num("high", 8.80)
            .unwrap()
            .num("low", 8.22)
            .unwrap()
            .build();
        assert_eq!(e.len(), 7);
        let price = schema.attr_id("price").unwrap();
        assert_eq!(e.get(price).unwrap().as_num(), Num::new(8.40).ok());
    }

    #[test]
    fn unknown_attribute_rejected() {
        let schema = stock_schema();
        let err = Event::builder(&schema).str("nope", "x").unwrap_err();
        assert_eq!(err, TypeError::UnknownAttribute("nope".into()));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let schema = stock_schema();
        assert!(Event::builder(&schema).int("symbol", 3).is_err());
        assert!(Event::builder(&schema).str("price", "8.4").is_err());
        assert!(Event::builder(&schema).num("symbol", 1.0).is_err());
    }

    #[test]
    fn num_coerces_to_declared_kind() {
        let schema = stock_schema();
        let e = Event::builder(&schema)
            .num("volume", 132700.4)
            .unwrap()
            .num("when", 100.0)
            .unwrap()
            .build();
        let volume = schema.attr_id("volume").unwrap();
        let when = schema.attr_id("when").unwrap();
        assert_eq!(e.get(volume), Some(&Value::Int(132700)));
        assert_eq!(e.get(when), Some(&Value::Date(100)));
    }

    #[test]
    fn wire_size_counts_names_and_values() {
        let schema = stock_schema();
        let e = Event::builder(&schema)
            .str("exchange", "NYSE")
            .unwrap()
            .num("price", 8.40)
            .unwrap()
            .build();
        // "exchange"(8) + "NYSE"(4) + "price"(5) + 4 = 21.
        assert_eq!(e.wire_size(&schema, 4), 21);
    }

    #[test]
    fn iter_in_schema_order() {
        let schema = stock_schema();
        let e = Event::builder(&schema)
            .num("price", 1.0)
            .unwrap()
            .str("exchange", "N")
            .unwrap()
            .build();
        let ids: Vec<_> = e.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 3]);
    }
}
