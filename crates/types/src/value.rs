//! Attribute values: totally ordered numbers and the [`Value`] enum.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TypeError;

/// A finite, totally ordered numeric value.
///
/// All arithmetic attribute kinds (`Integer`, `Float`, `Date`) are
/// normalized to `Num` inside summary structures, which need a total order
/// to maintain the AACS sub-range partition of the paper's §3.1. `Num`
/// rejects NaN at construction so that `Ord`, `Eq` and `Hash` are lawful.
///
/// Integers are represented exactly up to 2⁵³ in magnitude (the mantissa
/// width of an IEEE-754 double); the paper's workloads use values far below
/// this bound.
///
/// # Example
///
/// ```
/// use subsum_types::Num;
/// let a = Num::new(8.30).unwrap();
/// let b = Num::new(8.70).unwrap();
/// assert!(a < b);
/// assert!(Num::new(f64::NAN).is_err());
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Num(f64);

impl Num {
    /// Zero.
    pub const ZERO: Num = Num(0.0);

    /// Creates a `Num` from a finite or infinite float.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::NanValue`] if `v` is NaN.
    pub fn new(v: f64) -> Result<Self, TypeError> {
        if v.is_nan() {
            Err(TypeError::NanValue)
        } else {
            // Normalize -0.0 to 0.0 so Eq/Hash agree with Ord.
            Ok(Num(if v == 0.0 { 0.0 } else { v }))
        }
    }

    /// Returns the raw floating point value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<i64> for Num {
    fn from(v: i64) -> Self {
        Num(v as f64)
    }
}

impl From<i32> for Num {
    fn from(v: i32) -> Self {
        Num(v as f64)
    }
}

impl From<u32> for Num {
    fn from(v: u32) -> Self {
        Num(v as f64)
    }
}

impl TryFrom<f64> for Num {
    type Error = TypeError;

    fn try_from(v: f64) -> Result<Self, TypeError> {
        Num::new(v)
    }
}

impl PartialEq for Num {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Num {}

impl PartialOrd for Num {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Num {
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN is excluded and -0.0 normalized at construction, so IEEE
        // total order coincides with numeric order here.
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for Num {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // -0.0 normalized at construction, so bit equality matches Eq.
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for Num {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A typed attribute value carried by events and constraints.
///
/// The variants mirror the primitive attribute kinds of the paper's event
/// schema (Fig. 2): strings, integers, floats and dates. Dates are
/// represented as seconds since the Unix epoch and behave as arithmetic
/// values throughout the system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A UTF-8 string value.
    Str(String),
    /// A 64-bit signed integer value.
    Int(i64),
    /// A finite floating point value.
    Float(Num),
    /// A date, in seconds since the Unix epoch.
    Date(i64),
}

impl Value {
    /// Creates a float value.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::NanValue`] if `v` is NaN.
    pub fn float(v: f64) -> Result<Self, TypeError> {
        Ok(Value::Float(Num::new(v)?))
    }

    /// Returns the value as a totally ordered number, if it is arithmetic.
    ///
    /// Strings return `None`.
    pub fn as_num(&self) -> Option<Num> {
        match self {
            Value::Str(_) => None,
            Value::Int(v) | Value::Date(v) => Some(Num::from(*v)),
            Value::Float(v) => Some(*v),
        }
    }

    /// Returns the value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if the value is arithmetic (integer, float or date).
    pub fn is_arithmetic(&self) -> bool {
        !matches!(self, Value::Str(_))
    }

    /// The encoded size of this value in bytes, as accounted by the paper's
    /// bandwidth model (§5.1): strings cost one byte per character
    /// (`s_sv`), arithmetic values cost the storage size of their type
    /// (`s_st`, 4 bytes by default in Table 2... dates and 64-bit integers
    /// are clamped to the configured arithmetic width).
    pub fn wire_size(&self, arith_width: usize) -> usize {
        match self {
            Value::Str(s) => s.len(),
            _ => arith_width,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<Num> for Value {
    fn from(v: Num) -> Self {
        Value::Float(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Date(v) => write!(f, "@{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn num_rejects_nan() {
        assert_eq!(Num::new(f64::NAN).unwrap_err(), TypeError::NanValue);
    }

    #[test]
    fn num_accepts_infinities() {
        assert!(Num::new(f64::INFINITY).is_ok());
        assert!(Num::new(f64::NEG_INFINITY).unwrap() < Num::ZERO);
    }

    #[test]
    fn num_total_order() {
        let mut v = [
            Num::new(3.5).unwrap(),
            Num::new(-1.0).unwrap(),
            Num::ZERO,
            Num::new(f64::INFINITY).unwrap(),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|n| n.get()).collect::<Vec<_>>(),
            vec![-1.0, 0.0, 3.5, f64::INFINITY]
        );
    }

    #[test]
    fn negative_zero_normalizes() {
        let a = Num::new(0.0).unwrap();
        let b = Num::new(-0.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn value_as_num_for_arithmetic_kinds() {
        assert_eq!(Value::Int(42).as_num(), Some(Num::from(42i64)));
        assert_eq!(Value::Date(100).as_num(), Some(Num::from(100i64)));
        assert_eq!(
            Value::float(1.5).unwrap().as_num(),
            Some(Num::new(1.5).unwrap())
        );
        assert_eq!(Value::from("x").as_num(), None);
    }

    #[test]
    fn value_wire_size() {
        assert_eq!(Value::from("NYSE").wire_size(4), 4);
        assert_eq!(Value::from("microsoft").wire_size(4), 9);
        assert_eq!(Value::Int(7).wire_size(4), 4);
        assert_eq!(Value::Date(7).wire_size(8), 8);
    }

    #[test]
    fn value_display_nonempty() {
        for v in [
            Value::from(""),
            Value::Int(0),
            Value::float(0.0).unwrap(),
            Value::Date(0),
        ] {
            assert!(!format!("{v}").is_empty());
        }
    }
}
