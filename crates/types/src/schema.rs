//! Attribute schemata: the ordered, system-wide set of typed attributes.
//!
//! The paper (§3) assumes that (i) a named attribute has a single data
//! type, (ii) the set of attributes is predefined, and (iii) the set is
//! ordered and known to every broker. [`Schema`] captures exactly this
//! contract: an immutable, ordered list of `(name, kind)` pairs shared by
//! all brokers of a system.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::TypeError;
use crate::value::Value;

/// Maximum number of attributes per schema, fixed by the width of the
/// `c3` attribute bit mask (see [`AttrMask`](crate::AttrMask)).
pub const MAX_ATTRIBUTES: usize = 64;

/// The primitive kind of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrKind {
    /// UTF-8 string, summarized via SACS.
    String,
    /// 64-bit signed integer, summarized via AACS.
    Integer,
    /// Finite 64-bit float, summarized via AACS.
    Float,
    /// Date (epoch seconds), summarized via AACS.
    Date,
}

impl AttrKind {
    /// Returns `true` for kinds summarized by the arithmetic structure
    /// (AACS): integers, floats and dates.
    pub fn is_arithmetic(self) -> bool {
        !matches!(self, AttrKind::String)
    }

    /// Returns `true` if `value` is acceptable for this kind.
    pub fn accepts(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (AttrKind::String, Value::Str(_))
                | (AttrKind::Integer, Value::Int(_))
                | (AttrKind::Float, Value::Float(_))
                | (AttrKind::Date, Value::Date(_))
        )
    }
}

impl fmt::Display for AttrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrKind::String => "string",
            AttrKind::Integer => "integer",
            AttrKind::Float => "float",
            AttrKind::Date => "date",
        };
        f.write_str(s)
    }
}

/// Index of an attribute within its [`Schema`] (position in the ordered
/// attribute list). Doubles as the attribute's bit position in the `c3`
/// component of subscription ids.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The attribute's position as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The declaration of a single attribute: name and kind.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttributeSpec {
    /// The attribute's unique name.
    pub name: String,
    /// The attribute's primitive kind.
    pub kind: AttrKind,
}

/// An immutable, ordered attribute schema shared by every broker.
///
/// Cheap to clone (`Arc` internally). Build with [`Schema::builder`].
///
/// # Example
///
/// ```
/// use subsum_types::{Schema, AttrKind};
/// # fn main() -> Result<(), subsum_types::TypeError> {
/// let schema = Schema::builder()
///     .attr("symbol", AttrKind::String)?
///     .attr("price", AttrKind::Float)?
///     .build();
/// assert_eq!(schema.len(), 2);
/// let price = schema.attr_id("price").unwrap();
/// assert!(schema.spec(price).kind.is_arithmetic());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug)]
struct SchemaInner {
    attrs: Vec<AttributeSpec>,
    by_name: HashMap<String, AttrId>,
}

impl Serialize for Schema {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.inner.attrs.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Schema {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let attrs = Vec::<AttributeSpec>::deserialize(deserializer)?;
        let mut b = Schema::builder();
        for a in attrs {
            b = b.attr(a.name, a.kind).map_err(serde::de::Error::custom)?;
        }
        Ok(b.build())
    }
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder { attrs: Vec::new() }
    }

    /// The number of attributes.
    pub fn len(&self) -> usize {
        self.inner.attrs.len()
    }

    /// Returns `true` if the schema declares no attributes.
    pub fn is_empty(&self) -> bool {
        self.inner.attrs.is_empty()
    }

    /// Looks up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.inner.by_name.get(name).copied()
    }

    /// Looks up an attribute id by name, or errors.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::UnknownAttribute`] if the name is undeclared.
    pub fn require(&self, name: &str) -> Result<AttrId, TypeError> {
        self.attr_id(name)
            .ok_or_else(|| TypeError::UnknownAttribute(name.to_owned()))
    }

    /// The declaration for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this schema.
    pub fn spec(&self, id: AttrId) -> &AttributeSpec {
        &self.inner.attrs[id.index()]
    }

    /// The kind of attribute `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this schema.
    pub fn kind(&self, id: AttrId) -> AttrKind {
        self.spec(id).kind
    }

    /// Iterates over `(id, spec)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttributeSpec)> {
        self.inner
            .attrs
            .iter()
            .enumerate()
            .map(|(i, s)| (AttrId(i as u16), s))
    }

    /// Iterates over the ids of arithmetic attributes.
    pub fn arithmetic_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.iter()
            .filter(|(_, s)| s.kind.is_arithmetic())
            .map(|(id, _)| id)
    }

    /// Iterates over the ids of string attributes.
    pub fn string_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.iter()
            .filter(|(_, s)| !s.kind.is_arithmetic())
            .map(|(id, _)| id)
    }

    /// Structural equality check used to verify that two brokers share a
    /// schema before exchanging summaries.
    pub fn is_compatible(&self, other: &Schema) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.attrs == other.inner.attrs
    }

    /// Returns `true` if `self` extends `base`: same attributes in the
    /// same order, possibly with more appended. Append-only extension is
    /// the paper's dynamic-schema evolution (§6): existing attribute ids
    /// and `c3` masks stay valid; only the mask widens.
    pub fn is_extension_of(&self, base: &Schema) -> bool {
        self.inner.attrs.len() >= base.inner.attrs.len()
            && self.inner.attrs[..base.inner.attrs.len()] == base.inner.attrs[..]
    }

    /// Starts building an extended schema containing all of this schema's
    /// attributes; see [`Schema::is_extension_of`].
    ///
    /// # Example
    ///
    /// ```
    /// use subsum_types::{Schema, AttrKind};
    /// # fn main() -> Result<(), subsum_types::TypeError> {
    /// let v1 = Schema::builder().attr("price", AttrKind::Float)?.build();
    /// let v2 = v1.to_builder().attr("currency", AttrKind::String)?.build();
    /// assert!(v2.is_extension_of(&v1));
    /// assert_eq!(v2.attr_id("price"), v1.attr_id("price"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_builder(&self) -> SchemaBuilder {
        SchemaBuilder {
            attrs: self.inner.attrs.clone(),
        }
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.is_compatible(other)
    }
}

impl Eq for Schema {}

/// Incremental [`Schema`] construction; see [`Schema::builder`].
#[derive(Debug)]
pub struct SchemaBuilder {
    attrs: Vec<AttributeSpec>,
}

impl SchemaBuilder {
    /// Declares an attribute.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::DuplicateAttribute`] if `name` repeats, or
    /// [`TypeError::TooManyAttributes`] past [`MAX_ATTRIBUTES`].
    pub fn attr(mut self, name: impl Into<String>, kind: AttrKind) -> Result<Self, TypeError> {
        let name = name.into();
        if self.attrs.iter().any(|a| a.name == name) {
            return Err(TypeError::DuplicateAttribute(name));
        }
        if self.attrs.len() >= MAX_ATTRIBUTES {
            return Err(TypeError::TooManyAttributes(self.attrs.len() + 1));
        }
        self.attrs.push(AttributeSpec { name, kind });
        Ok(self)
    }

    /// Finalizes the schema.
    pub fn build(self) -> Schema {
        let by_name = self
            .attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), AttrId(i as u16)))
            .collect();
        Schema {
            inner: Arc::new(SchemaInner {
                attrs: self.attrs,
                by_name,
            }),
        }
    }
}

/// The stock-quote schema used throughout the paper's examples
/// (Fig. 2): `exchange`, `symbol`, `when`, `price`, `volume`, `high`,
/// `low`.
pub fn stock_schema() -> Schema {
    Schema::builder()
        .attr("exchange", AttrKind::String)
        .and_then(|b| b.attr("symbol", AttrKind::String))
        .and_then(|b| b.attr("when", AttrKind::Date))
        .and_then(|b| b.attr("price", AttrKind::Float))
        .and_then(|b| b.attr("volume", AttrKind::Integer))
        .and_then(|b| b.attr("high", AttrKind::Float))
        .and_then(|b| b.attr("low", AttrKind::Float))
        .expect("stock schema is valid")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_and_indexes() {
        let s = stock_schema();
        assert_eq!(s.len(), 7);
        assert_eq!(s.attr_id("exchange"), Some(AttrId(0)));
        assert_eq!(s.attr_id("low"), Some(AttrId(6)));
        assert_eq!(s.attr_id("nope"), None);
        assert_eq!(s.spec(AttrId(3)).name, "price");
        assert_eq!(s.kind(AttrId(3)), AttrKind::Float);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Schema::builder()
            .attr("a", AttrKind::Float)
            .unwrap()
            .attr("a", AttrKind::String)
            .unwrap_err();
        assert_eq!(err, TypeError::DuplicateAttribute("a".into()));
    }

    #[test]
    fn too_many_attributes_rejected() {
        let mut b = Schema::builder();
        for i in 0..MAX_ATTRIBUTES {
            b = b.attr(format!("a{i}"), AttrKind::Float).unwrap();
        }
        let err = b.attr("overflow", AttrKind::Float).unwrap_err();
        assert!(matches!(err, TypeError::TooManyAttributes(_)));
    }

    #[test]
    fn arithmetic_and_string_partitions() {
        let s = stock_schema();
        let arith: Vec<_> = s.arithmetic_attrs().collect();
        let strs: Vec<_> = s.string_attrs().collect();
        assert_eq!(arith.len(), 5);
        assert_eq!(strs.len(), 2);
        assert_eq!(arith.len() + strs.len(), s.len());
    }

    #[test]
    fn kind_accepts_values() {
        use crate::Value;
        assert!(AttrKind::String.accepts(&Value::from("x")));
        assert!(!AttrKind::String.accepts(&Value::Int(1)));
        assert!(AttrKind::Integer.accepts(&Value::Int(1)));
        assert!(AttrKind::Float.accepts(&Value::float(1.0).unwrap()));
        assert!(!AttrKind::Float.accepts(&Value::Int(1)));
        assert!(AttrKind::Date.accepts(&Value::Date(0)));
    }

    #[test]
    fn compatibility_is_structural() {
        let a = stock_schema();
        let b = stock_schema();
        assert!(a.is_compatible(&b));
        assert_eq!(a, b);
        let c = Schema::builder()
            .attr("x", AttrKind::Float)
            .unwrap()
            .build();
        assert!(!a.is_compatible(&c));
    }

    #[test]
    fn extension_semantics() {
        let v1 = stock_schema();
        let v2 = v1
            .to_builder()
            .attr("currency", AttrKind::String)
            .unwrap()
            .build();
        assert!(v2.is_extension_of(&v1));
        assert!(v1.is_extension_of(&v1));
        assert!(!v1.is_extension_of(&v2));
        assert_eq!(v2.len(), v1.len() + 1);
        // Existing ids unchanged.
        for (id, spec) in v1.iter() {
            assert_eq!(v2.attr_id(&spec.name), Some(id));
        }
        // A reordered schema is not an extension.
        let other = Schema::builder()
            .attr("symbol", AttrKind::String)
            .unwrap()
            .attr("exchange", AttrKind::String)
            .unwrap()
            .build();
        assert!(!other.is_extension_of(&v1));
    }

    #[test]
    fn clone_is_cheap_and_shared() {
        let a = stock_schema();
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }
}
