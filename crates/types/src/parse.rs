//! A textual query language for subscriptions.
//!
//! The paper motivates content-based subscriptions with queries such as
//! *"give me the price of stock A when the price of stock B is less than
//! X"* (§2.1). This module provides the parser turning such filters into
//! [`Subscription`]s:
//!
//! ```text
//! symbol == "OTE" && price > 8.30 && price < 8.70 && exchange ~ "N*SE"
//! source prefix "reuters" and headline contains "market"
//! ```
//!
//! Grammar (conjunctions only, as in the paper's model):
//!
//! ```text
//! subscription := predicate ( ("&&" | "and") predicate )*
//! predicate    := IDENT op value
//! op           := "==" | "=" | "!=" | "<" | "<=" | ">" | ">="
//!               | "~" | "prefix" | "suffix" | "contains"
//! value        := NUMBER | STRING    (single or double quoted)
//! ```
//!
//! `~` takes a glob pattern (`N*SE`); `prefix`, `suffix` and `contains`
//! are the paper's `>*`, `*<` and `*` string operators.

use std::fmt;

use crate::constraint::{NumOp, StrOp};
use crate::error::TypeError;
use crate::schema::Schema;
use crate::subscription::{Subscription, SubscriptionBuilder};

/// Errors from [`Subscription::parse_query`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueryError {
    /// A lexical or grammatical problem at the given byte offset.
    Syntax {
        /// Byte offset into the query text.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// The query was well-formed but violated the schema (unknown
    /// attribute, operator/kind mismatch, …).
    Type(TypeError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Syntax { position, message } => {
                write!(f, "query syntax error at byte {position}: {message}")
            }
            QueryError::Type(e) => write!(f, "query type error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<TypeError> for QueryError {
    fn from(e: TypeError) -> Self {
        QueryError::Type(e)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    Op(&'static str),
    And,
}

struct Lexer<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer { text, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Syntax {
            position: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.text.len() - trimmed.len();
    }

    fn next(&mut self) -> Result<Option<(usize, Token)>, QueryError> {
        self.skip_ws();
        let start = self.pos;
        let rest = self.rest();
        let Some(c) = rest.chars().next() else {
            return Ok(None);
        };
        // Multi-char operators first.
        for op in ["&&", "==", "!=", "<=", ">="] {
            if rest.starts_with(op) {
                self.pos += op.len();
                let tok = if op == "&&" {
                    Token::And
                } else {
                    Token::Op(match op {
                        "==" => "=",
                        other => other,
                    })
                };
                return Ok(Some((start, tok)));
            }
        }
        match c {
            '=' | '<' | '>' | '~' => {
                self.pos += 1;
                let op = match c {
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    _ => "~",
                };
                Ok(Some((start, Token::Op(op))))
            }
            '"' | '\'' => {
                let quote = c;
                let body = &rest[1..];
                match body.find(quote) {
                    Some(end) => {
                        let value = body[..end].to_owned();
                        self.pos += end + 2;
                        Ok(Some((start, Token::Str(value))))
                    }
                    None => Err(self.error("unterminated string literal")),
                }
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
                let len = rest
                    .char_indices()
                    .take_while(|&(i, ch)| {
                        ch.is_ascii_digit()
                            || ch == '.'
                            || ch == 'e'
                            || ch == 'E'
                            || ((ch == '-' || ch == '+')
                                && (i == 0 || matches!(rest.as_bytes()[i - 1], b'e' | b'E')))
                    })
                    .map(|(i, ch)| i + ch.len_utf8())
                    .last()
                    .unwrap_or(0);
                let raw = &rest[..len];
                let value: f64 = raw
                    .parse()
                    .map_err(|_| self.error(format!("invalid number `{raw}`")))?;
                self.pos += len;
                Ok(Some((start, Token::Number(value))))
            }
            c if c.is_alphabetic() || c == '_' => {
                let len = rest
                    .char_indices()
                    .take_while(|&(_, ch)| ch.is_alphanumeric() || ch == '_')
                    .map(|(i, ch)| i + ch.len_utf8())
                    .last()
                    .unwrap_or(0);
                let word = &rest[..len];
                self.pos += len;
                let tok = match word {
                    "and" | "AND" => Token::And,
                    "prefix" => Token::Op("prefix"),
                    "suffix" => Token::Op("suffix"),
                    "contains" => Token::Op("contains"),
                    _ => Token::Ident(word.to_owned()),
                };
                Ok(Some((start, tok)))
            }
            other => Err(self.error(format!("unexpected character `{other}`"))),
        }
    }
}

/// Parses a query into a subscription over `schema`; the entry point is
/// [`Subscription::parse_query`].
pub fn parse_query(schema: &Schema, text: &str) -> Result<Subscription, QueryError> {
    let mut lexer = Lexer::new(text);
    let mut tokens: Vec<(usize, Token)> = Vec::new();
    while let Some(t) = lexer.next()? {
        tokens.push(t);
    }
    if tokens.is_empty() {
        return Err(QueryError::Syntax {
            position: 0,
            message: "empty query".into(),
        });
    }

    let mut builder = Subscription::builder(schema);
    let mut i = 0;
    loop {
        builder = parse_predicate(schema, builder, &tokens, &mut i)?;
        match tokens.get(i) {
            None => break,
            Some((_, Token::And)) => {
                i += 1;
            }
            Some((pos, tok)) => {
                return Err(QueryError::Syntax {
                    position: *pos,
                    message: format!("expected `&&` between predicates, found {tok:?}"),
                })
            }
        }
    }
    Ok(builder.build()?)
}

fn parse_predicate<'a>(
    _schema: &Schema,
    builder: SubscriptionBuilder<'a>,
    tokens: &[(usize, Token)],
    i: &mut usize,
) -> Result<SubscriptionBuilder<'a>, QueryError> {
    let (pos, attr) = match tokens.get(*i) {
        Some((p, Token::Ident(name))) => (*p, name.clone()),
        Some((p, tok)) => {
            return Err(QueryError::Syntax {
                position: *p,
                message: format!("expected an attribute name, found {tok:?}"),
            })
        }
        None => {
            return Err(QueryError::Syntax {
                position: 0,
                message: "expected an attribute name".into(),
            })
        }
    };
    *i += 1;
    let op = match tokens.get(*i) {
        Some((_, Token::Op(op))) => *op,
        Some((p, tok)) => {
            return Err(QueryError::Syntax {
                position: *p,
                message: format!("expected an operator after `{attr}`, found {tok:?}"),
            })
        }
        None => {
            return Err(QueryError::Syntax {
                position: pos,
                message: format!("expected an operator after `{attr}`"),
            })
        }
    };
    *i += 1;
    let value = tokens.get(*i).cloned();
    *i += 1;
    match (op, value) {
        ("=", Some((_, Token::Number(v)))) => Ok(builder.num(&attr, NumOp::Eq, v)?),
        ("!=", Some((_, Token::Number(v)))) => Ok(builder.num(&attr, NumOp::Ne, v)?),
        ("<", Some((_, Token::Number(v)))) => Ok(builder.num(&attr, NumOp::Lt, v)?),
        ("<=", Some((_, Token::Number(v)))) => Ok(builder.num(&attr, NumOp::Le, v)?),
        (">", Some((_, Token::Number(v)))) => Ok(builder.num(&attr, NumOp::Gt, v)?),
        (">=", Some((_, Token::Number(v)))) => Ok(builder.num(&attr, NumOp::Ge, v)?),
        ("=", Some((_, Token::Str(v)))) => Ok(builder.str_op(&attr, StrOp::Eq, &v)?),
        ("!=", Some((_, Token::Str(v)))) => Ok(builder.str_op(&attr, StrOp::Ne, &v)?),
        ("~", Some((_, Token::Str(v)))) => Ok(builder.str_op(&attr, StrOp::Pattern, &v)?),
        ("prefix", Some((_, Token::Str(v)))) => Ok(builder.str_op(&attr, StrOp::Prefix, &v)?),
        ("suffix", Some((_, Token::Str(v)))) => Ok(builder.str_op(&attr, StrOp::Suffix, &v)?),
        ("contains", Some((_, Token::Str(v)))) => Ok(builder.str_op(&attr, StrOp::Contains, &v)?),
        (op, Some((p, tok))) => Err(QueryError::Syntax {
            position: p,
            message: format!("operator `{op}` cannot take {tok:?}"),
        }),
        (op, None) => Err(QueryError::Syntax {
            position: pos,
            message: format!("missing value after `{attr} {op}`"),
        }),
    }
}

impl Subscription {
    /// Parses a textual query into a subscription; see the
    /// [module docs](crate::parse) for the grammar.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::Syntax`] for malformed text and
    /// [`QueryError::Type`] for schema violations.
    ///
    /// # Example
    ///
    /// ```
    /// use subsum_types::{stock_schema, Subscription, Event};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let schema = stock_schema();
    /// let sub = Subscription::parse_query(
    ///     &schema,
    ///     r#"symbol == "OTE" && price > 8.30 && price < 8.70"#,
    /// )?;
    /// let event = Event::builder(&schema)
    ///     .str("symbol", "OTE")?
    ///     .num("price", 8.40)?
    ///     .build();
    /// assert!(sub.matches(&event));
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse_query(schema: &Schema, text: &str) -> Result<Subscription, QueryError> {
        parse_query(schema, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Predicate;
    use crate::schema::stock_schema;

    fn parse(text: &str) -> Result<Subscription, QueryError> {
        Subscription::parse_query(&stock_schema(), text)
    }

    #[test]
    fn parses_paper_fig3_subscription_one() {
        let sub = parse(r#"exchange ~ "N*SE" && symbol == "OTE" && price < 8.70 && price > 8.30"#)
            .unwrap();
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.attr_mask().count(), 3);
    }

    #[test]
    fn parses_paper_fig3_subscription_two() {
        let sub = parse(r#"symbol prefix "OT" && price = 8.20 && volume > 130000 && low < 8.05"#)
            .unwrap();
        assert_eq!(sub.len(), 4);
    }

    #[test]
    fn and_keyword_and_single_quotes() {
        let sub = parse("symbol = 'OTE' and price >= 8.0 and price <= 9.0").unwrap();
        assert_eq!(sub.len(), 3);
    }

    #[test]
    fn string_operators() {
        let sub =
            parse(r#"exchange suffix "SE" && symbol contains "T" && exchange != "ASE""#).unwrap();
        let preds: Vec<_> = sub.constraints().iter().map(|c| &c.pred).collect();
        assert!(matches!(preds[0], Predicate::Str(p) if p.to_string() == "*SE"));
        assert!(matches!(preds[1], Predicate::Str(p) if p.to_string() == "*T*"));
        assert!(matches!(preds[2], Predicate::StrNe(s) if s == "ASE"));
    }

    #[test]
    fn numbers_with_signs_and_exponents() {
        let sub = parse("price > -1.5 && volume < 2e5 && high >= +0.25").unwrap();
        assert_eq!(sub.len(), 3);
    }

    #[test]
    fn equivalent_to_builder_output() {
        let schema = stock_schema();
        let parsed = parse(r#"symbol == "OTE" && price < 8.70"#).unwrap();
        let built = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Eq, "OTE")
            .unwrap()
            .num("price", NumOp::Lt, 8.70)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(parsed, built);
    }

    #[test]
    fn syntax_errors_are_positioned() {
        let err = parse("price <");
        assert!(matches!(err, Err(QueryError::Syntax { .. })), "{err:?}");
        let err = parse("&& price < 1");
        assert!(matches!(err, Err(QueryError::Syntax { .. })));
        let err = parse(r#"price < 1 symbol = "x""#);
        assert!(matches!(err, Err(QueryError::Syntax { .. })));
        let err = parse("price @ 3");
        assert!(matches!(err, Err(QueryError::Syntax { .. })));
        let err = parse(r#"symbol = "unterminated"#);
        assert!(matches!(err, Err(QueryError::Syntax { .. })));
        let err = parse("");
        assert!(matches!(err, Err(QueryError::Syntax { .. })));
    }

    #[test]
    fn type_errors_pass_through() {
        let err = parse("nonexistent > 1").unwrap_err();
        assert!(matches!(
            err,
            QueryError::Type(TypeError::UnknownAttribute(_))
        ));
        // String operator on an arithmetic attribute.
        let err = parse(r#"price prefix "x""#).unwrap_err();
        assert!(matches!(
            err,
            QueryError::Type(TypeError::KindMismatch { .. })
        ));
        // Number compared to a string attribute.
        let err = parse("symbol < 5").unwrap_err();
        assert!(matches!(
            err,
            QueryError::Type(TypeError::KindMismatch { .. })
        ));
    }

    #[test]
    fn mixed_operator_value_kinds_rejected() {
        let err = parse(r#"price ~ 5"#).unwrap_err();
        assert!(matches!(err, QueryError::Syntax { .. }));
        let err = parse(r#"volume contains 5"#).unwrap_err();
        assert!(matches!(err, QueryError::Syntax { .. }));
    }

    #[test]
    fn whitespace_flexibility() {
        let a = parse("price<8.7&&symbol='OTE'").unwrap();
        let b = parse("  price  <  8.7  &&  symbol  =  'OTE'  ").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_of_errors() {
        let err = parse("price <").unwrap_err();
        assert!(err.to_string().contains("syntax error"));
        let err = parse("nope > 1").unwrap_err();
        assert!(err.to_string().contains("type error"));
    }
}
