//! Attribute constraints: the atoms a subscription dissolves into.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TypeError;
use crate::interval::{Interval, IntervalSet};
use crate::pattern::Pattern;
use crate::schema::{AttrId, AttrKind, Schema};
use crate::value::{Num, Value};

/// Comparison operators over arithmetic attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NumOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl NumOp {
    /// Evaluates `value <op> bound`.
    pub fn eval(self, value: Num, bound: Num) -> bool {
        match self {
            NumOp::Eq => value == bound,
            NumOp::Ne => value != bound,
            NumOp::Lt => value < bound,
            NumOp::Le => value <= bound,
            NumOp::Gt => value > bound,
            NumOp::Ge => value >= bound,
        }
    }

    /// The solution set `{ x : x <op> bound }` as an interval set.
    pub fn solution(self, bound: Num) -> IntervalSet {
        match self {
            NumOp::Eq => IntervalSet::from_interval(Interval::point(bound)),
            NumOp::Ne => IntervalSet::all().without_point(bound),
            NumOp::Lt => IntervalSet::from_interval(Interval::less_than(bound)),
            NumOp::Le => IntervalSet::from_interval(Interval::at_most(bound)),
            NumOp::Gt => IntervalSet::from_interval(Interval::greater_than(bound)),
            NumOp::Ge => IntervalSet::from_interval(Interval::at_least(bound)),
        }
    }
}

impl fmt::Display for NumOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NumOp::Eq => "=",
            NumOp::Ne => "!=",
            NumOp::Lt => "<",
            NumOp::Le => "<=",
            NumOp::Gt => ">",
            NumOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Operators over string attributes.
///
/// `Prefix`, `Suffix`, `Contains` and `Pattern` are all compiled to
/// [`Pattern`]s; the paper writes them `>*`, `*<` and `*` respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrOp {
    /// Exact equality.
    Eq,
    /// Inequality (`≠`).
    Ne,
    /// The value starts with the operand (paper: `>*`).
    Prefix,
    /// The value ends with the operand (paper: `*<`).
    Suffix,
    /// The value contains the operand (paper: `*`).
    Contains,
    /// The operand is a glob pattern such as `N*SE`.
    Pattern,
}

impl fmt::Display for StrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StrOp::Eq => "=",
            StrOp::Ne => "!=",
            StrOp::Prefix => ">*",
            StrOp::Suffix => "*<",
            StrOp::Contains => "*",
            StrOp::Pattern => "~",
        };
        f.write_str(s)
    }
}

/// The predicate of a [`Constraint`]: an operator applied to an operand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// An arithmetic comparison.
    Num(NumOp, Num),
    /// A string pattern test (equality, prefix, suffix, containment and
    /// glob all compile to patterns).
    Str(Pattern),
    /// String inequality: satisfied by every string except the operand.
    StrNe(String),
}

impl Predicate {
    /// Builds a string predicate from an operator and operand.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::InvalidPattern`] if a `Pattern` operand fails
    /// to parse.
    pub fn from_str_op(op: StrOp, operand: &str) -> Result<Self, TypeError> {
        Ok(match op {
            StrOp::Eq => Predicate::Str(Pattern::literal(operand)),
            StrOp::Ne => Predicate::StrNe(operand.to_owned()),
            StrOp::Prefix => Predicate::Str(Pattern::prefix(operand)),
            StrOp::Suffix => Predicate::Str(Pattern::suffix(operand)),
            StrOp::Contains => Predicate::Str(Pattern::substring(operand)),
            StrOp::Pattern => Predicate::Str(Pattern::parse(operand)?),
        })
    }

    /// Evaluates the predicate against an event value. Returns `false` on
    /// kind mismatch (an arithmetic predicate never matches a string
    /// value and vice versa).
    pub fn eval(&self, value: &Value) -> bool {
        match self {
            Predicate::Num(op, bound) => match value.as_num() {
                Some(v) => op.eval(v, *bound),
                None => false,
            },
            Predicate::Str(pat) => match value.as_str() {
                Some(s) => pat.matches(s),
                None => false,
            },
            Predicate::StrNe(operand) => match value.as_str() {
                Some(s) => s != operand,
                None => false,
            },
        }
    }

    /// Returns `true` if the predicate applies to arithmetic values.
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, Predicate::Num(..))
    }

    /// The operand's size in bytes under the paper's accounting model
    /// (§5.1): arithmetic operands cost `s_st`, string operands one byte
    /// per character.
    pub fn operand_wire_size(&self, arith_width: usize) -> usize {
        match self {
            Predicate::Num(..) => arith_width,
            Predicate::Str(p) => p.wire_size(),
            Predicate::StrNe(s) => s.len(),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Num(op, v) => write!(f, "{op} {v}"),
            Predicate::Str(p) => write!(f, "~ {p}"),
            Predicate::StrNe(s) => write!(f, "!= {s:?}"),
        }
    }
}

/// A single attribute constraint: “attribute `attr` satisfies `pred`”.
///
/// A subscription is a conjunction of constraints; several constraints may
/// target the same attribute (Fig. 4 of the paper shows `price < 8.70 ∧
/// price > 8.30` dissolving into one AACS sub-range).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// The constrained attribute.
    pub attr: AttrId,
    /// The predicate the attribute's value must satisfy.
    pub pred: Predicate,
}

impl Constraint {
    /// Creates a constraint, checking the predicate against the schema.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::KindMismatch`] if an arithmetic predicate
    /// targets a string attribute or vice versa.
    pub fn checked(schema: &Schema, attr: AttrId, pred: Predicate) -> Result<Self, TypeError> {
        let kind = schema.kind(attr);
        let ok = match (&pred, kind) {
            (Predicate::Num(..), k) => k.is_arithmetic(),
            (Predicate::Str(_) | Predicate::StrNe(_), AttrKind::String) => true,
            _ => false,
        };
        if ok {
            Ok(Constraint { attr, pred })
        } else {
            Err(TypeError::KindMismatch {
                attribute: schema.spec(attr).name.clone(),
                expected: kind,
            })
        }
    }

    /// Evaluates the constraint against an event value for its attribute.
    pub fn eval(&self, value: &Value) -> bool {
        self.pred.eval(value)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.attr, self.pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::stock_schema;

    fn n(v: f64) -> Num {
        Num::new(v).unwrap()
    }

    #[test]
    fn num_op_eval() {
        assert!(NumOp::Eq.eval(n(1.0), n(1.0)));
        assert!(NumOp::Ne.eval(n(1.0), n(2.0)));
        assert!(NumOp::Lt.eval(n(1.0), n(2.0)));
        assert!(!NumOp::Lt.eval(n(2.0), n(2.0)));
        assert!(NumOp::Le.eval(n(2.0), n(2.0)));
        assert!(NumOp::Gt.eval(n(3.0), n(2.0)));
        assert!(NumOp::Ge.eval(n(2.0), n(2.0)));
    }

    #[test]
    fn num_op_solution_agrees_with_eval() {
        let bounds = [n(-1.5), n(0.0), n(3.25)];
        let samples = [n(-2.0), n(-1.5), n(-1.0), n(0.0), n(3.0), n(3.25), n(4.0)];
        for op in [
            NumOp::Eq,
            NumOp::Ne,
            NumOp::Lt,
            NumOp::Le,
            NumOp::Gt,
            NumOp::Ge,
        ] {
            for b in bounds {
                let sol = op.solution(b);
                for v in samples {
                    assert_eq!(
                        sol.contains(v),
                        op.eval(v, b),
                        "op {op} bound {b} value {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn str_predicates() {
        let eq = Predicate::from_str_op(StrOp::Eq, "OTE").unwrap();
        assert!(eq.eval(&Value::from("OTE")));
        assert!(!eq.eval(&Value::from("OTEX")));

        let pre = Predicate::from_str_op(StrOp::Prefix, "OT").unwrap();
        assert!(pre.eval(&Value::from("OTE")));
        assert!(!pre.eval(&Value::from("XOT")));

        let suf = Predicate::from_str_op(StrOp::Suffix, "SE").unwrap();
        assert!(suf.eval(&Value::from("NYSE")));
        assert!(!suf.eval(&Value::from("SEX")));

        let sub = Predicate::from_str_op(StrOp::Contains, "YS").unwrap();
        assert!(sub.eval(&Value::from("NYSE")));
        assert!(!sub.eval(&Value::from("NSE")));

        let ne = Predicate::from_str_op(StrOp::Ne, "OTE").unwrap();
        assert!(!ne.eval(&Value::from("OTE")));
        assert!(ne.eval(&Value::from("XYZ")));

        let pat = Predicate::from_str_op(StrOp::Pattern, "N*SE").unwrap();
        assert!(pat.eval(&Value::from("NYSE")));
        assert!(!pat.eval(&Value::from("NYS")));
    }

    #[test]
    fn kind_mismatch_on_eval_returns_false() {
        let p = Predicate::Num(NumOp::Eq, n(1.0));
        assert!(!p.eval(&Value::from("1.0")));
        let s = Predicate::from_str_op(StrOp::Eq, "x").unwrap();
        assert!(!s.eval(&Value::Int(1)));
    }

    #[test]
    fn checked_constraint_enforces_kinds() {
        let schema = stock_schema();
        let price = schema.attr_id("price").unwrap();
        let symbol = schema.attr_id("symbol").unwrap();
        assert!(Constraint::checked(&schema, price, Predicate::Num(NumOp::Lt, n(8.7))).is_ok());
        assert!(Constraint::checked(
            &schema,
            symbol,
            Predicate::from_str_op(StrOp::Eq, "OTE").unwrap()
        )
        .is_ok());
        let err =
            Constraint::checked(&schema, symbol, Predicate::Num(NumOp::Lt, n(1.0))).unwrap_err();
        assert!(matches!(err, TypeError::KindMismatch { .. }));
        let err = Constraint::checked(
            &schema,
            price,
            Predicate::from_str_op(StrOp::Eq, "x").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::KindMismatch { .. }));
    }

    #[test]
    fn date_and_int_values_satisfy_num_predicates() {
        let p = Predicate::Num(NumOp::Gt, n(130000.0));
        assert!(p.eval(&Value::Int(132700)));
        assert!(!p.eval(&Value::Int(130000)));
        assert!(p.eval(&Value::Date(200000)));
    }

    #[test]
    fn operand_wire_sizes() {
        assert_eq!(Predicate::Num(NumOp::Eq, n(1.0)).operand_wire_size(4), 4);
        assert_eq!(
            Predicate::from_str_op(StrOp::Eq, "NYSE")
                .unwrap()
                .operand_wire_size(4),
            4
        );
        // Prefix renders as "OT*": 3 bytes.
        assert_eq!(
            Predicate::from_str_op(StrOp::Prefix, "OT")
                .unwrap()
                .operand_wire_size(4),
            3
        );
    }
}
