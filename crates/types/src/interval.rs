//! Interval algebra over totally ordered numbers.
//!
//! The paper's AACS structure (§3.1) maintains *non-overlapping
//! sub-ranges* of the values constrained by subscriptions. [`Interval`]
//! models a single contiguous range with open/closed/infinite endpoints,
//! and [`IntervalSet`] a canonical union of disjoint, sorted intervals —
//! the normal form into which every conjunction of arithmetic constraints
//! on one attribute dissolves (`price < 8.70 ∧ price > 8.30` becomes the
//! single interval `(8.30, 8.70)`, exactly as in the paper's Fig. 4;
//! `volume ≠ 130000` becomes two intervals).

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Num;

/// Lower endpoint of an [`Interval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LowerBound {
    /// Unbounded below (−∞).
    NegInf,
    /// Closed bound: values ≥ the given number.
    Incl(Num),
    /// Open bound: values > the given number.
    Excl(Num),
}

/// Upper endpoint of an [`Interval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpperBound {
    /// Unbounded above (+∞).
    PosInf,
    /// Closed bound: values ≤ the given number.
    Incl(Num),
    /// Open bound: values < the given number.
    Excl(Num),
}

impl LowerBound {
    /// Returns `true` if `v` satisfies this bound.
    pub fn admits(self, v: Num) -> bool {
        match self {
            LowerBound::NegInf => true,
            LowerBound::Incl(b) => v >= b,
            LowerBound::Excl(b) => v > b,
        }
    }

    /// Orders lower bounds by restrictiveness: a bound that admits more
    /// values sorts first.
    fn key(self) -> (Option<Num>, u8) {
        match self {
            LowerBound::NegInf => (None, 0),
            LowerBound::Incl(b) => (Some(b), 0),
            LowerBound::Excl(b) => (Some(b), 1),
        }
    }

    fn cmp_bound(self, other: Self) -> Ordering {
        let (a, ax) = self.key();
        let (b, bx) = other.key();
        match (a, b) {
            (None, None) => Ordering::Equal,
            (None, Some(_)) => Ordering::Less,
            (Some(_), None) => Ordering::Greater,
            (Some(a), Some(b)) => a.cmp(&b).then(ax.cmp(&bx)),
        }
    }
}

impl UpperBound {
    /// Returns `true` if `v` satisfies this bound.
    pub fn admits(self, v: Num) -> bool {
        match self {
            UpperBound::PosInf => true,
            UpperBound::Incl(b) => v <= b,
            UpperBound::Excl(b) => v < b,
        }
    }

    fn key(self) -> (Option<Num>, u8) {
        match self {
            UpperBound::PosInf => (None, 0),
            // Excl(b) admits fewer values than Incl(b).
            UpperBound::Incl(b) => (Some(b), 1),
            UpperBound::Excl(b) => (Some(b), 0),
        }
    }

    fn cmp_bound(self, other: Self) -> Ordering {
        let (a, ax) = self.key();
        let (b, bx) = other.key();
        match (a, b) {
            (None, None) => Ordering::Equal,
            (None, Some(_)) => Ordering::Greater,
            (Some(_), None) => Ordering::Less,
            (Some(a), Some(b)) => a.cmp(&b).then(ax.cmp(&bx)),
        }
    }
}

/// A contiguous, possibly unbounded range of numbers.
///
/// # Example
///
/// ```
/// use subsum_types::{Interval, Num};
/// let r = Interval::open(Num::new(8.30).unwrap(), Num::new(8.70).unwrap());
/// assert!(r.contains(Num::new(8.40).unwrap()));
/// assert!(!r.contains(Num::new(8.30).unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    lo: LowerBound,
    hi: UpperBound,
}

impl Interval {
    /// The interval containing every number: `(−∞, +∞)`.
    pub const ALL: Interval = Interval {
        lo: LowerBound::NegInf,
        hi: UpperBound::PosInf,
    };

    /// Creates an interval from explicit bounds. Empty combinations (e.g.
    /// `lo > hi`) are permitted; use [`Interval::is_empty`] to detect them.
    pub fn new(lo: LowerBound, hi: UpperBound) -> Self {
        Interval { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: Num) -> Self {
        Interval {
            lo: LowerBound::Incl(v),
            hi: UpperBound::Incl(v),
        }
    }

    /// The open interval `(lo, hi)`.
    pub fn open(lo: Num, hi: Num) -> Self {
        Interval {
            lo: LowerBound::Excl(lo),
            hi: UpperBound::Excl(hi),
        }
    }

    /// The closed interval `[lo, hi]`.
    pub fn closed(lo: Num, hi: Num) -> Self {
        Interval {
            lo: LowerBound::Incl(lo),
            hi: UpperBound::Incl(hi),
        }
    }

    /// `(−∞, v)` — the solution set of `x < v`.
    pub fn less_than(v: Num) -> Self {
        Interval {
            lo: LowerBound::NegInf,
            hi: UpperBound::Excl(v),
        }
    }

    /// `(−∞, v]` — the solution set of `x ≤ v`.
    pub fn at_most(v: Num) -> Self {
        Interval {
            lo: LowerBound::NegInf,
            hi: UpperBound::Incl(v),
        }
    }

    /// `(v, +∞)` — the solution set of `x > v`.
    pub fn greater_than(v: Num) -> Self {
        Interval {
            lo: LowerBound::Excl(v),
            hi: UpperBound::PosInf,
        }
    }

    /// `[v, +∞)` — the solution set of `x ≥ v`.
    pub fn at_least(v: Num) -> Self {
        Interval {
            lo: LowerBound::Incl(v),
            hi: UpperBound::PosInf,
        }
    }

    /// The lower bound.
    pub fn lo(&self) -> LowerBound {
        self.lo
    }

    /// The upper bound.
    pub fn hi(&self) -> UpperBound {
        self.hi
    }

    /// Returns `true` if no number satisfies both bounds.
    pub fn is_empty(&self) -> bool {
        match (self.lo, self.hi) {
            (LowerBound::NegInf, _) | (_, UpperBound::PosInf) => false,
            (LowerBound::Incl(a), UpperBound::Incl(b)) => a > b,
            (LowerBound::Incl(a), UpperBound::Excl(b))
            | (LowerBound::Excl(a), UpperBound::Incl(b))
            | (LowerBound::Excl(a), UpperBound::Excl(b)) => a >= b,
        }
    }

    /// Returns `true` if the interval is the degenerate point `[v, v]`.
    pub fn as_point(&self) -> Option<Num> {
        match (self.lo, self.hi) {
            (LowerBound::Incl(a), UpperBound::Incl(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// Membership test.
    pub fn contains(&self, v: Num) -> bool {
        self.lo.admits(v) && self.hi.admits(v)
    }

    /// Returns `true` if every member of `other` is a member of `self`.
    ///
    /// Empty intervals are contained in everything.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        self.lo.cmp_bound(other.lo) != Ordering::Greater
            && self.hi.cmp_bound(other.hi) != Ordering::Less
    }

    /// The intersection of two intervals (may be empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        let lo = if self.lo.cmp_bound(other.lo) == Ordering::Greater {
            self.lo
        } else {
            other.lo
        };
        let hi = if self.hi.cmp_bound(other.hi) == Ordering::Less {
            self.hi
        } else {
            other.hi
        };
        Interval { lo, hi }
    }

    /// Returns `true` if the intervals share at least one member.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// The members of `self` that are not members of `other`: zero, one or
    /// two intervals (left and right remainders).
    pub fn subtract(&self, other: &Interval) -> Vec<Interval> {
        if self.is_empty() {
            return Vec::new();
        }
        if other.is_empty() {
            return vec![*self];
        }
        let mut out = Vec::with_capacity(2);
        // Left remainder: members of self below other's lower bound.
        let left_hi = match other.lo {
            LowerBound::NegInf => None,
            LowerBound::Incl(v) => Some(UpperBound::Excl(v)),
            LowerBound::Excl(v) => Some(UpperBound::Incl(v)),
        };
        if let Some(hi) = left_hi {
            let left = Interval::new(self.lo, hi).intersect(self);
            if !left.is_empty() {
                out.push(left);
            }
        }
        // Right remainder: members of self above other's upper bound.
        let right_lo = match other.hi {
            UpperBound::PosInf => None,
            UpperBound::Incl(v) => Some(LowerBound::Excl(v)),
            UpperBound::Excl(v) => Some(LowerBound::Incl(v)),
        };
        if let Some(lo) = right_lo {
            let right = Interval::new(lo, self.hi).intersect(self);
            if !right.is_empty() {
                out.push(right);
            }
        }
        out
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lo {
            LowerBound::NegInf => write!(f, "(-inf")?,
            LowerBound::Incl(v) => write!(f, "[{v}")?,
            LowerBound::Excl(v) => write!(f, "({v}")?,
        }
        write!(f, ", ")?;
        match self.hi {
            UpperBound::PosInf => write!(f, "+inf)"),
            UpperBound::Incl(v) => write!(f, "{v}]"),
            UpperBound::Excl(v) => write!(f, "{v})"),
        }
    }
}

/// A canonical union of disjoint, sorted, non-empty intervals.
///
/// This is the normal form of an arithmetic attribute's constraint
/// conjunction: intersections and the `≠` operator both produce interval
/// sets. The canonical form merges adjacent touching intervals so that
/// structural equality coincides with set equality.
///
/// # Example
///
/// ```
/// use subsum_types::{Interval, IntervalSet, Num};
/// # fn n(v: f64) -> Num { Num::new(v).unwrap() }
/// // volume ≠ 130000
/// let ne = IntervalSet::all().without_point(n(130000.0));
/// assert_eq!(ne.len(), 2);
/// assert!(!ne.contains(n(130000.0)));
/// assert!(ne.contains(n(132700.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct IntervalSet {
    /// Disjoint, non-adjacent, non-empty, sorted by lower bound.
    parts: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> Self {
        IntervalSet { parts: Vec::new() }
    }

    /// The full number line.
    pub fn all() -> Self {
        IntervalSet {
            parts: vec![Interval::ALL],
        }
    }

    /// A set with a single interval (empty intervals yield the empty set).
    pub fn from_interval(iv: Interval) -> Self {
        if iv.is_empty() {
            IntervalSet::empty()
        } else {
            IntervalSet { parts: vec![iv] }
        }
    }

    /// Number of disjoint intervals.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Returns `true` if no value is in the set.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The disjoint intervals, sorted.
    pub fn iter(&self) -> impl Iterator<Item = &Interval> {
        self.parts.iter()
    }

    /// Membership test (binary search over the disjoint parts).
    pub fn contains(&self, v: Num) -> bool {
        // Find the first part whose upper bound admits v; v is a member
        // iff that part's lower bound also admits it.
        self.parts.iter().any(|iv| iv.contains(v))
    }

    /// Intersects with a single interval.
    pub fn intersect_interval(&self, iv: &Interval) -> IntervalSet {
        let parts = self
            .parts
            .iter()
            .map(|p| p.intersect(iv))
            .filter(|p| !p.is_empty())
            .collect();
        IntervalSet { parts }
    }

    /// Intersects two sets.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut parts = Vec::new();
        for a in &self.parts {
            for b in &other.parts {
                let c = a.intersect(b);
                if !c.is_empty() {
                    parts.push(c);
                }
            }
        }
        // Parts from a canonical pairwise intersection are already
        // disjoint; sort for canonical order.
        parts.sort_by(|a, b| a.lo().cmp_bound(b.lo()));
        IntervalSet { parts }
    }

    /// The set minus a single point (used for the `≠` operator).
    pub fn without_point(&self, v: Num) -> IntervalSet {
        let mut parts = Vec::with_capacity(self.parts.len() + 1);
        for iv in &self.parts {
            if !iv.contains(v) {
                parts.push(*iv);
                continue;
            }
            let left = Interval::new(iv.lo(), UpperBound::Excl(v));
            let right = Interval::new(LowerBound::Excl(v), iv.hi());
            if !left.is_empty() {
                parts.push(left);
            }
            if !right.is_empty() {
                parts.push(right);
            }
        }
        IntervalSet { parts }
    }

    /// Returns `true` if every member of `other` is a member of `self`.
    pub fn covers(&self, other: &IntervalSet) -> bool {
        // Every part of `other` must be contained in the union. Because
        // parts are canonical (non-adjacent), a single part of `other`
        // must fit inside a single part of `self`.
        other
            .parts
            .iter()
            .all(|o| self.parts.iter().any(|s| s.contains_interval(o)))
    }

    /// Unions with another set, restoring canonical form.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut all: Vec<Interval> = self
            .parts
            .iter()
            .chain(other.parts.iter())
            .copied()
            .collect();
        all.sort_by(|a, b| a.lo().cmp_bound(b.lo()));
        let mut parts: Vec<Interval> = Vec::with_capacity(all.len());
        for iv in all {
            match parts.last_mut() {
                Some(last) if joinable(last, &iv) => {
                    let hi = if last.hi().cmp_bound(iv.hi()) == Ordering::Less {
                        iv.hi()
                    } else {
                        last.hi()
                    };
                    *last = Interval::new(last.lo(), hi);
                }
                _ => parts.push(iv),
            }
        }
        IntervalSet { parts }
    }
}

/// Returns `true` if two intervals (with `a.lo ≤ b.lo`) overlap or touch
/// (such as `[1, 2]` and `(2, 3]`), so their union is a single interval.
fn joinable(a: &Interval, b: &Interval) -> bool {
    if a.overlaps(b) {
        return true;
    }
    // Adjacent: a's upper bound and b's lower bound meet at the same value
    // with complementary inclusivity, e.g. `..., 2]` followed by `(2, ...`
    // or `..., 2)` followed by `[2, ...`.
    match (a.hi(), b.lo()) {
        (UpperBound::Incl(x), LowerBound::Excl(y))
        | (UpperBound::Excl(x), LowerBound::Incl(y))
        | (UpperBound::Incl(x), LowerBound::Incl(y)) => x == y,
        _ => false,
    }
}

impl From<Interval> for IntervalSet {
    fn from(iv: Interval) -> Self {
        IntervalSet::from_interval(iv)
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parts.is_empty() {
            return f.write_str("{}");
        }
        for (i, iv) in self.parts.iter().enumerate() {
            if i > 0 {
                f.write_str(" u ")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: f64) -> Num {
        Num::new(v).unwrap()
    }

    #[test]
    fn empty_detection() {
        assert!(Interval::open(n(1.0), n(1.0)).is_empty());
        assert!(!Interval::closed(n(1.0), n(1.0)).is_empty());
        assert!(Interval::closed(n(2.0), n(1.0)).is_empty());
        assert!(!Interval::ALL.is_empty());
        assert!(Interval::new(LowerBound::Incl(n(1.0)), UpperBound::Excl(n(1.0))).is_empty());
    }

    #[test]
    fn contains_respects_openness() {
        let iv = Interval::open(n(8.30), n(8.70));
        assert!(iv.contains(n(8.40)));
        assert!(!iv.contains(n(8.30)));
        assert!(!iv.contains(n(8.70)));
        let civ = Interval::closed(n(8.30), n(8.70));
        assert!(civ.contains(n(8.30)));
        assert!(civ.contains(n(8.70)));
    }

    #[test]
    fn operator_constructors() {
        assert!(Interval::less_than(n(5.0)).contains(n(4.9)));
        assert!(!Interval::less_than(n(5.0)).contains(n(5.0)));
        assert!(Interval::at_most(n(5.0)).contains(n(5.0)));
        assert!(Interval::greater_than(n(5.0)).contains(n(5.1)));
        assert!(!Interval::greater_than(n(5.0)).contains(n(5.0)));
        assert!(Interval::at_least(n(5.0)).contains(n(5.0)));
    }

    #[test]
    fn intersection_of_half_lines_is_paper_range() {
        // price < 8.70 ∧ price > 8.30 → (8.30, 8.70) as in Fig. 4.
        let a = Interval::less_than(n(8.70));
        let b = Interval::greater_than(n(8.30));
        let c = a.intersect(&b);
        assert_eq!(c, Interval::open(n(8.30), n(8.70)));
    }

    #[test]
    fn containment() {
        let outer = Interval::closed(n(0.0), n(10.0));
        let inner = Interval::open(n(1.0), n(9.0));
        assert!(outer.contains_interval(&inner));
        assert!(!inner.contains_interval(&outer));
        // Boundary inclusivity matters.
        let open = Interval::open(n(0.0), n(10.0));
        assert!(!open.contains_interval(&outer));
        assert!(outer.contains_interval(&open));
        // Everything contains the empty interval.
        assert!(inner.contains_interval(&Interval::open(n(5.0), n(5.0))));
    }

    #[test]
    fn point_intervals() {
        let p = Interval::point(n(8.20));
        assert_eq!(p.as_point(), Some(n(8.20)));
        assert!(p.contains(n(8.20)));
        assert_eq!(Interval::closed(n(1.0), n(2.0)).as_point(), None);
    }

    #[test]
    fn set_without_point() {
        let s = IntervalSet::all().without_point(n(3.0));
        assert_eq!(s.len(), 2);
        assert!(!s.contains(n(3.0)));
        assert!(s.contains(n(2.999)));
        assert!(s.contains(n(3.001)));
    }

    #[test]
    fn set_intersection() {
        let a = IntervalSet::from_interval(Interval::closed(n(0.0), n(10.0)));
        let b = IntervalSet::all().without_point(n(5.0));
        let c = a.intersect(&b);
        assert_eq!(c.len(), 2);
        assert!(c.contains(n(0.0)));
        assert!(!c.contains(n(5.0)));
        assert!(c.contains(n(10.0)));
        assert!(!c.contains(n(10.1)));
    }

    #[test]
    fn set_covers() {
        let big = IntervalSet::from_interval(Interval::closed(n(0.0), n(10.0)));
        let small = IntervalSet::from_interval(Interval::open(n(2.0), n(3.0)));
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.covers(&IntervalSet::empty()));
        assert!(IntervalSet::empty().covers(&IntervalSet::empty()));
        let holey = IntervalSet::all().without_point(n(5.0));
        assert!(!holey.covers(&big));
        assert!(IntervalSet::all().covers(&holey));
    }

    #[test]
    fn union_merges_touching() {
        let a = IntervalSet::from_interval(Interval::closed(n(0.0), n(2.0)));
        let b = IntervalSet::from_interval(Interval::open(n(2.0), n(4.0)));
        let u = a.union(&b);
        assert_eq!(u.len(), 1);
        assert!(u.contains(n(2.0)));
        assert!(u.contains(n(3.9)));
        assert!(!u.contains(n(4.0)));
    }

    #[test]
    fn union_keeps_gaps() {
        let a = IntervalSet::from_interval(Interval::open(n(0.0), n(1.0)));
        let b = IntervalSet::from_interval(Interval::open(n(2.0), n(3.0)));
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(!u.contains(n(1.5)));
    }

    #[test]
    fn union_does_not_merge_open_adjacent() {
        // (0,1) and (1,2) do NOT merge: 1 is in neither.
        let a = IntervalSet::from_interval(Interval::open(n(0.0), n(1.0)));
        let b = IntervalSet::from_interval(Interval::open(n(1.0), n(2.0)));
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(!u.contains(n(1.0)));
    }

    #[test]
    fn interval_subtract() {
        let a = Interval::closed(n(0.0), n(10.0));
        let b = Interval::open(n(3.0), n(7.0));
        let parts = a.subtract(&b);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], Interval::closed(n(0.0), n(3.0)));
        assert_eq!(parts[1], Interval::closed(n(7.0), n(10.0)));
        // Subtracting a superset leaves nothing.
        assert!(b.subtract(&a).is_empty());
        // Subtracting the empty interval leaves self.
        assert_eq!(a.subtract(&Interval::open(n(1.0), n(1.0))), vec![a]);
        // Disjoint subtraction leaves self.
        assert_eq!(a.subtract(&Interval::closed(n(20.0), n(30.0))), vec![a]);
        // Half-line remainder.
        let parts = Interval::ALL.subtract(&Interval::at_least(n(5.0)));
        assert_eq!(parts, vec![Interval::less_than(n(5.0))]);
        // Point subtraction punches an open hole.
        let parts = a.subtract(&Interval::point(n(5.0)));
        assert_eq!(parts.len(), 2);
        assert!(!parts[0].contains(n(5.0)) && !parts[1].contains(n(5.0)));
        assert!(parts[0].contains(n(4.999)) && parts[1].contains(n(5.001)));
    }

    #[test]
    fn display_roundtrip_sanity() {
        let iv = Interval::open(n(8.30), n(8.70));
        assert_eq!(format!("{iv}"), "(8.3, 8.7)");
        assert_eq!(format!("{}", Interval::ALL), "(-inf, +inf)");
        assert_eq!(format!("{}", IntervalSet::empty()), "{}");
    }
}
