//! Subscriptions: conjunctions of attribute constraints, with exact
//! matching, normalization and subsumption.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::constraint::{Constraint, NumOp, Predicate, StrOp};
use crate::error::TypeError;
use crate::event::Event;
use crate::id::AttrMask;
use crate::interval::IntervalSet;
use crate::pattern::Pattern;
use crate::schema::{AttrId, Schema};
use crate::value::{Num, Value};

/// A subscription: an event matches iff **all** attribute constraints are
/// satisfied (paper §2.1). Events may carry more attributes than the
/// subscription mentions; they may not omit a constrained attribute.
///
/// # Example
///
/// ```
/// use subsum_types::{Schema, AttrKind, Subscription, NumOp};
/// # fn main() -> Result<(), subsum_types::TypeError> {
/// let schema = Schema::builder().attr("price", AttrKind::Float)?.build();
/// let sub = Subscription::builder(&schema)
///     .num("price", NumOp::Gt, 8.30)?
///     .num("price", NumOp::Lt, 8.70)?
///     .build()?;
/// assert_eq!(sub.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subscription {
    constraints: Vec<Constraint>,
}

impl Subscription {
    /// Starts building a subscription against `schema`.
    pub fn builder(schema: &Schema) -> SubscriptionBuilder<'_> {
        SubscriptionBuilder {
            schema,
            constraints: Vec::new(),
        }
    }

    /// Creates a subscription from raw constraints.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::EmptySubscription`] if `constraints` is empty.
    pub fn from_constraints(constraints: Vec<Constraint>) -> Result<Self, TypeError> {
        if constraints.is_empty() {
            return Err(TypeError::EmptySubscription);
        }
        Ok(Subscription { constraints })
    }

    /// The constraints, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The number of constraints (not distinct attributes).
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Returns `true` if there are no constraints (unreachable through the
    /// constructors, which reject empty subscriptions).
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The set of distinct constrained attributes as a bit mask — the
    /// `c3` component of the subscription's identifier (paper §3.2).
    pub fn attr_mask(&self) -> AttrMask {
        let mut mask = AttrMask::empty();
        for c in &self.constraints {
            mask.set(c.attr);
        }
        mask
    }

    /// Exact matching: `true` iff the event carries every constrained
    /// attribute and every constraint is satisfied.
    pub fn matches(&self, event: &Event) -> bool {
        self.constraints
            .iter()
            .all(|c| event.get(c.attr).is_some_and(|v| c.eval(v)))
    }

    /// Dissolves the subscription into its per-attribute normal form:
    /// arithmetic conjunctions become interval sets, string conjunctions
    /// become constraint lists. This is the form the summary structures
    /// ingest (paper §2.3: "each incoming subscription is dissolved into
    /// its attribute-value pairs").
    pub fn normalize(&self) -> NormalizedSubscription {
        let mut attrs: BTreeMap<AttrId, NormalizedAttr> = BTreeMap::new();
        for c in &self.constraints {
            match &c.pred {
                Predicate::Num(op, bound) => {
                    let sol = op.solution(*bound);
                    match attrs
                        .entry(c.attr)
                        .or_insert_with(|| NormalizedAttr::Arithmetic(IntervalSet::all()))
                    {
                        NormalizedAttr::Arithmetic(set) => *set = set.intersect(&sol),
                        // A named attribute has one kind (paper §3
                        // assumption i). The checked builder never mixes
                        // kinds, but decoded input could: a mixed
                        // conjunction is unsatisfiable, so it normalizes
                        // to the empty interval set.
                        slot @ NormalizedAttr::String(_) => {
                            *slot = NormalizedAttr::Arithmetic(IntervalSet::empty())
                        }
                    }
                }
                Predicate::Str(p) => {
                    match attrs
                        .entry(c.attr)
                        .or_insert_with(|| NormalizedAttr::String(Vec::new()))
                    {
                        NormalizedAttr::String(list) => {
                            list.push(StringConstraint::Pattern(p.clone()))
                        }
                        // Mixed kinds: unsatisfiable (see the arithmetic
                        // arm above).
                        slot @ NormalizedAttr::Arithmetic(_) => {
                            *slot = NormalizedAttr::Arithmetic(IntervalSet::empty())
                        }
                    }
                }
                Predicate::StrNe(s) => {
                    match attrs
                        .entry(c.attr)
                        .or_insert_with(|| NormalizedAttr::String(Vec::new()))
                    {
                        NormalizedAttr::String(list) => list.push(StringConstraint::Ne(s.clone())),
                        // Mixed kinds: unsatisfiable (see the arithmetic
                        // arm above).
                        slot @ NormalizedAttr::Arithmetic(_) => {
                            *slot = NormalizedAttr::Arithmetic(IntervalSet::empty())
                        }
                    }
                }
            }
        }
        NormalizedSubscription { attrs }
    }

    /// Returns `false` if the constraint conjunction is unsatisfiable by
    /// any event (e.g. `price < 1 ∧ price > 2`). String conjunctions are
    /// conservatively treated as satisfiable.
    pub fn is_satisfiable(&self) -> bool {
        self.normalize().attrs.values().all(|a| match a {
            NormalizedAttr::Arithmetic(set) => !set.is_empty(),
            NormalizedAttr::String(_) => true,
        })
    }

    /// Subscription subsumption (the Siena notion, paper §2.2): `self`
    /// covers `other` if every event matching `other` matches `self`.
    ///
    /// The test is *sound* (never claims coverage that does not hold) and
    /// complete for arithmetic attributes and single-constraint string
    /// attributes; multi-pattern string conjunctions use a sufficient
    /// pairwise condition, as content-based routers do in practice.
    pub fn covers(&self, other: &Subscription) -> bool {
        let a = self.normalize();
        let b = other.normalize();
        // Every attribute self constrains must be constrained by other
        // (otherwise an event matching other could omit the attribute).
        for (attr, na) in &a.attrs {
            let Some(nb) = b.attrs.get(attr) else {
                return false;
            };
            match (na, nb) {
                (NormalizedAttr::Arithmetic(sa), NormalizedAttr::Arithmetic(sb)) => {
                    if !sa.covers(sb) {
                        return false;
                    }
                }
                (NormalizedAttr::String(la), NormalizedAttr::String(lb)) => {
                    let all_covered = la.iter().all(|ca| lb.iter().any(|cb| ca.covers(cb)));
                    if !all_covered {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        true
    }

    /// The subscription's size in bytes under the paper's accounting model
    /// (§5.1): per constraint, attribute name length + one operator byte +
    /// operand size. The paper's Table 2 workloads average 50 bytes.
    pub fn wire_size(&self, schema: &Schema, arith_width: usize) -> usize {
        self.constraints
            .iter()
            .map(|c| schema.spec(c.attr).name.len() + 1 + c.pred.operand_wire_size(arith_width))
            .sum()
    }
}

impl fmt::Display for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                f.write_str(" && ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A single normalized string-attribute constraint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StringConstraint {
    /// A pattern test (covers equality, prefix, suffix, containment, glob).
    Pattern(Pattern),
    /// Inequality with a specific string.
    Ne(String),
}

impl StringConstraint {
    /// Evaluates against a string value.
    pub fn eval(&self, s: &str) -> bool {
        match self {
            StringConstraint::Pattern(p) => p.matches(s),
            StringConstraint::Ne(t) => s != t,
        }
    }

    /// Sound covering test: `true` implies every string satisfying `other`
    /// satisfies `self`.
    pub fn covers(&self, other: &StringConstraint) -> bool {
        match (self, other) {
            (StringConstraint::Pattern(p), StringConstraint::Pattern(q)) => p.covers(q),
            // A pattern covers `≠ s` only if it matches everything except
            // possibly `s`; for glob patterns only the universal pattern
            // qualifies.
            (StringConstraint::Pattern(p), StringConstraint::Ne(_)) => p.is_universal(),
            // `≠ s` covers a pattern whose language excludes `s`. For the
            // test to be sound on infinite languages we require that the
            // pattern cannot match `s`.
            (StringConstraint::Ne(s), StringConstraint::Pattern(q)) => !q.matches(s),
            (StringConstraint::Ne(s), StringConstraint::Ne(t)) => s == t,
        }
    }

    /// A pattern that over-approximates this constraint (never rejects a
    /// satisfying string). `≠` constraints widen to the universal pattern;
    /// this is what the SACS summary stores for them.
    pub fn over_approximation(&self) -> Pattern {
        match self {
            StringConstraint::Pattern(p) => p.clone(),
            StringConstraint::Ne(_) => Pattern::universal(),
        }
    }
}

impl fmt::Display for StringConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StringConstraint::Pattern(p) => write!(f, "~ {p}"),
            StringConstraint::Ne(s) => write!(f, "!= {s:?}"),
        }
    }
}

/// Per-attribute normal form of one subscription's constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NormalizedAttr {
    /// The intersection of all arithmetic constraints on the attribute.
    Arithmetic(IntervalSet),
    /// The conjunction of all string constraints on the attribute.
    String(Vec<StringConstraint>),
}

/// A subscription dissolved into per-attribute constraints; see
/// [`Subscription::normalize`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalizedSubscription {
    attrs: BTreeMap<AttrId, NormalizedAttr>,
}

impl NormalizedSubscription {
    /// Iterates over `(attribute, normalized constraint)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &NormalizedAttr)> {
        self.attrs.iter().map(|(k, v)| (*k, v))
    }

    /// The normalized constraint for `attr`, if the attribute is
    /// constrained.
    pub fn get(&self, attr: AttrId) -> Option<&NormalizedAttr> {
        self.attrs.get(&attr)
    }

    /// The number of distinct constrained attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Returns `true` if no attribute is constrained.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }
}

/// Incremental [`Subscription`] construction; see [`Subscription::builder`].
#[derive(Debug)]
pub struct SubscriptionBuilder<'a> {
    schema: &'a Schema,
    constraints: Vec<Constraint>,
}

impl SubscriptionBuilder<'_> {
    /// Adds an arithmetic constraint `name <op> value`.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::UnknownAttribute`], [`TypeError::KindMismatch`]
    /// or [`TypeError::NanValue`].
    pub fn num(mut self, name: &str, op: NumOp, value: f64) -> Result<Self, TypeError> {
        let attr = self.schema.require(name)?;
        let pred = Predicate::Num(op, Num::new(value)?);
        self.constraints
            .push(Constraint::checked(self.schema, attr, pred)?);
        Ok(self)
    }

    /// Adds a string constraint `name <op> operand`.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::UnknownAttribute`] or [`TypeError::KindMismatch`].
    pub fn str_op(mut self, name: &str, op: StrOp, operand: &str) -> Result<Self, TypeError> {
        let attr = self.schema.require(name)?;
        let pred = Predicate::from_str_op(op, operand)?;
        self.constraints
            .push(Constraint::checked(self.schema, attr, pred)?);
        Ok(self)
    }

    /// Adds a glob-pattern constraint such as `N*SE` (shorthand for
    /// [`StrOp::Pattern`]).
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::UnknownAttribute`], [`TypeError::KindMismatch`]
    /// or [`TypeError::InvalidPattern`].
    pub fn str_pattern(self, name: &str, pattern: &str) -> Result<Self, TypeError> {
        self.str_op(name, StrOp::Pattern, pattern)
    }

    /// Adds a pre-built constraint (kind-checked).
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::KindMismatch`] if the constraint's predicate
    /// does not fit its attribute's declared kind.
    pub fn constraint(mut self, c: Constraint) -> Result<Self, TypeError> {
        self.constraints
            .push(Constraint::checked(self.schema, c.attr, c.pred)?);
        Ok(self)
    }

    /// Finalizes the subscription.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::EmptySubscription`] if no constraint was added.
    pub fn build(self) -> Result<Subscription, TypeError> {
        Subscription::from_constraints(self.constraints)
    }
}

/// Convenience: evaluates a normalized attribute against an event value.
pub fn normalized_attr_eval(attr: &NormalizedAttr, value: &Value) -> bool {
    match attr {
        NormalizedAttr::Arithmetic(set) => match value.as_num() {
            Some(v) => set.contains(v),
            None => false,
        },
        NormalizedAttr::String(list) => match value.as_str() {
            Some(s) => list.iter().all(|c| c.eval(s)),
            None => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::stock_schema;

    fn paper_sub1(schema: &Schema) -> Subscription {
        // Fig. 3, Subscription 1.
        Subscription::builder(schema)
            .str_pattern("exchange", "N*SE")
            .unwrap()
            .str_op("symbol", StrOp::Eq, "OTE")
            .unwrap()
            .num("price", NumOp::Lt, 8.70)
            .unwrap()
            .num("price", NumOp::Gt, 8.30)
            .unwrap()
            .build()
            .unwrap()
    }

    fn paper_sub2(schema: &Schema) -> Subscription {
        // Fig. 3, Subscription 2.
        Subscription::builder(schema)
            .str_op("symbol", StrOp::Prefix, "OT")
            .unwrap()
            .num("price", NumOp::Eq, 8.20)
            .unwrap()
            .num("volume", NumOp::Gt, 130000.0)
            .unwrap()
            .num("low", NumOp::Lt, 8.05)
            .unwrap()
            .build()
            .unwrap()
    }

    fn paper_event(schema: &Schema) -> Event {
        // Fig. 2.
        Event::builder(schema)
            .str("exchange", "NYSE")
            .unwrap()
            .str("symbol", "OTE")
            .unwrap()
            .date("when", 1057055125)
            .unwrap()
            .num("price", 8.40)
            .unwrap()
            .int("volume", 132700)
            .unwrap()
            .num("high", 8.80)
            .unwrap()
            .num("low", 8.22)
            .unwrap()
            .build()
    }

    #[test]
    fn paper_example_matching() {
        let schema = stock_schema();
        let e = paper_event(&schema);
        // §3.3 Example 1: S1 matches, S2 does not (price ≠ 8.20, low not < 8.05).
        assert!(paper_sub1(&schema).matches(&e));
        assert!(!paper_sub2(&schema).matches(&e));
    }

    #[test]
    fn missing_attribute_fails_match() {
        let schema = stock_schema();
        let sub = Subscription::builder(&schema)
            .num("price", NumOp::Gt, 0.0)
            .unwrap()
            .build()
            .unwrap();
        let e = Event::builder(&schema)
            .str("symbol", "OTE")
            .unwrap()
            .build();
        assert!(!sub.matches(&e));
    }

    #[test]
    fn event_may_have_extra_attributes() {
        let schema = stock_schema();
        let sub = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Eq, "OTE")
            .unwrap()
            .build()
            .unwrap();
        assert!(sub.matches(&paper_event(&schema)));
    }

    #[test]
    fn attr_mask_has_distinct_attrs() {
        let schema = stock_schema();
        let s1 = paper_sub1(&schema);
        // exchange, symbol, price — 3 distinct attributes, 4 constraints.
        assert_eq!(s1.len(), 4);
        assert_eq!(s1.attr_mask().count(), 3);
        let s2 = paper_sub2(&schema);
        assert_eq!(s2.attr_mask().count(), 4);
    }

    #[test]
    fn normalize_intersects_arithmetic() {
        let schema = stock_schema();
        let s1 = paper_sub1(&schema);
        let n = s1.normalize();
        let price = schema.attr_id("price").unwrap();
        match n.get(price).unwrap() {
            NormalizedAttr::Arithmetic(set) => {
                assert_eq!(set.len(), 1);
                assert!(set.contains(Num::new(8.40).unwrap()));
                assert!(!set.contains(Num::new(8.30).unwrap()));
                assert!(!set.contains(Num::new(8.70).unwrap()));
            }
            _ => panic!("price should be arithmetic"),
        }
    }

    #[test]
    fn unsatisfiable_detected() {
        let schema = stock_schema();
        let s = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 1.0)
            .unwrap()
            .num("price", NumOp::Gt, 2.0)
            .unwrap()
            .build()
            .unwrap();
        assert!(!s.is_satisfiable());
        assert!(paper_sub1(&schema).is_satisfiable());
    }

    #[test]
    fn covers_arithmetic() {
        let schema = stock_schema();
        let wide = Subscription::builder(&schema)
            .num("price", NumOp::Gt, 0.0)
            .unwrap()
            .build()
            .unwrap();
        let narrow = Subscription::builder(&schema)
            .num("price", NumOp::Gt, 5.0)
            .unwrap()
            .num("price", NumOp::Lt, 6.0)
            .unwrap()
            .build()
            .unwrap();
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(wide.covers(&wide));
    }

    #[test]
    fn covers_requires_attribute_superset_direction() {
        let schema = stock_schema();
        // self constrains fewer attributes than other: may cover.
        let broad = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Prefix, "OT")
            .unwrap()
            .build()
            .unwrap();
        let narrow = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Eq, "OTE")
            .unwrap()
            .num("price", NumOp::Lt, 10.0)
            .unwrap()
            .build()
            .unwrap();
        assert!(broad.covers(&narrow));
        // The reverse cannot hold: events matching `broad` may lack price.
        assert!(!narrow.covers(&broad));
    }

    #[test]
    fn covers_string_patterns() {
        let schema = stock_schema();
        let general = Subscription::builder(&schema)
            .str_pattern("symbol", "m*t")
            .unwrap()
            .build()
            .unwrap();
        let specific = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Eq, "microsoft")
            .unwrap()
            .build()
            .unwrap();
        assert!(general.covers(&specific));
        assert!(!specific.covers(&general));
    }

    #[test]
    fn covers_ne_constraints() {
        let schema = stock_schema();
        let ne = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Ne, "IBM")
            .unwrap()
            .build()
            .unwrap();
        let eq_other = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Eq, "OTE")
            .unwrap()
            .build()
            .unwrap();
        let eq_same = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Eq, "IBM")
            .unwrap()
            .build()
            .unwrap();
        assert!(ne.covers(&eq_other));
        assert!(!ne.covers(&eq_same));
        assert!(ne.covers(&ne));
    }

    #[test]
    fn covers_agrees_with_matching_on_samples() {
        let schema = stock_schema();
        let subs = [paper_sub1(&schema), paper_sub2(&schema)];
        let events = [paper_event(&schema)];
        for a in &subs {
            for b in &subs {
                if a.covers(b) {
                    for e in &events {
                        if b.matches(e) {
                            assert!(a.matches(e));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_subscription_rejected() {
        let schema = stock_schema();
        assert_eq!(
            Subscription::builder(&schema).build().unwrap_err(),
            TypeError::EmptySubscription
        );
    }

    #[test]
    fn wire_size_plausible() {
        let schema = stock_schema();
        let s1 = paper_sub1(&schema);
        // exchange(8)+1+4 + symbol(6)+1+3 + price(5)+1+4 + price(5)+1+4 = 43.
        assert_eq!(s1.wire_size(&schema, 4), 43);
    }

    #[test]
    fn normalized_attr_eval_agrees_with_exact_match() {
        let schema = stock_schema();
        let e = paper_event(&schema);
        for sub in [paper_sub1(&schema), paper_sub2(&schema)] {
            let n = sub.normalize();
            let normalized_match = n
                .iter()
                .all(|(attr, na)| e.get(attr).is_some_and(|v| normalized_attr_eval(na, v)));
            assert_eq!(normalized_match, sub.matches(&e));
        }
    }
}
