//! Type system for content-based publish/subscribe.
//!
//! This crate provides the event/subscription data model of
//! Triantafillou & Economides, *Subscription Summarization: A New Paradigm
//! for Efficient Publish/Subscribe Systems* (ICDCS 2004), §2.1 and §3.2:
//!
//! * **Attributes and values** — an event is an untyped set of typed
//!   attributes (`type – name – value`); see [`Schema`], [`AttrKind`],
//!   [`Value`] and [`Event`].
//! * **Subscriptions** — conjunctions of attribute constraints over a rich
//!   operator set: `=`, `≠`, `<`, `≤`, `>`, `≥` for arithmetic attributes
//!   and equality, `≠`, prefix (`>*`), suffix (`*<`), containment (`*`) and
//!   general glob patterns (e.g. `N*SE`) for strings; see [`Subscription`],
//!   [`Constraint`] and [`Predicate`].
//! * **String patterns with covering** — the paper's SACS structure
//!   replaces constraints by more general ("covering") ones; [`Pattern`]
//!   implements both `matches` and the `covers` language-inclusion test.
//! * **Interval algebra** — the paper's AACS structure stores
//!   non-overlapping value sub-ranges; [`Interval`] and [`IntervalSet`]
//!   provide the underlying algebra.
//! * **Subscription identifiers** — the bit-packed `(c1, c2, c3)` ids of
//!   §3.2; see [`SubscriptionId`], [`AttrMask`] and [`IdLayout`].
//!
//! # Example
//!
//! ```
//! use subsum_types::{Schema, AttrKind, Event, Subscription, NumOp, StrOp};
//!
//! # fn main() -> Result<(), subsum_types::TypeError> {
//! let schema = Schema::builder()
//!     .attr("exchange", AttrKind::String)?
//!     .attr("symbol", AttrKind::String)?
//!     .attr("price", AttrKind::Float)?
//!     .build();
//!
//! let sub = Subscription::builder(&schema)
//!     .str_pattern("exchange", "N*SE")?
//!     .str_op("symbol", StrOp::Eq, "OTE")?
//!     .num("price", NumOp::Lt, 8.70)?
//!     .num("price", NumOp::Gt, 8.30)?
//!     .build()?;
//!
//! let event = Event::builder(&schema)
//!     .str("exchange", "NYSE")?
//!     .str("symbol", "OTE")?
//!     .num("price", 8.40)?
//!     .build();
//!
//! assert!(sub.matches(&event));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod codec;
mod constraint;
mod error;
mod event;
mod id;
mod interval;
pub mod parse;
mod pattern;
mod schema;
mod subcodec;
mod subscription;
mod value;

pub use codec::{ByteReader, ByteWriter, DecodeError};
pub use constraint::{Constraint, NumOp, Predicate, StrOp};
pub use error::TypeError;
pub use event::{Event, EventBuilder};
pub use id::{AttrMask, BrokerId, IdLayout, LocalSubId, SubscriptionId};
pub use interval::{Interval, IntervalSet, LowerBound, UpperBound};
pub use parse::QueryError;
pub use pattern::Pattern;
pub use schema::{
    stock_schema, AttrId, AttrKind, AttributeSpec, Schema, SchemaBuilder, MAX_ATTRIBUTES,
};
pub use subscription::{
    normalized_attr_eval, NormalizedAttr, NormalizedSubscription, StringConstraint, Subscription,
    SubscriptionBuilder,
};
pub use value::{Num, Value};
