//! Property-based tests for the pattern, interval and identifier layers.

use proptest::prelude::*;

use subsum_types::{
    AttrId, AttrMask, BrokerId, IdLayout, Interval, IntervalSet, LocalSubId, Num, NumOp, Pattern,
    SubscriptionId,
};

/// A random glob pattern over a tiny alphabet, as its textual form.
fn pattern_text() -> impl Strategy<Value = String> {
    // Sequences of segments (length 1–3 over {a, b, c}) and stars.
    proptest::collection::vec(
        prop_oneof![Just("*".to_owned()), "[abc]{1,3}".prop_map(|s| s),],
        0..6,
    )
    .prop_map(|parts| parts.concat())
}

/// A random string matched by `pat`: instantiate each wildcard with a
/// random short string over the same alphabet.
fn instantiate(pat: &Pattern, fills: &[String]) -> String {
    let mut out = String::new();
    let mut fill_iter = fills.iter().cycle();
    let mut next_fill = || fill_iter.next().cloned().unwrap_or_default();
    if !pat.anchored_start() {
        out.push_str(&next_fill());
    }
    for (i, seg) in pat.segments().iter().enumerate() {
        if i > 0 {
            out.push_str(&next_fill());
        }
        out.push_str(seg);
    }
    if !pat.anchored_end() {
        out.push_str(&next_fill());
    }
    if pat.segments().is_empty() && pat.is_universal() {
        out.push_str(&next_fill());
    }
    out
}

proptest! {
    /// Instantiating a pattern's wildcards always yields a matching string.
    #[test]
    fn instantiation_matches(text in pattern_text(),
                             fills in proptest::collection::vec("[abc]{0,4}", 1..4)) {
        let pat = Pattern::parse(&text).unwrap();
        let s = instantiate(&pat, &fills);
        prop_assert!(pat.matches(&s), "pattern {pat} rejects its instantiation {s:?}");
    }

    /// Soundness of covering: if p covers q, every instantiation of q is
    /// matched by p.
    #[test]
    fn covers_is_sound(ptext in pattern_text(), qtext in pattern_text(),
                       fills in proptest::collection::vec("[abc]{0,4}", 1..4)) {
        let p = Pattern::parse(&ptext).unwrap();
        let q = Pattern::parse(&qtext).unwrap();
        if p.covers(&q) {
            let s = instantiate(&q, &fills);
            prop_assert!(p.matches(&s),
                "covers({p}, {q}) but {p} rejects {s:?}");
        }
    }

    /// Covering is reflexive.
    #[test]
    fn covers_is_reflexive(text in pattern_text()) {
        let p = Pattern::parse(&text).unwrap();
        prop_assert!(p.covers(&p));
    }

    /// Covering is transitive on observed triples.
    #[test]
    fn covers_is_transitive(a in pattern_text(), b in pattern_text(), c in pattern_text()) {
        let (a, b, c) = (
            Pattern::parse(&a).unwrap(),
            Pattern::parse(&b).unwrap(),
            Pattern::parse(&c).unwrap(),
        );
        if a.covers(&b) && b.covers(&c) {
            prop_assert!(a.covers(&c), "covers not transitive: {a} ⊇ {b} ⊇ {c}");
        }
    }

    /// Display/parse round-trips to the same pattern.
    #[test]
    fn pattern_display_roundtrip(text in pattern_text()) {
        let p = Pattern::parse(&text).unwrap();
        let q = Pattern::parse(&p.to_string()).unwrap();
        prop_assert_eq!(p, q);
    }
}

fn num() -> impl Strategy<Value = Num> {
    (-1000i32..1000).prop_map(|v| Num::new(v as f64 / 4.0).unwrap())
}

fn interval() -> impl Strategy<Value = Interval> {
    (num(), num(), any::<bool>(), any::<bool>()).prop_map(|(a, b, lo_incl, hi_incl)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        use subsum_types::{LowerBound, UpperBound};
        Interval::new(
            if lo_incl {
                LowerBound::Incl(lo)
            } else {
                LowerBound::Excl(lo)
            },
            if hi_incl {
                UpperBound::Incl(hi)
            } else {
                UpperBound::Excl(hi)
            },
        )
    })
}

fn interval_set() -> impl Strategy<Value = IntervalSet> {
    proptest::collection::vec(interval(), 0..5).prop_map(|ivs| {
        ivs.into_iter().fold(IntervalSet::empty(), |acc, iv| {
            acc.union(&IntervalSet::from_interval(iv))
        })
    })
}

proptest! {
    /// Union membership equals disjunction of memberships.
    #[test]
    fn union_is_pointwise_or(a in interval_set(), b in interval_set(), v in num()) {
        let u = a.union(&b);
        prop_assert_eq!(u.contains(v), a.contains(v) || b.contains(v));
    }

    /// Intersection membership equals conjunction of memberships.
    #[test]
    fn intersection_is_pointwise_and(a in interval_set(), b in interval_set(), v in num()) {
        let i = a.intersect(&b);
        prop_assert_eq!(i.contains(v), a.contains(v) && b.contains(v));
    }

    /// Canonical form: parts are sorted, disjoint and non-adjacent, so a
    /// set equals the union of itself with itself.
    #[test]
    fn union_is_idempotent(a in interval_set()) {
        prop_assert_eq!(a.union(&a), a);
    }

    /// covers() agrees with pointwise membership on samples.
    #[test]
    fn covers_sound_on_samples(a in interval_set(), b in interval_set(),
                               vs in proptest::collection::vec(num(), 1..20)) {
        if a.covers(&b) {
            for v in vs {
                if b.contains(v) {
                    prop_assert!(a.contains(v));
                }
            }
        }
    }

    /// without_point removes exactly the point.
    #[test]
    fn without_point_semantics(a in interval_set(), p in num(), v in num()) {
        let w = a.without_point(p);
        if v == p {
            prop_assert!(!w.contains(v));
        } else {
            prop_assert_eq!(w.contains(v), a.contains(v));
        }
    }

    /// NumOp solution sets agree with direct evaluation.
    #[test]
    fn numop_solution_pointwise(v in num(), bound in num()) {
        for op in [NumOp::Eq, NumOp::Ne, NumOp::Lt, NumOp::Le, NumOp::Gt, NumOp::Ge] {
            prop_assert_eq!(op.solution(bound).contains(v), op.eval(v, bound));
        }
    }
}

proptest! {
    /// Subscription id packing round-trips through both the integer and
    /// byte encodings for arbitrary in-range components.
    #[test]
    fn id_roundtrip(brokers in 1u64..5000, max_subs in 1u64..2_000_000,
                    attrs in 1u32..33, broker in any::<u16>(),
                    local in any::<u32>(), mask_bits in any::<u64>()) {
        let layout = IdLayout::new(brokers, max_subs, attrs).unwrap();
        let broker = BrokerId(broker % brokers.min(u16::MAX as u64 + 1) as u16);
        let local = LocalSubId(local % max_subs.min(u32::MAX as u64 + 1) as u32);
        let mask = AttrMask(mask_bits & ((1u64 << attrs) - 1));
        let id = SubscriptionId::new(broker, local, mask);
        let packed = layout.encode(id).unwrap();
        prop_assert_eq!(layout.decode(packed), id);
        let mut buf = Vec::new();
        layout.encode_bytes(id, &mut buf).unwrap();
        prop_assert_eq!(buf.len(), layout.byte_len());
        let (decoded, used) = layout.decode_bytes(&buf).unwrap();
        prop_assert_eq!(decoded, id);
        prop_assert_eq!(used, buf.len());
    }

    /// Mask iteration and count agree.
    #[test]
    fn mask_iter_count(bits in any::<u64>()) {
        let mask = AttrMask(bits);
        let collected: AttrMask = mask.iter().collect();
        prop_assert_eq!(collected, mask);
        prop_assert_eq!(mask.iter().count() as u32, mask.count());
        for a in mask.iter() {
            prop_assert!(mask.contains(a));
        }
        prop_assert!(!mask.contains(AttrId(64)));
    }
}
