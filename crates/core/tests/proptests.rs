//! Property-based tests for summary invariants: the no-false-negative
//! guarantee under insertion, merging, removal and wire round-trips.

use proptest::prelude::*;

use subsum_core::{
    ArithWidth, BrokerSummary, MatchScratch, PatternSummary, ShardScratch, ShardedSummary,
    SummaryCodec,
};
use subsum_types::{
    stock_schema, BrokerId, Event, IdLayout, LocalSubId, NumOp, Pattern, Schema, StrOp,
    Subscription, SubscriptionId, Value,
};

/// Values drawn from a small shared domain so that subscriptions and
/// events collide often enough to exercise matching.
fn num_value() -> impl Strategy<Value = f64> {
    (-16i32..16).prop_map(|v| v as f64 / 4.0)
}

fn str_value() -> impl Strategy<Value = String> {
    "[ab]{0,4}".prop_map(|s| s)
}

fn num_op() -> impl Strategy<Value = NumOp> {
    prop_oneof![
        Just(NumOp::Eq),
        Just(NumOp::Ne),
        Just(NumOp::Lt),
        Just(NumOp::Le),
        Just(NumOp::Gt),
        Just(NumOp::Ge),
    ]
}

fn str_op() -> impl Strategy<Value = StrOp> {
    prop_oneof![
        Just(StrOp::Eq),
        Just(StrOp::Ne),
        Just(StrOp::Prefix),
        Just(StrOp::Suffix),
        Just(StrOp::Contains),
    ]
}

/// One random constraint: attribute choice decides kind. The stock schema
/// has string attributes {0: exchange, 1: symbol} and arithmetic
/// attributes {2: when, 3: price, 4: volume, 5: high, 6: low}.
#[derive(Debug, Clone)]
enum RawConstraint {
    Num(u16, NumOp, f64),
    Str(u16, StrOp, String),
}

fn raw_constraint() -> impl Strategy<Value = RawConstraint> {
    prop_oneof![
        (2u16..7, num_op(), num_value()).prop_map(|(a, o, v)| RawConstraint::Num(a, o, v)),
        (0u16..2, str_op(), str_value()).prop_map(|(a, o, v)| RawConstraint::Str(a, o, v)),
    ]
}

fn build_sub(schema: &Schema, raw: &[RawConstraint]) -> Option<Subscription> {
    let mut b = Subscription::builder(schema);
    for c in raw {
        b = match c {
            RawConstraint::Num(a, o, v) => {
                let name = &schema.spec(subsum_types::AttrId(*a)).name;
                b.num(name, *o, *v).ok()?
            }
            RawConstraint::Str(a, o, v) => {
                let name = &schema.spec(subsum_types::AttrId(*a)).name;
                b.str_op(name, *o, v).ok()?
            }
        };
    }
    b.build().ok()
}

fn subscription() -> impl Strategy<Value = Vec<RawConstraint>> {
    proptest::collection::vec(raw_constraint(), 1..5)
}

/// A random event covering a random subset of attributes.
fn event_strategy() -> impl Strategy<Value = Vec<(u16, RawValue)>> {
    proptest::collection::vec(
        prop_oneof![
            (2u16..7, num_value()).prop_map(|(a, v)| (a, RawValue::Num(v))),
            (0u16..2, str_value()).prop_map(|(a, v)| (a, RawValue::Str(v))),
        ],
        0..7,
    )
}

#[derive(Debug, Clone)]
enum RawValue {
    Num(f64),
    Str(String),
}

fn build_event(schema: &Schema, raw: &[(u16, RawValue)]) -> Event {
    let mut b = Event::builder(schema);
    for (a, v) in raw {
        let name = schema.spec(subsum_types::AttrId(*a)).name.clone();
        b = match v {
            RawValue::Num(x) => b.num(&name, *x).unwrap(),
            RawValue::Str(s) => b.str(&name, s.clone()).unwrap(),
        };
    }
    b.build()
}

/// Runs the deep structural validator on a broker summary. The
/// `validate` methods exist under `cfg(any(test, debug_assertions))`;
/// from an integration test the library's own `test` cfg is off, so the
/// call compiles only in debug builds — release-mode test runs simply
/// skip the deep check instead of failing to build.
fn check_invariants(summary: &BrokerSummary) {
    #[cfg(debug_assertions)]
    summary.validate();
    #[cfg(not(debug_assertions))]
    let _ = summary;
}

/// Same for a standalone SACS pattern summary.
fn check_sacs_invariants(sacs: &PatternSummary) {
    #[cfg(debug_assertions)]
    sacs.validate();
    #[cfg(not(debug_assertions))]
    let _ = sacs;
}

/// Same for a sharded summary (shard-coherence checks against the flat
/// canonical summary).
fn check_sharded_invariants(sharded: &ShardedSummary) {
    #[cfg(debug_assertions)]
    sharded.validate();
    #[cfg(not(debug_assertions))]
    let _ = sharded;
}

/// The shard counts every sharded differential test sweeps: the
/// single-shard degenerate case, small odd/even partitions and the
/// per-core target.
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The fundamental guarantee: summary matching is a superset of exact
    /// matching — no false negatives, ever.
    #[test]
    fn no_false_negatives(subs in proptest::collection::vec(subscription(), 1..8),
                          events in proptest::collection::vec(event_strategy(), 1..8)) {
        let schema = stock_schema();
        let mut summary = BrokerSummary::new(schema.clone());
        let mut exact: Vec<(SubscriptionId, Subscription)> = Vec::new();
        for (i, raw) in subs.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                let id = summary.insert(BrokerId(0), LocalSubId(i as u32), &sub);
                exact.push((id, sub));
            }
        }
        check_invariants(&summary);
        for raw_event in &events {
            let event = build_event(&schema, raw_event);
            let matched = summary.match_event(&event);
            for (id, sub) in &exact {
                if sub.matches(&event) {
                    prop_assert!(
                        matched.contains(id),
                        "false negative: {sub} matches {event} but summary missed {id}"
                    );
                }
            }
        }
    }

    /// Merging preserves the guarantee for subscriptions of all parties.
    #[test]
    fn merge_preserves_no_false_negatives(
        subs_a in proptest::collection::vec(subscription(), 1..5),
        subs_b in proptest::collection::vec(subscription(), 1..5),
        events in proptest::collection::vec(event_strategy(), 1..6)) {
        let schema = stock_schema();
        let mut a = BrokerSummary::new(schema.clone());
        let mut b = BrokerSummary::new(schema.clone());
        let mut exact = Vec::new();
        for (i, raw) in subs_a.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                let id = a.insert(BrokerId(1), LocalSubId(i as u32), &sub);
                exact.push((id, sub));
            }
        }
        for (i, raw) in subs_b.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                let id = b.insert(BrokerId(2), LocalSubId(i as u32), &sub);
                exact.push((id, sub));
            }
        }
        check_invariants(&a);
        check_invariants(&b);
        a.merge(&b);
        check_invariants(&a);
        for raw_event in &events {
            let event = build_event(&schema, raw_event);
            let matched = a.match_event(&event);
            for (id, sub) in &exact {
                if sub.matches(&event) {
                    prop_assert!(matched.contains(id));
                }
            }
        }
    }

    /// Removing unrelated subscriptions cannot create false negatives for
    /// the ones that remain.
    #[test]
    fn removal_preserves_remaining(
        subs in proptest::collection::vec(subscription(), 2..8),
        remove_mask in proptest::collection::vec(any::<bool>(), 2..8),
        events in proptest::collection::vec(event_strategy(), 1..6)) {
        let schema = stock_schema();
        let mut summary = BrokerSummary::new(schema.clone());
        let mut all = Vec::new();
        for (i, raw) in subs.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                let id = summary.insert(BrokerId(0), LocalSubId(i as u32), &sub);
                all.push((id, sub));
            }
        }
        let mut remaining = Vec::new();
        for (i, (id, sub)) in all.into_iter().enumerate() {
            if remove_mask.get(i).copied().unwrap_or(false) {
                summary.remove(id);
            } else {
                remaining.push((id, sub));
            }
        }
        check_invariants(&summary);
        for raw_event in &events {
            let event = build_event(&schema, raw_event);
            let matched = summary.match_event(&event);
            for (id, sub) in &remaining {
                if sub.matches(&event) {
                    prop_assert!(matched.contains(id));
                }
            }
        }
    }

    /// Wire round-trip at 8-byte width is the identity, and the decoded
    /// summary matches events identically.
    #[test]
    fn codec_roundtrip(subs in proptest::collection::vec(subscription(), 1..6),
                       events in proptest::collection::vec(event_strategy(), 1..4)) {
        let schema = stock_schema();
        let layout = IdLayout::new(24, 1024, schema.len() as u32).unwrap();
        let codec = SummaryCodec::new(layout, ArithWidth::Eight);
        let mut summary = BrokerSummary::new(schema.clone());
        for (i, raw) in subs.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                summary.insert(BrokerId((i % 24) as u16), LocalSubId(i as u32), &sub);
            }
        }
        let bytes = codec.encode(&summary).unwrap();
        let decoded = codec.decode(&bytes, &schema).unwrap();
        check_invariants(&summary);
        check_invariants(&decoded);
        prop_assert_eq!(&decoded, &summary);
        for raw_event in &events {
            let event = build_event(&schema, raw_event);
            prop_assert_eq!(decoded.match_event(&event), summary.match_event(&event));
        }
    }

    /// Match results never contain ids that were not inserted, and every
    /// reported id's mask is fully covered by the event's attributes.
    #[test]
    fn matches_are_known_ids(subs in proptest::collection::vec(subscription(), 1..6),
                             raw_event in event_strategy()) {
        let schema = stock_schema();
        let mut summary = BrokerSummary::new(schema.clone());
        let mut ids = Vec::new();
        for (i, raw) in subs.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                ids.push(summary.insert(BrokerId(0), LocalSubId(i as u32), &sub));
            }
        }
        check_invariants(&summary);
        let event = build_event(&schema, &raw_event);
        for id in summary.match_event(&event) {
            prop_assert!(ids.contains(&id));
            for attr in id.mask.iter() {
                prop_assert!(event.get(attr).is_some(),
                    "matched id {id} constrains {attr} absent from the event");
            }
        }
    }

    /// Events whose values satisfy no subscription yield empty results
    /// when domains are disjoint.
    #[test]
    fn disjoint_domains_never_match(v in 100f64..200f64) {
        let schema = stock_schema();
        let mut summary = BrokerSummary::new(schema.clone());
        let sub = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 50.0).unwrap()
            .build().unwrap();
        summary.insert(BrokerId(0), LocalSubId(0), &sub);
        let event = Event::builder(&schema)
            .set("price", Value::float(v).unwrap()).unwrap()
            .build();
        prop_assert!(summary.match_event(&event).is_empty());
    }

    /// Differential check of the SACS pattern index: the indexed query
    /// must return exactly the ids the retained naive full scan returns —
    /// no false negatives from bucket pruning, no spurious extras, and
    /// byte-identical ordering after sorting both sides. Patterns draw
    /// from a tiny alphabet with wildcards so the prefix, suffix and
    /// residual buckets all get exercised and collide with the values.
    #[test]
    fn indexed_pattern_query_is_identical_to_scan(
        patterns in proptest::collection::vec("[ab*]{1,6}", 1..12),
        values in proptest::collection::vec("[ab]{0,6}", 1..12)) {
        let mut sacs = PatternSummary::new();
        for (i, text) in patterns.iter().enumerate() {
            if let Ok(p) = Pattern::parse(text) {
                // Standalone SACS rows hold dense ids; any distinct u32s do.
                sacs.insert(p, i as u32);
            }
        }
        check_sacs_invariants(&sacs);
        for v in &values {
            let mut indexed = sacs.query(v);
            let mut scanned = sacs.query_scan(v);
            indexed.sort_unstable();
            scanned.sort_unstable();
            prop_assert_eq!(indexed, scanned, "value {:?} over patterns {:?}", v, patterns);
        }
    }

    /// Differential check of the full matcher: the scratch-reusing
    /// indexed path returns exactly the same id sets as the naive
    /// full-scan matcher. Both outputs are produced sorted, so equality
    /// covers ordering too; the scratch is reused across events to also
    /// exercise steady-state reuse.
    #[test]
    fn indexed_matcher_is_identical_to_scan(
        subs in proptest::collection::vec(subscription(), 1..8),
        events in proptest::collection::vec(event_strategy(), 1..8)) {
        let schema = stock_schema();
        let mut summary = BrokerSummary::new(schema.clone());
        for (i, raw) in subs.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                summary.insert(BrokerId(0), LocalSubId(i as u32), &sub);
            }
        }
        let mut scratch = MatchScratch::new();
        check_invariants(&summary);
        for raw_event in &events {
            let event = build_event(&schema, raw_event);
            let indexed = summary.match_event_into(&event, &mut scratch).matched.clone();
            let scanned = summary.match_event_scan(&event).matched;
            prop_assert_eq!(indexed, scanned);
        }
    }

    /// Differential check of the dense epoch-counter kernel on a summary
    /// built by merging: the union intern table renumbers both sides'
    /// dense postings, after which the kernel must still return exactly
    /// what the plain-`SubscriptionId` scan reference returns, in the
    /// same sorted order.
    #[test]
    fn merged_dense_kernel_is_identical_to_scan(
        subs_a in proptest::collection::vec(subscription(), 1..5),
        subs_b in proptest::collection::vec(subscription(), 1..5),
        events in proptest::collection::vec(event_strategy(), 1..6)) {
        let schema = stock_schema();
        let mut a = BrokerSummary::new(schema.clone());
        let mut b = BrokerSummary::new(schema.clone());
        // Interleaved broker ids so the union table mixes both sides'
        // dense spaces instead of concatenating them.
        for (i, raw) in subs_a.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                a.insert(BrokerId((i % 3) as u16 * 2), LocalSubId(i as u32), &sub);
            }
        }
        for (i, raw) in subs_b.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                b.insert(BrokerId((i % 3) as u16 * 2 + 1), LocalSubId(i as u32), &sub);
            }
        }
        a.merge(&b);
        check_invariants(&a);
        let mut scratch = MatchScratch::new();
        for raw_event in &events {
            let event = build_event(&schema, raw_event);
            let dense = a.match_event_into(&event, &mut scratch).matched.clone();
            let scanned = a.match_event_scan(&event).matched;
            prop_assert_eq!(dense, scanned);
        }
    }

    /// Differential check of the dense kernel after a wire round-trip:
    /// decode rebuilds the intern table from scratch, and the rebuilt
    /// dense state must match both the scan reference and the original
    /// summary event-for-event.
    #[test]
    fn decoded_dense_kernel_is_identical_to_scan(
        subs in proptest::collection::vec(subscription(), 1..6),
        events in proptest::collection::vec(event_strategy(), 1..6)) {
        let schema = stock_schema();
        let layout = IdLayout::new(24, 1024, schema.len() as u32).unwrap();
        let codec = SummaryCodec::new(layout, ArithWidth::Eight);
        let mut summary = BrokerSummary::new(schema.clone());
        for (i, raw) in subs.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                summary.insert(BrokerId((i % 24) as u16), LocalSubId(i as u32), &sub);
            }
        }
        let bytes = codec.encode(&summary).unwrap();
        let decoded = codec.decode(&bytes, &schema).unwrap();
        check_invariants(&decoded);
        let mut scratch = MatchScratch::new();
        for raw_event in &events {
            let event = build_event(&schema, raw_event);
            let dense = decoded.match_event_into(&event, &mut scratch).matched.clone();
            let scanned = decoded.match_event_scan(&event).matched;
            prop_assert_eq!(&dense, &scanned);
            prop_assert_eq!(dense, summary.match_event(&event));
        }
    }

    /// Wire round-trip with a populated SACS anchor index. The index is
    /// derived state — it never travels on the wire (`cargo xtask
    /// check` enforces that) — so the decoder must rebuild it, and the
    /// rebuilt index must answer `query_into` byte-identically to the
    /// original's while passing deep validation.
    #[test]
    fn decoded_sacs_index_answers_identically(
        patterns in proptest::collection::vec("[ab]{0,3}\\*?[ab]{0,3}", 1..10),
        values in proptest::collection::vec("[ab]{0,6}", 1..10)) {
        let schema = stock_schema();
        let layout = IdLayout::new(24, 1024, schema.len() as u32).unwrap();
        let codec = SummaryCodec::new(layout, ArithWidth::Eight);
        let mut summary = BrokerSummary::new(schema.clone());
        for (i, text) in patterns.iter().enumerate() {
            // Alternate between the two string attributes so both SACS
            // instances (and their prefix/suffix/residual buckets) are
            // exercised.
            let attr = if i % 2 == 0 { "exchange" } else { "symbol" };
            if let Ok(b) = Subscription::builder(&schema).str_pattern(attr, text) {
                if let Ok(sub) = b.build() {
                    summary.insert(BrokerId((i % 24) as u16), LocalSubId(i as u32), &sub);
                }
            }
        }
        let bytes = codec.encode(&summary).unwrap();
        let decoded = codec.decode(&bytes, &schema).unwrap();
        check_invariants(&decoded);
        for attr in [subsum_types::AttrId(0), subsum_types::AttrId(1)] {
            match (summary.string_summary(attr), decoded.string_summary(attr)) {
                (Some(orig), Some(dec)) => {
                    check_sacs_invariants(dec);
                    for v in &values {
                        let mut want = Vec::new();
                        let mut got = Vec::new();
                        orig.query_into(v, &mut want);
                        dec.query_into(v, &mut got);
                        prop_assert_eq!(got, want, "attr {:?} value {:?}", attr, v);
                    }
                }
                (orig, dec) => prop_assert_eq!(dec.is_none(), orig.is_none()),
            }
        }
    }

    /// Differential check of the sharded matcher on insert-built
    /// summaries: for every shard count, the sharded kernel's output must
    /// equal both the single-summary dense kernel and the naive
    /// `match_event_scan` reference, event for event, in the same sorted
    /// order — and the sharded digest must equal the flat digest (shards
    /// are derived state; the canonical representation is untouched).
    #[test]
    fn sharded_matcher_is_identical_to_flat_and_scan(
        subs in proptest::collection::vec(subscription(), 1..8),
        events in proptest::collection::vec(event_strategy(), 1..8)) {
        let schema = stock_schema();
        let mut flat = BrokerSummary::new(schema.clone());
        for (i, raw) in subs.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                flat.insert(BrokerId(0), LocalSubId(i as u32), &sub);
            }
        }
        check_invariants(&flat);
        let mut flat_scratch = MatchScratch::new();
        for shards in SHARD_COUNTS {
            let sharded = ShardedSummary::from_flat(flat.clone(), shards);
            check_sharded_invariants(&sharded);
            prop_assert_eq!(sharded.digest(), flat.digest());
            let mut scratch = ShardScratch::new();
            for raw_event in &events {
                let event = build_event(&schema, raw_event);
                let got = sharded.match_event_into(&event, &mut scratch).matched.clone();
                let dense = flat.match_event_into(&event, &mut flat_scratch).matched.clone();
                let scanned = flat.match_event_scan(&event).matched;
                prop_assert_eq!(&got, &dense, "shards={}", shards);
                prop_assert_eq!(got, scanned, "shards={}", shards);
            }
        }
    }

    /// Differential check of the sharded matcher on summaries built by
    /// merging — the union intern table renumbers dense postings, and the
    /// re-derived partition must still split the flat rows exactly. Both
    /// merge orders are exercised: merging into a flat summary then
    /// sharding, and merging through the `ShardedSummary` mutation API.
    #[test]
    fn sharded_matcher_identical_on_merged_summaries(
        subs_a in proptest::collection::vec(subscription(), 1..5),
        subs_b in proptest::collection::vec(subscription(), 1..5),
        events in proptest::collection::vec(event_strategy(), 1..6)) {
        let schema = stock_schema();
        let mut a = BrokerSummary::new(schema.clone());
        let mut b = BrokerSummary::new(schema.clone());
        for (i, raw) in subs_a.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                a.insert(BrokerId((i % 3) as u16 * 2), LocalSubId(i as u32), &sub);
            }
        }
        for (i, raw) in subs_b.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                b.insert(BrokerId((i % 3) as u16 * 2 + 1), LocalSubId(i as u32), &sub);
            }
        }
        let via_sharded = ShardedSummary::from_flat(a.clone(), 3);
        via_sharded.merge(&b);
        a.merge(&b);
        check_invariants(&a);
        check_sharded_invariants(&via_sharded);
        prop_assert_eq!(via_sharded.digest(), a.digest());
        let mut flat_scratch = MatchScratch::new();
        let mut scratch = ShardScratch::new();
        for shards in SHARD_COUNTS {
            let sharded = ShardedSummary::from_flat(a.clone(), shards);
            check_sharded_invariants(&sharded);
            for raw_event in &events {
                let event = build_event(&schema, raw_event);
                let got = sharded.match_event_into(&event, &mut scratch).matched.clone();
                let dense = a.match_event_into(&event, &mut flat_scratch).matched.clone();
                let scanned = a.match_event_scan(&event).matched;
                prop_assert_eq!(&got, &dense, "shards={}", shards);
                prop_assert_eq!(&got, &scanned, "shards={}", shards);
                prop_assert_eq!(
                    via_sharded.match_event_into(&event, &mut scratch).matched.clone(),
                    dense
                );
            }
        }
    }

    /// Differential check of the compiled-plan kernel on churn-built
    /// summaries: after interleaved inserts and removals (which
    /// invalidate and lazily recompile the plan), the plan path
    /// (`match_event_into`), the dense reference kernel
    /// (`match_event_dense_into`) and the naive `match_event_scan` must
    /// return identical sorted id sets — and compiling the plan must
    /// leave the wire bytes and digest untouched, since plans are
    /// derived state that never travels.
    #[test]
    fn plan_kernel_identical_to_dense_and_scan_under_churn(
        subs in proptest::collection::vec(subscription(), 2..8),
        more in proptest::collection::vec(subscription(), 1..5),
        remove_mask in proptest::collection::vec(any::<bool>(), 2..8),
        events in proptest::collection::vec(event_strategy(), 1..6)) {
        let schema = stock_schema();
        let layout = IdLayout::new(24, 1024, schema.len() as u32).unwrap();
        let codec = SummaryCodec::new(layout, ArithWidth::Eight);
        let mut summary = BrokerSummary::new(schema.clone());
        let mut inserted = Vec::new();
        for (i, raw) in subs.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                inserted.push(summary.insert(BrokerId(0), LocalSubId(i as u32), &sub));
            }
        }
        // Interleave matching with the churn so stale plans are compiled,
        // invalidated by the removals, and recompiled.
        if let Some(raw_event) = events.first() {
            summary.match_event(&build_event(&schema, raw_event));
        }
        for (i, id) in inserted.iter().enumerate() {
            if remove_mask.get(i).copied().unwrap_or(false) {
                summary.remove(*id);
            }
        }
        for (i, raw) in more.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                summary.insert(BrokerId(1), LocalSubId(1000 + i as u32), &sub);
            }
        }
        check_invariants(&summary);
        let bytes_before = codec.encode(&summary).unwrap();
        let digest_before = summary.digest();
        let mut plan_scratch = MatchScratch::new();
        let mut dense_scratch = MatchScratch::new();
        for raw_event in &events {
            let event = build_event(&schema, raw_event);
            let plan = summary.match_event_into(&event, &mut plan_scratch).matched.clone();
            let dense = summary
                .match_event_dense_into(&event, &mut dense_scratch)
                .matched
                .clone();
            let scanned = summary.match_event_scan(&event).matched;
            prop_assert_eq!(&plan, &dense);
            prop_assert_eq!(&plan, &scanned);
        }
        let mut shard_scratch = ShardScratch::new();
        for shards in SHARD_COUNTS {
            let sharded = ShardedSummary::from_flat(summary.clone(), shards);
            check_sharded_invariants(&sharded);
            for raw_event in &events {
                let event = build_event(&schema, raw_event);
                let got = sharded.match_event_into(&event, &mut shard_scratch).matched.clone();
                prop_assert_eq!(got, summary.match_event(&event), "shards={}", shards);
            }
        }
        // Matching compiled and cached a plan; the canonical
        // representation must be byte-identical to before.
        check_invariants(&summary);
        prop_assert_eq!(codec.encode(&summary).unwrap(), bytes_before);
        prop_assert_eq!(summary.digest(), digest_before);
    }

    /// The dense reference kernel also agrees with the compiled plan on
    /// merged and wire-roundtripped summaries, where the intern table was
    /// renumbered (merge) or rebuilt from scratch (decode).
    #[test]
    fn dense_reference_identical_on_merged_and_decoded(
        subs_a in proptest::collection::vec(subscription(), 1..5),
        subs_b in proptest::collection::vec(subscription(), 1..5),
        events in proptest::collection::vec(event_strategy(), 1..6)) {
        let schema = stock_schema();
        let layout = IdLayout::new(24, 1024, schema.len() as u32).unwrap();
        let codec = SummaryCodec::new(layout, ArithWidth::Eight);
        let mut a = BrokerSummary::new(schema.clone());
        let mut b = BrokerSummary::new(schema.clone());
        for (i, raw) in subs_a.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                a.insert(BrokerId((i % 3) as u16 * 2), LocalSubId(i as u32), &sub);
            }
        }
        for (i, raw) in subs_b.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                b.insert(BrokerId((i % 3) as u16 * 2 + 1), LocalSubId(i as u32), &sub);
            }
        }
        a.merge(&b);
        check_invariants(&a);
        let decoded = codec.decode(&codec.encode(&a).unwrap(), &schema).unwrap();
        check_invariants(&decoded);
        let mut plan_scratch = MatchScratch::new();
        let mut dense_scratch = MatchScratch::new();
        for raw_event in &events {
            let event = build_event(&schema, raw_event);
            for summary in [&a, &decoded] {
                let plan = summary.match_event_into(&event, &mut plan_scratch).matched.clone();
                let dense = summary
                    .match_event_dense_into(&event, &mut dense_scratch)
                    .matched
                    .clone();
                let scanned = summary.match_event_scan(&event).matched;
                prop_assert_eq!(&plan, &dense);
                prop_assert_eq!(&plan, &scanned);
            }
        }
    }

    /// Differential check of the sharded matcher on wire-roundtrip-built
    /// summaries: decode rebuilds the intern table, sharding derives the
    /// partition from it, and the result must match the original flat
    /// summary event-for-event with an identical digest — the wire format
    /// is untouched by sharding.
    #[test]
    fn sharded_matcher_identical_after_wire_roundtrip(
        subs in proptest::collection::vec(subscription(), 1..6),
        events in proptest::collection::vec(event_strategy(), 1..6)) {
        let schema = stock_schema();
        let layout = IdLayout::new(24, 1024, schema.len() as u32).unwrap();
        let codec = SummaryCodec::new(layout, ArithWidth::Eight);
        let mut summary = BrokerSummary::new(schema.clone());
        for (i, raw) in subs.iter().enumerate() {
            if let Some(sub) = build_sub(&schema, raw) {
                summary.insert(BrokerId((i % 24) as u16), LocalSubId(i as u32), &sub);
            }
        }
        let bytes = codec.encode(&summary).unwrap();
        let decoded = codec.decode(&bytes, &schema).unwrap();
        check_invariants(&decoded);
        let mut scratch = ShardScratch::new();
        for shards in SHARD_COUNTS {
            let sharded = ShardedSummary::from_flat(decoded.clone(), shards);
            check_sharded_invariants(&sharded);
            prop_assert_eq!(sharded.digest(), summary.digest());
            // Encoding through the sharded view is byte-identical too.
            let re_encoded = sharded.with_flat(|flat| codec.encode(flat).unwrap());
            prop_assert_eq!(&re_encoded, &bytes);
            for raw_event in &events {
                let event = build_event(&schema, raw_event);
                let got = sharded.match_event_into(&event, &mut scratch).matched.clone();
                prop_assert_eq!(got, summary.match_event(&event), "shards={}", shards);
            }
        }
    }
}
