//! Exhaustive model check of the snapshot pointer-flip + deferred
//! reclamation protocol (`subsum_core::snapshot`).
//!
//! The crate cannot take a `loom` dependency, so this is the equivalent
//! hand-rolled explicit-state model checker: the protocol's atomic steps
//! are modeled as a small transition system and **every** interleaving of
//! one writer and two readers is explored by DFS with state
//! deduplication. The implementation uses `SeqCst` for every atomic
//! operation, so sequentially-consistent interleaving enumeration is a
//! sound model — there are no weaker orderings the model would miss.
//!
//! Modeled steps (mirroring `snapshot.rs` literally):
//!
//! * writer publish: `swap current` → `bump epoch` → `push limbo`, then a
//!   sweep that reads each announcement slot as a separate atomic step
//!   and frees the limbo entries no slot blocks (slots are read without
//!   any synchronization with readers, hence the per-slot granularity);
//! * reader pin: `read epoch e` → `announce e` → `re-check epoch (retry
//!   on change)` → `load pointer` → *deref* → `quiesce slot`.
//!
//! Checked properties, in every reachable state:
//!
//! * **no use-after-free**: a reader never dereferences a freed version,
//!   and no sweep frees a version a reader currently holds;
//! * **no double-free** and **no leak**: when all programs finish and a
//!   final sweep runs, every retired version has been freed exactly once
//!   and limbo is empty.
//!
//! A deliberately broken protocol variant (pointer load *before* the
//! announcement) is also model-checked and must produce a use-after-free
//! — evidence the checker actually has teeth.

use std::collections::HashSet;

/// Version ids are small integers; `NONE` marks "no version held".
const NONE: u8 = u8::MAX;

/// One reader's program state.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Reader {
    /// 0: read epoch, 1: announce, 2: re-check, 3: load, 4: deref,
    /// 5: quiesce. 6: done with current cycle (decrement cycles, restart
    /// or finish).
    pc: u8,
    /// Epoch register (`e` in `pin`).
    e: u64,
    /// Loaded version (register holding the pinned pointer).
    ptr: u8,
    /// Pin/deref/unpin cycles left to run.
    cycles_left: u8,
}

impl Reader {
    fn done(&self) -> bool {
        self.cycles_left == 0 && self.pc == 0
    }

    /// Whether the reader currently holds (may dereference) version `v`.
    fn holds(&self, v: u8) -> bool {
        self.ptr == v && (self.pc == 4 || self.pc == 5)
    }
}

/// The writer's program state: `publishes_left` publishes, each compiled
/// to swap/bump/push plus one sweep (slot reads at per-slot granularity),
/// then one final sweep after the last publish.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Writer {
    /// 0: swap, 1: bump, 2: push, 3+k: read slot k, 3+R: free pass.
    /// After the free pass: next publish or final-sweep-only run.
    pc: u8,
    old: u8,
    retire: u64,
    /// Announcement values collected by the current sweep.
    scan: Vec<u64>,
    publishes_left: u8,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    epoch: u64,
    current: u8,
    next_ver: u8,
    slots: [u64; 2],
    /// Retired versions awaiting quiescence: (retire_epoch, version).
    limbo: Vec<(u64, u8)>,
    /// Versions freed so far (sorted; doubles as the double-free check).
    freed: Vec<u8>,
    writer: Writer,
    readers: [Reader; 2],
}

impl State {
    fn initial(publishes: u8, cycles: u8) -> State {
        State {
            epoch: 1,
            current: 0,
            next_ver: 1,
            slots: [0, 0],
            limbo: Vec::new(),
            freed: Vec::new(),
            writer: Writer {
                pc: 0,
                old: NONE,
                retire: 0,
                scan: Vec::new(),
                publishes_left: publishes,
            },
            readers: [
                Reader {
                    pc: 0,
                    e: 0,
                    ptr: NONE,
                    cycles_left: cycles,
                },
                Reader {
                    pc: 0,
                    e: 0,
                    ptr: NONE,
                    cycles_left: cycles,
                },
            ],
        }
    }

    /// After the last publish the writer keeps running sweep passes
    /// (mirroring repeated `try_reclaim` calls) until limbo drains, so
    /// "done" means everything retired has been freed.
    fn writer_done(&self) -> bool {
        self.writer.publishes_left == 0 && self.writer.pc == 0 && self.limbo.is_empty()
    }

    fn done(&self) -> bool {
        self.writer_done() && self.readers.iter().all(Reader::done)
    }

    /// The sweep's free pass: frees every limbo entry no collected
    /// announcement blocks. Returns an error on a free of a held version
    /// or a double free.
    fn free_pass(&mut self) -> Result<(), String> {
        let scan = self.writer.scan.clone();
        let mut kept = Vec::new();
        for &(retire, v) in &self.limbo {
            let blocked = scan.iter().any(|&a| a != 0 && a < retire);
            if blocked {
                kept.push((retire, v));
                continue;
            }
            for (i, r) in self.readers.iter().enumerate() {
                if r.holds(v) {
                    return Err(format!("freed version {v} while reader {i} holds it"));
                }
            }
            if self.freed.contains(&v) {
                return Err(format!("double free of version {v}"));
            }
            self.freed.push(v);
            self.freed.sort_unstable();
        }
        self.limbo = kept;
        self.writer.scan.clear();
        Ok(())
    }
}

/// `announce_before_load = false` models the deliberately broken variant
/// where the reader loads the pointer first and announces afterwards.
#[derive(Clone, Copy)]
struct Protocol {
    announce_before_load: bool,
    /// Reader slot count == reader count (each sweep reads both).
    slot_reads: u8,
}

/// Applies the writer's next atomic step. Returns `Err` on a safety
/// violation.
fn step_writer(s: &mut State, proto: Protocol) -> Result<(), String> {
    let w = &mut s.writer;
    if w.publishes_left == 0 {
        // Trailing `try_reclaim` sweeps: slot reads then the free pass,
        // repeated until limbo drains (see `writer_done`).
        if (w.pc as usize) < proto.slot_reads as usize {
            let k = w.pc as usize;
            let v = s.slots[k];
            s.writer.scan.push(v);
            s.writer.pc += 1;
        } else {
            s.free_pass()?;
            s.writer.pc = 0;
        }
        return Ok(());
    }
    match w.pc {
        // swap: retire the current version, install a fresh one.
        0 => {
            w.old = s.current;
            s.current = s.next_ver;
            s.next_ver += 1;
            w.pc = 1;
        }
        // bump: the retired version's retire epoch is the new epoch.
        1 => {
            s.epoch += 1;
            w.retire = s.epoch;
            w.pc = 2;
        }
        // push limbo.
        2 => {
            let (retire, old) = (w.retire, w.old);
            s.limbo.push((retire, old));
            s.writer.scan.clear();
            s.writer.pc = 3;
        }
        // sweep: one slot read per step, then the free pass.
        pc => {
            let k = (pc - 3) as usize;
            if k < proto.slot_reads as usize {
                let v = s.slots[k];
                s.writer.scan.push(v);
                s.writer.pc += 1;
            } else {
                s.free_pass()?;
                s.writer.pc = 0;
                s.writer.publishes_left -= 1;
            }
        }
    }
    Ok(())
}

/// Applies reader `i`'s next atomic step. Returns `Err` on a safety
/// violation (dereference of a freed version).
fn step_reader(s: &mut State, i: usize, proto: Protocol) -> Result<(), String> {
    let pc = s.readers[i].pc;
    match pc {
        // read epoch
        0 => {
            s.readers[i].e = s.epoch;
            s.readers[i].pc = 1;
        }
        // announce (or, in the broken variant, load first)
        1 => {
            if proto.announce_before_load {
                s.slots[i] = s.readers[i].e;
                s.readers[i].pc = 2;
            } else {
                s.readers[i].ptr = s.current;
                s.readers[i].pc = 2;
            }
        }
        // re-check epoch (correct variant) / announce (broken variant)
        2 => {
            if proto.announce_before_load {
                if s.epoch == s.readers[i].e {
                    s.readers[i].pc = 3;
                } else {
                    s.readers[i].pc = 0; // retry
                }
            } else {
                s.slots[i] = s.readers[i].e;
                s.readers[i].pc = 4; // straight to deref
            }
        }
        // load pointer
        3 => {
            s.readers[i].ptr = s.current;
            s.readers[i].pc = 4;
        }
        // deref: the version must not have been freed.
        4 => {
            let v = s.readers[i].ptr;
            if s.freed.contains(&v) {
                return Err(format!("reader {i} dereferenced freed version {v}"));
            }
            s.readers[i].pc = 5;
        }
        // quiesce the slot, release the pointer, next cycle.
        _ => {
            s.slots[i] = 0;
            s.readers[i].ptr = NONE;
            s.readers[i].cycles_left -= 1;
            s.readers[i].pc = 0;
        }
    }
    Ok(())
}

/// DFS over every interleaving, deduplicating states. Returns the first
/// violation found, plus exploration counts.
fn explore(proto: Protocol, publishes: u8, cycles: u8) -> (Option<String>, usize) {
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack = vec![State::initial(publishes, cycles)];
    let mut explored = 0usize;
    let mut terminals = 0usize;
    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        explored += 1;
        if state.done() {
            // Terminal: exactly one version per publish was retired, and
            // `writer_done` requires limbo to have drained — so every
            // retired version must appear in `freed` exactly once.
            terminals += 1;
            if state.freed.len() != publishes as usize {
                return (
                    Some(format!(
                        "terminal state freed {} of {publishes} retired versions",
                        state.freed.len()
                    )),
                    explored,
                );
            }
            continue;
        }
        if !state.writer_done() {
            let mut next = state.clone();
            match step_writer(&mut next, proto) {
                Ok(()) => stack.push(next),
                Err(e) => return (Some(e), explored),
            }
        }
        for i in 0..state.readers.len() {
            if !state.readers[i].done() {
                let mut next = state.clone();
                match step_reader(&mut next, i, proto) {
                    Ok(()) => stack.push(next),
                    Err(e) => return (Some(e), explored),
                }
            }
        }
    }
    // Full reclamation must actually be reachable (guards against the
    // sweep never draining limbo — a livelock-shaped leak).
    if terminals == 0 {
        return (Some("no terminal state reached".to_string()), explored);
    }
    (None, explored)
}

/// Model scale: under Miri the state space is trimmed (Miri interprets
/// every HashSet operation slowly); natively the full configuration runs.
fn scale() -> (u8, u8) {
    if cfg!(miri) {
        (1, 1)
    } else {
        (3, 2)
    }
}

#[test]
fn pointer_flip_protocol_has_no_use_after_free_or_leak() {
    let (publishes, cycles) = scale();
    let proto = Protocol {
        announce_before_load: true,
        slot_reads: 2,
    };
    let (violation, explored) = explore(proto, publishes, cycles);
    assert!(
        violation.is_none(),
        "protocol violation after {explored} states: {}",
        violation.unwrap_or_default()
    );
    // The checker must have actually explored a non-trivial interleaving
    // space (guards against a vacuous pass from a modeling bug).
    assert!(
        explored > 100,
        "suspiciously small state space: {explored} states"
    );
}

#[test]
fn broken_load_before_announce_is_caught() {
    let (publishes, cycles) = scale();
    let proto = Protocol {
        announce_before_load: false,
        slot_reads: 2,
    };
    let (violation, _) = explore(proto, publishes.max(1), cycles.max(1));
    let msg = violation.expect(
        "the load-before-announce variant must exhibit a use-after-free \
         (the model checker failed to catch a known-broken protocol)",
    );
    assert!(
        msg.contains("dereferenced freed") || msg.contains("while reader"),
        "unexpected violation kind: {msg}"
    );
}
