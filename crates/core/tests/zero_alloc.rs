//! Steady-state allocation check for `BrokerSummary::match_event_into`.
//!
//! A counting allocator wraps the system allocator. After warm-up passes
//! have grown a reused [`MatchScratch`] to its high-water capacity,
//! further matches over the same event population must perform zero heap
//! allocations: the whole point of the scratch API is that a broker's
//! steady-state matching loop never touches the allocator.
//!
//! This lives in an integration test (its own crate root) because the
//! library itself forbids `unsafe`, while a `GlobalAlloc` impl requires
//! it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use subsum_core::{BrokerSummary, MatchScratch, ShardScratch, ShardedSummary};
use subsum_types::{stock_schema, BrokerId, Event, LocalSubId, NumOp, StrOp, Subscription};

/// Counts every allocation-path entry; deallocations are not counted
/// because releasing memory is not the failure mode under test.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure delegation to `System` plus a relaxed counter bump; all
// layout/pointer contracts are forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn match_event_into_allocates_nothing_at_steady_state() {
    let schema = stock_schema();
    let mut summary = BrokerSummary::new(schema.clone());

    // A mixed population: arithmetic ranges and points, string prefixes,
    // suffixes and literals, so both the AACS and the indexed SACS query
    // paths run during every match.
    let subs: Vec<Subscription> = vec![
        Subscription::builder(&schema)
            .num("price", NumOp::Lt, 50.0)
            .unwrap()
            .build()
            .unwrap(),
        Subscription::builder(&schema)
            .num("price", NumOp::Ge, 10.0)
            .unwrap()
            .num("volume", NumOp::Le, 900.0)
            .unwrap()
            .build()
            .unwrap(),
        Subscription::builder(&schema)
            .num("volume", NumOp::Eq, 500.0)
            .unwrap()
            .build()
            .unwrap(),
        Subscription::builder(&schema)
            .str_op("symbol", StrOp::Prefix, "AA")
            .unwrap()
            .build()
            .unwrap(),
        Subscription::builder(&schema)
            .str_op("symbol", StrOp::Suffix, "PL")
            .unwrap()
            .build()
            .unwrap(),
        Subscription::builder(&schema)
            .str_op("symbol", StrOp::Eq, "MSFT")
            .unwrap()
            .str_op("exchange", StrOp::Contains, "YS")
            .unwrap()
            .build()
            .unwrap(),
    ];
    for (i, sub) in subs.iter().enumerate() {
        summary.insert(BrokerId(0), LocalSubId(i as u32), sub);
    }

    let events: Vec<Event> = vec![
        Event::builder(&schema)
            .num("price", 25.0)
            .unwrap()
            .num("volume", 500.0)
            .unwrap()
            .str("symbol", "AAPL".to_string())
            .unwrap()
            .build(),
        Event::builder(&schema)
            .num("price", 75.0)
            .unwrap()
            .str("symbol", "MSFT".to_string())
            .unwrap()
            .str("exchange", "NYSE".to_string())
            .unwrap()
            .build(),
        Event::builder(&schema)
            .num("volume", 123.0)
            .unwrap()
            .str("symbol", "GOOG".to_string())
            .unwrap()
            .build(),
    ];

    let mut scratch = MatchScratch::new();

    // Sanity: the fixture actually matches something, otherwise the test
    // could pass by matching trivially empty work.
    let warm: usize = events
        .iter()
        .map(|e| summary.match_event_into(e, &mut scratch).matched.len())
        .sum();
    assert!(warm > 0, "fixture must produce matches");

    // The measured region can race with incidental allocations from the
    // test harness itself (it has other threads), so allow a few retries:
    // a real per-event allocation in the matcher shows up on every
    // attempt, while one-off noise does not.
    const PASSES: usize = 100;
    let mut zero_delta = false;
    let mut last_delta = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut total = 0usize;
        for _ in 0..PASSES {
            for e in &events {
                total += summary.match_event_into(e, &mut scratch).matched.len();
            }
        }
        std::hint::black_box(total);
        last_delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
        if last_delta == 0 {
            zero_delta = true;
            break;
        }
    }
    assert!(
        zero_delta,
        "steady-state match_event_into allocated ({last_delta} allocations \
         across {PASSES} passes)"
    );
}

/// The compiled-plan epoch-counter kernel at a large subscription
/// population: once warm-up has compiled the plan and grown the scratch
/// counter arrays to the summary's dense-id space, matching must stay
/// allocation-free even when hundreds of candidates are touched per
/// event across several attributes.
#[test]
fn dense_kernel_allocates_nothing_with_large_population() {
    let schema = stock_schema();
    let mut summary = BrokerSummary::new(schema.clone());

    // 600 subscriptions over three attributes: overlapping price bands
    // (every event value lands in many rows), volume points, and a cycle
    // of symbol prefixes, with every third subscription constraining two
    // attributes so the counter threshold varies across dense ids.
    for i in 0..600u32 {
        let lo = (i % 50) as f64;
        let mut b = Subscription::builder(&schema)
            .num("price", NumOp::Ge, lo)
            .unwrap()
            .num("price", NumOp::Lt, lo + 25.0)
            .unwrap();
        if i % 3 == 0 {
            let prefix = [b'A' + (i % 26) as u8];
            b = b
                .str_op(
                    "symbol",
                    StrOp::Prefix,
                    std::str::from_utf8(&prefix).unwrap(),
                )
                .unwrap();
        }
        if i % 7 == 0 {
            b = b.num("volume", NumOp::Eq, (i % 10) as f64 * 100.0).unwrap();
        }
        summary.insert(BrokerId(1), LocalSubId(i), &b.build().unwrap());
    }

    let events: Vec<Event> = (0..8)
        .map(|k| {
            let symbol = [b'A' + (k as u8 * 3) % 26];
            Event::builder(&schema)
                .num("price", 10.0 + k as f64 * 5.0)
                .unwrap()
                .num("volume", (k % 10) as f64 * 100.0)
                .unwrap()
                .str("symbol", String::from_utf8(symbol.to_vec()).unwrap())
                .unwrap()
                .build()
        })
        .collect();

    let mut scratch = MatchScratch::new();
    let warm: usize = events
        .iter()
        .map(|e| summary.match_event_into(e, &mut scratch).matched.len())
        .sum();
    assert!(warm > 0, "fixture must produce matches");

    const PASSES: usize = 50;
    let mut zero_delta = false;
    let mut last_delta = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut total = 0usize;
        for _ in 0..PASSES {
            for e in &events {
                total += summary.match_event_into(e, &mut scratch).matched.len();
            }
        }
        std::hint::black_box(total);
        last_delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
        if last_delta == 0 {
            zero_delta = true;
            break;
        }
    }
    assert!(
        zero_delta,
        "large-population dense kernel allocated ({last_delta} allocations \
         across {PASSES} passes)"
    );
}

/// The compiled-plan probe path specifically: a mutation invalidates the
/// cached [`MatchPlan`], the next match recompiles it (warm-up — that
/// pass may allocate), and every match after that probes the frozen plan
/// with zero allocations. The population deliberately stacks several
/// wildcard patterns and a literal on the same string attribute so the
/// multi-contributor dedup path (seen-stamp postings walk) runs every
/// event, alongside AACS range and point banks.
#[test]
fn compiled_plan_probe_allocates_nothing_once_plan_is_warm() {
    let schema = stock_schema();
    let mut summary = BrokerSummary::new(schema.clone());

    for i in 0..400u32 {
        let lo = (i % 40) as f64;
        let mut b = Subscription::builder(&schema)
            .num("price", NumOp::Ge, lo)
            .unwrap()
            .num("price", NumOp::Lt, lo + 20.0)
            .unwrap();
        // Overlapping prefix, suffix and literal rows on `symbol`: every
        // probe of the attribute selects several candidate rows, so the
        // dedup (multi-contributor) postings walk is exercised.
        b = match i % 4 {
            0 => b.str_op("symbol", StrOp::Prefix, "AB").unwrap(),
            1 => b.str_op("symbol", StrOp::Suffix, "BA").unwrap(),
            2 => b.str_op("symbol", StrOp::Eq, "ABBA").unwrap(),
            _ => b.str_op("symbol", StrOp::Contains, "BB").unwrap(),
        };
        if i % 5 == 0 {
            b = b.num("volume", NumOp::Eq, (i % 8) as f64 * 100.0).unwrap();
        }
        summary.insert(BrokerId(2), LocalSubId(i), &b.build().unwrap());
    }

    let events: Vec<Event> = (0..6)
        .map(|k| {
            Event::builder(&schema)
                .num("price", 5.0 + k as f64 * 6.0)
                .unwrap()
                .num("volume", (k % 8) as f64 * 100.0)
                .unwrap()
                .str("symbol", "ABBA".to_string())
                .unwrap()
                .build()
        })
        .collect();

    let mut scratch = MatchScratch::new();

    // First warm-up: compiles the initial plan and grows the scratch.
    let mut warm: usize = events
        .iter()
        .map(|e| summary.match_event_into(e, &mut scratch).matched.len())
        .sum();

    // Invalidate the cached plan with one more insert, then warm up
    // again — this pass recompiles the plan (allocations allowed).
    let extra = Subscription::builder(&schema)
        .num("price", NumOp::Lt, 1.0)
        .unwrap()
        .build()
        .unwrap();
    summary.insert(BrokerId(2), LocalSubId(400), &extra);
    warm += events
        .iter()
        .map(|e| summary.match_event_into(e, &mut scratch).matched.len())
        .sum::<usize>();
    assert!(warm > 0, "fixture must produce matches");

    const PASSES: usize = 50;
    let mut zero_delta = false;
    let mut last_delta = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut total = 0usize;
        for _ in 0..PASSES {
            for e in &events {
                total += summary.match_event_into(e, &mut scratch).matched.len();
            }
        }
        std::hint::black_box(total);
        last_delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
        if last_delta == 0 {
            zero_delta = true;
            break;
        }
    }
    assert!(
        zero_delta,
        "compiled-plan probe path allocated ({last_delta} allocations \
         across {PASSES} passes)"
    );
}

/// The sharded steady-state match path: pinning the shard-partition
/// snapshot is two atomic stores and a load — no allocation — and the
/// per-shard kernels reuse the scratch's per-shard arrays, so once a
/// per-worker [`ShardScratch`] is warm (reader registered, kernels grown
/// to the shard sizes), matching through a [`ShardedSummary`] must be as
/// allocation-free as the flat kernel. Two scratches stand in for two
/// pool workers, each with its own registered reader slot.
#[test]
fn sharded_match_allocates_nothing_at_steady_state() {
    let schema = stock_schema();
    let mut flat = BrokerSummary::new(schema.clone());
    for i in 0..600u32 {
        let lo = (i % 50) as f64;
        let mut b = Subscription::builder(&schema)
            .num("price", NumOp::Ge, lo)
            .unwrap()
            .num("price", NumOp::Lt, lo + 25.0)
            .unwrap();
        if i % 3 == 0 {
            let prefix = [b'A' + (i % 26) as u8];
            b = b
                .str_op(
                    "symbol",
                    StrOp::Prefix,
                    std::str::from_utf8(&prefix).unwrap(),
                )
                .unwrap();
        }
        if i % 7 == 0 {
            b = b.num("volume", NumOp::Eq, (i % 10) as f64 * 100.0).unwrap();
        }
        flat.insert(BrokerId(1), LocalSubId(i), &b.build().unwrap());
    }
    let sharded = ShardedSummary::from_flat(flat, 8);

    let events: Vec<Event> = (0..8)
        .map(|k| {
            let symbol = [b'A' + (k as u8 * 3) % 26];
            Event::builder(&schema)
                .num("price", 10.0 + k as f64 * 5.0)
                .unwrap()
                .num("volume", (k % 10) as f64 * 100.0)
                .unwrap()
                .str("symbol", String::from_utf8(symbol.to_vec()).unwrap())
                .unwrap()
                .build()
        })
        .collect();

    let mut workers = [ShardScratch::new(), ShardScratch::new()];
    let mut warm = 0usize;
    for scratch in &mut workers {
        for e in &events {
            warm += sharded.match_event_into(e, scratch).matched.len();
        }
    }
    assert!(warm > 0, "fixture must produce matches");

    const PASSES: usize = 50;
    let mut zero_delta = false;
    let mut last_delta = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut total = 0usize;
        for _ in 0..PASSES {
            for scratch in &mut workers {
                for e in &events {
                    total += sharded.match_event_into(e, scratch).matched.len();
                }
            }
        }
        std::hint::black_box(total);
        last_delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
        if last_delta == 0 {
            zero_delta = true;
            break;
        }
    }
    assert!(
        zero_delta,
        "steady-state sharded match path allocated ({last_delta} allocations \
         across {PASSES} passes)"
    );
}
