//! Robustness of the summary wire codec: decoding adversarial input
//! (truncations, bit flips, random garbage) must return an error or a
//! structurally valid summary — never panic, never overrun.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use subsum_core::{ArithWidth, BrokerSummary, SummaryCodec};
use subsum_types::{stock_schema, BrokerId, IdLayout, LocalSubId, NumOp, StrOp, Subscription};

fn sample_bytes(seed: u64) -> (Vec<u8>, SummaryCodec) {
    let schema = stock_schema();
    let layout = IdLayout::new(24, 1000, schema.len() as u32).unwrap();
    let codec = SummaryCodec::new(layout, ArithWidth::Four);
    let mut summary = BrokerSummary::new(schema.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::Rng;
    for i in 0..20u32 {
        let sub = if rng.gen() {
            Subscription::builder(&schema)
                .num("price", NumOp::Lt, rng.gen_range(-100.0..100.0f64).round())
                .unwrap()
                .build()
                .unwrap()
        } else {
            Subscription::builder(&schema)
                .str_op(
                    "symbol",
                    StrOp::Prefix,
                    &format!("S{}", rng.gen_range(0..9)),
                )
                .unwrap()
                .build()
                .unwrap()
        };
        summary.insert(BrokerId(rng.gen_range(0..24)), LocalSubId(i), &sub);
    }
    (codec.encode(&summary).unwrap().to_vec(), codec)
}

proptest! {
    /// Every truncation of a valid stream decodes to an error (or, for
    /// the lucky prefix that is itself complete, a valid summary) without
    /// panicking.
    #[test]
    fn truncations_never_panic(seed in 0u64..50, cut_frac in 0.0f64..1.0) {
        let (bytes, codec) = sample_bytes(seed);
        let schema = stock_schema();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let _ = codec.decode(&bytes[..cut], &schema);
    }

    /// Byte corruption never panics; if it decodes, the result is
    /// re-encodable.
    #[test]
    fn bit_flips_never_panic(seed in 0u64..50,
                             flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..8)) {
        let (mut bytes, codec) = sample_bytes(seed);
        let schema = stock_schema();
        for (pos, bit) in flips {
            let p = pos % bytes.len();
            bytes[p] ^= 1 << bit;
        }
        if let Ok(decoded) = codec.decode(&bytes, &schema) {
            // A successfully decoded summary must be internally
            // consistent enough to encode again.
            let _ = codec.encode(&decoded);
        }
    }

    /// Pure garbage never panics.
    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let schema = stock_schema();
        let layout = IdLayout::new(24, 1000, schema.len() as u32).unwrap();
        let codec = SummaryCodec::new(layout, ArithWidth::Four);
        let _ = codec.decode(&bytes, &schema);
    }

    /// The arithmetic size computation agrees byte-for-byte with a real
    /// encode, at both wire widths, on randomly built summaries
    /// (mixtures of range, point, and string-pattern rows).
    #[test]
    fn encoded_len_matches_encode(seed in 0u64..200) {
        let schema = stock_schema();
        let layout = IdLayout::new(24, 1000, schema.len() as u32).unwrap();
        let mut summary = BrokerSummary::new(schema.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        for i in 0..rng.gen_range(0..30u32) {
            let mut b = Subscription::builder(&schema);
            if rng.gen() {
                b = b.num("price", NumOp::Lt, rng.gen_range(-100.0..100.0f64).round()).unwrap();
            }
            if rng.gen() {
                b = b.num("volume", NumOp::Eq, rng.gen_range(0..50) as f64).unwrap();
            }
            if rng.gen::<f64>() < 0.5 {
                let ops = [StrOp::Eq, StrOp::Prefix, StrOp::Suffix, StrOp::Contains];
                b = b.str_op("symbol", ops[rng.gen_range(0..4)], &format!("S{}", rng.gen_range(0..9))).unwrap();
            }
            if let Ok(sub) = b.build() {
                summary.insert(BrokerId(rng.gen_range(0..24)), LocalSubId(i), &sub);
            }
        }
        for width in [ArithWidth::Four, ArithWidth::Eight] {
            let codec = SummaryCodec::new(layout, width);
            let encoded = codec.encode(&summary).unwrap();
            prop_assert_eq!(codec.encoded_len(&summary).unwrap(), encoded.len());
        }
    }
}
