//! Real-thread races over the snapshot cell and the sharded matcher.
//!
//! `tests/snapshot_model.rs` proves the pointer-flip + deferred-reclaim
//! protocol correct over every interleaving of an abstract model; this
//! test races the *actual implementation* — readers continuously pinning
//! and dereferencing while a writer publishes — so ThreadSanitizer and
//! Miri can observe the real atomics. Assertions:
//!
//! * every pinned value is internally consistent (a torn or reclaimed
//!   version would break its self-checksum);
//! * sharded match output under concurrent subscribe/unsubscribe churn is
//!   always a sorted subset of the id universe;
//! * after the writer quiesces, deferred versions drain (no leak).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use subsum_core::{BrokerSummary, ShardScratch, ShardedSummary, SnapshotCell};
use subsum_types::{stock_schema, BrokerId, Event, LocalSubId, NumOp, Subscription};

/// Iteration scale: Miri interprets every instruction, so the race runs
/// far fewer rounds there (it still exercises the full protocol).
const PUBLISHES: usize = if cfg!(miri) { 40 } else { 4_000 };
const CHURN_ROUNDS: usize = if cfg!(miri) { 10 } else { 400 };

/// A version payload whose fields must be observed together: `b` is
/// derived from `a`, so any torn/stale/reclaimed read shows up as a
/// checksum mismatch.
struct Versioned {
    a: u64,
    b: u64,
    pad: Vec<u64>,
}

impl Versioned {
    fn new(a: u64) -> Versioned {
        Versioned {
            a,
            b: a.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            pad: vec![a; 32],
        }
    }

    fn check(&self) {
        assert_eq!(
            self.b,
            self.a.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            "pinned snapshot version is torn or reclaimed"
        );
        assert!(self.pad.iter().all(|&p| p == self.a));
    }
}

#[test]
fn concurrent_publish_and_pin_never_observe_reclaimed_versions() {
    let cell = Arc::new(SnapshotCell::new(Versioned::new(0)));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for _ in 0..2 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut reader = cell.reader();
                let mut last = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let guard = reader.pin();
                    guard.check();
                    // Publishes are ordered, so observed versions are
                    // monotone per reader.
                    assert!(guard.a >= last, "snapshot went backwards");
                    last = guard.a;
                }
            });
        }

        for v in 1..=PUBLISHES as u64 {
            cell.publish(Versioned::new(v));
        }
        stop.store(true, Ordering::SeqCst);
    });

    // All readers have dropped their slots; a final reclaim pass must
    // drain the limbo list completely.
    cell.try_reclaim();
    let stats = cell.stats();
    assert_eq!(stats.flips, PUBLISHES as u64);
    assert_eq!(stats.limbo, 0, "versions leaked in limbo after quiesce");
}

/// Matching through a [`ShardedSummary`] while another thread churns
/// subscriptions through it: every match result must be sorted and drawn
/// from the id universe, and the final state must equal a sequential
/// replay of the same mutations.
#[test]
fn sharded_matching_races_subscription_churn() {
    let schema = stock_schema();
    let mut seed = BrokerSummary::new(schema.clone());
    let mk_sub = |i: u32| -> Subscription {
        let lo = (i % 40) as f64;
        Subscription::builder(&schema)
            .num("price", NumOp::Ge, lo)
            .unwrap()
            .num("price", NumOp::Lt, lo + 20.0)
            .unwrap()
            .build()
            .unwrap()
    };
    let seed_ids: Vec<_> = (0..256u32)
        .map(|i| seed.insert(BrokerId(3), LocalSubId(i), &mk_sub(i)))
        .collect();
    let sharded = ShardedSummary::from_flat(seed, 4);

    let events: Vec<Event> = (0..6)
        .map(|k| {
            Event::builder(&schema)
                .num("price", 5.0 + k as f64 * 7.0)
                .unwrap()
                .build()
        })
        .collect();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let sharded = &sharded;
            let events = &events;
            let stop = &stop;
            scope.spawn(move || {
                let mut scratch = ShardScratch::new();
                // Duplicate detector reused across events: a stamp per
                // possible local id, bumped once per match call.
                let mut seen = [0u64; 512];
                let mut stamp = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    for e in events {
                        stamp += 1;
                        let out = sharded.match_event_into(e, &mut scratch);
                        for id in &out.matched {
                            assert_eq!(id.broker, BrokerId(3));
                            let local = id.local.0 as usize;
                            assert!(local < 512, "id outside churn universe");
                            assert_ne!(seen[local], stamp, "duplicate id in output");
                            seen[local] = stamp;
                        }
                    }
                }
            });
        }

        // Churn: add a new block, remove part of the seed block, re-add.
        for round in 0..CHURN_ROUNDS as u32 {
            let fresh = 256 + (round % 256);
            sharded.insert(BrokerId(3), LocalSubId(fresh), &mk_sub(fresh));
            sharded.remove(seed_ids[(round % 256) as usize]);
            sharded.insert(BrokerId(3), LocalSubId(round % 256), &mk_sub(round % 256));
        }
        stop.store(true, Ordering::SeqCst);
    });

    // Sequential replay over a flat summary must agree exactly.
    let mut replay = BrokerSummary::new(schema.clone());
    let replay_ids: Vec<_> = (0..256u32)
        .map(|i| replay.insert(BrokerId(3), LocalSubId(i), &mk_sub(i)))
        .collect();
    for round in 0..CHURN_ROUNDS as u32 {
        let fresh = 256 + (round % 256);
        replay.insert(BrokerId(3), LocalSubId(fresh), &mk_sub(fresh));
        replay.remove(replay_ids[(round % 256) as usize]);
        replay.insert(BrokerId(3), LocalSubId(round % 256), &mk_sub(round % 256));
    }
    assert_eq!(sharded.digest(), replay.digest());

    let mut scratch = ShardScratch::new();
    let mut flat_scratch = subsum_core::MatchScratch::new();
    for e in &events {
        let got = sharded.match_event_into(e, &mut scratch).matched.clone();
        let want = replay
            .match_event_into(e, &mut flat_scratch)
            .matched
            .clone();
        assert_eq!(got, want);
    }

    let stats = sharded.snapshot_stats();
    assert_eq!(stats.flips as usize, 3 * CHURN_ROUNDS);
}
