//! SACS — String Attribute Constraint Summaries (paper §3.1, Fig. 5).
//!
//! For each string attribute a broker keeps an array of *general
//! constraints*: glob patterns, each of which may cover (subsume) one or
//! more of the constraints submitted by subscriptions. Per the paper:
//!
//! * if a new constraint is covered by an existing row, its subscription
//!   id is simply added to that row's id list;
//! * if a more general constraint arrives, it *substitutes* the rows it
//!   covers (their id lists merge into the new row);
//! * otherwise a new row is added.
//!
//! SACS is deliberately lossy: a row's pattern may be strictly more
//! general than some constraints whose ids it carries (`m*t` standing in
//! for `microsoft`), so matching against SACS can produce **false
//! positives but never false negatives**. The home broker re-verifies
//! candidate matches against its exact subscription store (see
//! `subsum-broker`).
//!
//! # Representation
//!
//! Rows are stored in two groups: wildcard-free rows in a hash map keyed
//! by their literal (equality constraints dominate real workloads, and
//! this makes their insertion, merging and querying `O(1)`), and rows
//! with wildcards in a vector. The covering invariant — no row's pattern
//! covers another row's — holds across both groups.
//!
//! # The pattern index
//!
//! Wildcard rows are additionally indexed by their *anchor bytes* so a
//! query only tests rows whose anchors can possibly match the value:
//!
//! * rows whose pattern is anchored at the start (`OT*`, `a*c`) are
//!   bucketed by the first byte of their first literal segment — a value
//!   `s` can only match them if `s` starts with that byte;
//! * rows anchored only at the end (`*SE`) are bucketed by the last byte
//!   of their last literal segment — `s` must end with that byte;
//! * rows with no usable anchor (`*a*`, the universal pattern) live in a
//!   residual bucket that every query tests.
//!
//! The same buckets prune the covering checks on insertion and merging:
//! a row can only *cover* a start-anchored pattern if it is itself
//! start-anchored on the same first byte (or unanchored), symmetrically
//! for end anchors, so only those buckets are probed. The substitution
//! path (a new pattern absorbing the rows it covers) remains a full scan:
//! it fires rarely and must visit every absorbed row anyway.
//!
//! The index holds row *positions* and is rebuilt whenever rows are
//! retained/removed; it is a pure function of the row vector, so derived
//! equality stays consistent and (de)serialization reconstructs it.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use subsum_telemetry::Count;
use subsum_types::Pattern;

use crate::idlist::{idlist_merge, idlist_remap, idlist_remove_remap, DenseId, IdList};

/// Wildcard rows tested because an index bucket selected them (plus
/// literal-map hits), across all queries.
static CNT_INDEX_HITS: Count = Count::new(subsum_telemetry::names::SACS_INDEX_HITS);
/// Wildcard rows skipped by the anchor buckets, across all queries — the
/// work the flat scan of the pre-index matcher would have done.
static CNT_ROWS_PRUNED: Count = Count::new(subsum_telemetry::names::SACS_ROWS_PRUNED);

/// Records one query's cost into the global SACS index counters. The
/// compiled-plan probe path performs candidate selection itself and
/// calls this to keep `sacs.index_hits` / `sacs.rows_pruned` honest
/// across both matchers.
pub(crate) fn record_query_cost(cost: QueryCost) {
    CNT_INDEX_HITS.add(cost.rows_touched as u64);
    CNT_ROWS_PRUNED.add(cost.rows_pruned as u64);
}

/// One row of a SACS array: a general constraint and the ids of the
/// subscriptions it stands for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternRow {
    /// The row's general constraint.
    pub pattern: Pattern,
    /// Subscriptions whose constraint on this attribute is covered by
    /// the row's pattern (dense ids, sorted).
    pub ids: IdList,
}

/// The work one indexed [`PatternSummary::query_into`] performed, for the
/// honest §5.2.4 cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCost {
    /// Rows actually probed: the literal-map probe (when the map is
    /// non-empty) plus every wildcard row an index bucket selected.
    pub rows_touched: usize,
    /// Wildcard rows the index skipped without testing.
    pub rows_pruned: usize,
}

/// Anchor-byte buckets over the wildcard-row positions.
#[derive(Debug, Clone, PartialEq, Default)]
struct PatternIndex {
    /// Positions of start-anchored rows, keyed by the first byte of the
    /// first literal segment.
    prefix: HashMap<u8, Vec<usize>>,
    /// Positions of rows anchored only at the end, keyed by the last
    /// byte of the last literal segment.
    suffix: HashMap<u8, Vec<usize>>,
    /// Positions of rows with no usable anchor (incl. the universal
    /// pattern).
    residual: Vec<usize>,
}

impl PatternIndex {
    fn insert(&mut self, pos: usize, pattern: &Pattern) {
        if pattern.anchored_start() {
            if let Some(&b) = pattern
                .segments()
                .first()
                .and_then(|s| s.as_bytes().first())
            {
                self.prefix.entry(b).or_default().push(pos);
                return;
            }
        } else if pattern.anchored_end() {
            if let Some(&b) = pattern.segments().last().and_then(|s| s.as_bytes().last()) {
                self.suffix.entry(b).or_default().push(pos);
                return;
            }
        }
        self.residual.push(pos);
    }

    fn rebuild(&mut self, rows: &[PatternRow]) {
        self.prefix.clear();
        self.suffix.clear();
        self.residual.clear();
        for (pos, row) in rows.iter().enumerate() {
            self.insert(pos, &row.pattern);
        }
    }

    /// Positions of every row that could match the value `s`: the prefix
    /// bucket of `s`'s first byte, the suffix bucket of its last byte,
    /// and the residual bucket. Anchored rows have non-empty segments, so
    /// the empty value is served by the residual bucket alone.
    fn value_candidates(&self, s: &str) -> impl Iterator<Item = usize> + '_ {
        let first = s.as_bytes().first().and_then(|b| self.prefix.get(b));
        let last = s.as_bytes().last().and_then(|b| self.suffix.get(b));
        first
            .into_iter()
            .flatten()
            .chain(last.into_iter().flatten())
            .chain(self.residual.iter())
            .copied()
    }

    /// Positions of every row that could *cover* the wildcard pattern
    /// `p`. A start-anchored coverer's first segment must be a prefix of
    /// `p`'s (same first byte), so only `p`'s own prefix bucket applies —
    /// and only when `p` is start-anchored itself, since a start-anchored
    /// row never covers a pattern that can start arbitrarily.
    /// Symmetrically for end anchors; residual rows can cover anything.
    fn coverer_candidates(&self, p: &Pattern) -> impl Iterator<Item = usize> + '_ {
        let pref = if p.anchored_start() {
            p.segments()
                .first()
                .and_then(|s| s.as_bytes().first())
                .and_then(|b| self.prefix.get(b))
        } else {
            None
        };
        let suf = if p.anchored_end() {
            p.segments()
                .last()
                .and_then(|s| s.as_bytes().last())
                .and_then(|b| self.suffix.get(b))
        } else {
            None
        };
        pref.into_iter()
            .flatten()
            .chain(suf.into_iter().flatten())
            .chain(self.residual.iter())
            .copied()
    }
}

/// The string constraint summary for a single attribute.
///
/// Rows are kept pairwise incomparable under [`Pattern::covers`]: on
/// insertion, a covered constraint joins its covering row, and a covering
/// constraint absorbs every row it covers.
///
/// Rows carry dense ids (`u32` indices into the owning broker summary's
/// intern table); a standalone `PatternSummary` treats them as opaque
/// ordered integers.
///
/// # Example
///
/// ```
/// use subsum_core::PatternSummary;
/// use subsum_types::Pattern;
/// let mut sacs = PatternSummary::new();
/// sacs.insert(Pattern::literal("microsoft"), 1);
/// sacs.insert(Pattern::parse("m*t").unwrap(), 2);
/// // "m*t" covers "microsoft": one row remains, carrying both ids.
/// assert_eq!(sacs.row_count(), 1);
/// assert_eq!(sacs.query("micronet"), vec![1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(from = "PatternSummaryWire", into = "PatternSummaryWire")]
pub struct PatternSummary {
    /// Wildcard-free rows, keyed by their literal value.
    literals: HashMap<String, IdList>,
    /// Rows containing wildcards, in insertion order.
    patterns: Vec<PatternRow>,
    /// Anchor-byte index over `patterns` (derived state; rebuilt on
    /// deserialization and after row removals). The `lint: derived` tag
    /// makes `cargo xtask check` reject any reference to this field from
    /// the wire codec.
    index: PatternIndex, // lint: derived
}

/// The serialized shape of a [`PatternSummary`]: the index is derived
/// state and is reconstructed on deserialization instead of traveling.
#[derive(Serialize, Deserialize)]
#[serde(rename = "PatternSummary")]
struct PatternSummaryWire {
    literals: HashMap<String, IdList>,
    patterns: Vec<PatternRow>,
}

impl From<PatternSummary> for PatternSummaryWire {
    fn from(s: PatternSummary) -> Self {
        PatternSummaryWire {
            literals: s.literals,
            patterns: s.patterns,
        }
    }
}

impl From<PatternSummaryWire> for PatternSummary {
    fn from(w: PatternSummaryWire) -> Self {
        let mut index = PatternIndex::default();
        index.rebuild(&w.patterns);
        PatternSummary {
            literals: w.literals,
            patterns: w.patterns,
            index,
        }
    }
}

impl PatternSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        PatternSummary::default()
    }

    /// Returns `true` if no constraint has been summarized.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty() && self.patterns.is_empty()
    }

    /// The number of rows (`n_r` in the paper's size equations).
    pub fn row_count(&self) -> usize {
        self.literals.len() + self.patterns.len()
    }

    /// The number of wildcard rows in the residual (unanchored) index
    /// bucket — the rows every query must test.
    pub fn residual_rows(&self) -> usize {
        self.index.residual.len()
    }

    /// Iterates over all rows in a deterministic order: wildcard rows in
    /// insertion order, then literal rows sorted by value.
    pub fn rows(&self) -> impl Iterator<Item = (Pattern, &IdList)> {
        let mut lits: Vec<(&String, &IdList)> = self.literals.iter().collect();
        lits.sort_by(|a, b| a.0.cmp(b.0));
        self.patterns
            .iter()
            .map(|r| (r.pattern.clone(), &r.ids))
            .chain(
                lits.into_iter()
                    .map(|(s, ids)| (Pattern::literal(s.clone()), ids)),
            )
    }

    /// Total id-list length across rows (`L_s` in the size equations).
    pub fn id_list_len(&self) -> usize {
        self.literals.values().map(Vec::len).sum::<usize>()
            + self.patterns.iter().map(|r| r.ids.len()).sum::<usize>()
    }

    /// Total rendered byte length of all row patterns (realizes the
    /// `Σ n_r · s_sv` term of Eq. (2) for the actual strings stored).
    pub fn pattern_bytes(&self) -> usize {
        self.literals.keys().map(String::len).sum::<usize>()
            + self
                .patterns
                .iter()
                .map(|r| r.pattern.wire_size())
                .sum::<usize>()
    }

    /// Summarizes a constraint for subscription `id`.
    pub fn insert(&mut self, pattern: Pattern, id: DenseId) {
        self.insert_ids(pattern, &[id]);
    }

    /// As [`PatternSummary::insert`] with several ids (used by merging).
    pub fn insert_ids(&mut self, pattern: Pattern, ids: &[DenseId]) {
        if ids.is_empty() {
            return;
        }
        if let Some(lit) = pattern.as_literal() {
            // Covered by a wildcard row: join it. Only rows in the
            // value's anchor buckets can match the literal.
            if let Some(pos) = self
                .index
                .value_candidates(lit)
                .find(|&i| self.patterns[i].pattern.matches(lit))
            {
                idlist_merge(&mut self.patterns[pos].ids, ids);
                return;
            }
            // Exact literal row (or a new one).
            let lit = lit.to_owned();
            idlist_merge(self.literals.entry(lit).or_default(), ids);
            return;
        }
        // A wildcard pattern. Covered by an existing wildcard row: join.
        if let Some(pos) = self
            .index
            .coverer_candidates(&pattern)
            .find(|&i| self.patterns[i].pattern.covers(&pattern))
        {
            idlist_merge(&mut self.patterns[pos].ids, ids);
            return;
        }
        // The new constraint substitutes every row it covers. This is
        // the rare path and must visit every absorbed row, so it stays a
        // full scan; the index is rebuilt over the survivors.
        let mut merged: IdList = ids.to_vec();
        merged.sort();
        merged.dedup();
        let before = self.patterns.len();
        self.patterns.retain(|row| {
            if pattern.covers(&row.pattern) {
                idlist_merge(&mut merged, &row.ids);
                false
            } else {
                true
            }
        });
        self.literals.retain(|lit, row_ids| {
            if pattern.matches(lit) {
                idlist_merge(&mut merged, row_ids);
                false
            } else {
                true
            }
        });
        let absorbed = before != self.patterns.len();
        self.patterns.push(PatternRow {
            pattern: pattern.clone(),
            ids: merged,
        });
        if absorbed {
            self.index.rebuild(&self.patterns);
        } else {
            self.index.insert(self.patterns.len() - 1, &pattern);
        }
    }

    /// All subscription ids whose summarized constraint is satisfied by
    /// the value `s` — the `Check_for_a_value_match (type string)`
    /// procedure of §3.3, served through the pattern index.
    pub fn query(&self, s: &str) -> IdList {
        let mut out = IdList::new();
        self.query_into(s, &mut out);
        out
    }

    /// As [`PatternSummary::query`], appending into a caller buffer (hot
    /// path for the matcher) and reporting the rows actually probed.
    ///
    /// The output may contain duplicate ids when a subscription holds
    /// several constraints on this attribute; the matcher deduplicates
    /// per attribute.
    pub fn query_into(&self, s: &str, out: &mut IdList) -> QueryCost {
        let mut cost = QueryCost::default();
        if !self.literals.is_empty() {
            cost.rows_touched += 1;
            if let Some(ids) = self.literals.get(s) {
                out.extend_from_slice(ids);
            }
        }
        let mut tested = 0usize;
        for pos in self.index.value_candidates(s) {
            tested += 1;
            let row = &self.patterns[pos];
            if row.pattern.matches(s) {
                out.extend_from_slice(&row.ids);
            }
        }
        cost.rows_touched += tested;
        cost.rows_pruned = self.patterns.len() - tested;
        CNT_INDEX_HITS.add(cost.rows_touched as u64);
        CNT_ROWS_PRUNED.add(cost.rows_pruned as u64);
        cost
    }

    /// Positions of every wildcard row the anchor index selects for the
    /// value `s`. Compiled-plan probe path: the plan stores only arena
    /// posting ranges and borrows candidate selection and the pattern
    /// tests from the summary it was compiled from.
    pub(crate) fn plan_candidates(&self, s: &str) -> impl Iterator<Item = usize> + '_ {
        self.index.value_candidates(s)
    }

    /// Whether wildcard row `pos` matches the value `s` (compiled-plan
    /// probe path).
    pub(crate) fn pattern_matches(&self, pos: usize, s: &str) -> bool {
        self.patterns[pos].pattern.matches(s)
    }

    /// Literal rows in the map's own iteration order — stable for an
    /// unmodified map instance, which plan compilation and the
    /// plan-coherence validation cross-check rely on.
    pub(crate) fn literal_rows(&self) -> impl Iterator<Item = (&String, &IdList)> {
        self.literals.iter()
    }

    /// Wildcard-row posting lists in row order (parallel to the
    /// compiled `StringBank::wild` ranges).
    pub(crate) fn wildcard_postings(&self) -> impl Iterator<Item = &IdList> {
        self.patterns.iter().map(|r| &r.ids)
    }

    /// Reference implementation of [`PatternSummary::query`] as a flat
    /// scan over every wildcard row, bypassing the pattern index.
    /// Retained for differential testing and the benchmark's
    /// before/after comparison; results equal `query` up to ordering.
    pub fn query_scan(&self, s: &str) -> IdList {
        let mut out = IdList::new();
        self.query_scan_into(s, &mut out);
        out
    }

    /// As [`PatternSummary::query_scan`], appending into a caller buffer.
    pub fn query_scan_into(&self, s: &str, out: &mut IdList) {
        if let Some(ids) = self.literals.get(s) {
            out.extend_from_slice(ids);
        }
        for row in &self.patterns {
            if row.pattern.matches(s) {
                out.extend_from_slice(&row.ids);
            }
        }
    }

    /// Removes every occurrence of `id`, dropping empty rows.
    ///
    /// Removal never *narrows* rows: a row generalized by a departed
    /// subscription keeps its pattern (no false negatives are possible;
    /// extra generality only costs precision until a rebuild). The dense
    /// space is left unchanged — use [`PatternSummary::remove_remap`]
    /// when the intern table slot itself is being vacated.
    pub fn remove(&mut self, id: DenseId) {
        self.literals.retain(|_, ids| {
            if let Ok(pos) = ids.binary_search(&id) {
                ids.remove(pos);
            }
            !ids.is_empty()
        });
        for row in &mut self.patterns {
            if let Ok(pos) = row.ids.binary_search(&id) {
                row.ids.remove(pos);
            }
        }
        let before = self.patterns.len();
        self.patterns.retain(|r| !r.ids.is_empty());
        if self.patterns.len() != before {
            self.index.rebuild(&self.patterns);
        }
    }

    /// Removes `gone` from every posting list and decrements every dense
    /// id above it — one pass over all postings, performed when the
    /// owning summary drops slot `gone` from its intern table.
    pub(crate) fn remove_remap(&mut self, gone: DenseId) {
        self.literals.retain(|_, ids| {
            idlist_remove_remap(ids, gone);
            !ids.is_empty()
        });
        for row in &mut self.patterns {
            idlist_remove_remap(&mut row.ids, gone);
        }
        let before = self.patterns.len();
        self.patterns.retain(|r| !r.ids.is_empty());
        if self.patterns.len() != before {
            self.index.rebuild(&self.patterns);
        }
    }

    /// Applies a strictly monotone dense-id renumbering to every posting
    /// list (intern-table growth or merge translation).
    pub(crate) fn remap_ids(&mut self, map: impl Fn(DenseId) -> DenseId + Copy) {
        for ids in self.literals.values_mut() {
            idlist_remap(ids, map);
        }
        for row in &mut self.patterns {
            idlist_remap(&mut row.ids, map);
        }
    }

    /// The shard-derivation view of this summary: the same rows with
    /// posting lists restricted to dense ids `[lo, hi)` and rebased to
    /// `d - lo`, empty rows dropped, index rebuilt. Returns `None` when
    /// nothing survives.
    ///
    /// This deliberately does **not** re-insert patterns (row formation
    /// is insertion-order dependent under covering): the filtered view
    /// keeps the flat summary's exact row structure, so a value matches
    /// a shard row iff it matches the corresponding flat row — the
    /// sharded matcher inherits the flat matcher's candidate set (false
    /// positives included) split by id range. Row subsets also inherit
    /// every [`PatternSummary::validate`] invariant (incomparability and
    /// literal/wildcard disjointness only shrink).
    pub(crate) fn filter_rebase(&self, lo: DenseId, hi: DenseId) -> Option<PatternSummary> {
        let mut out = PatternSummary::new();
        for (lit, ids) in &self.literals {
            let slice = crate::idlist::idlist_range_slice(ids, lo, hi);
            if !slice.is_empty() {
                out.literals
                    .insert(lit.clone(), slice.iter().map(|&d| d - lo).collect());
            }
        }
        for row in &self.patterns {
            let slice = crate::idlist::idlist_range_slice(&row.ids, lo, hi);
            if !slice.is_empty() {
                out.patterns.push(PatternRow {
                    pattern: row.pattern.clone(),
                    ids: slice.iter().map(|&d| d - lo).collect(),
                });
            }
        }
        if out.is_empty() {
            return None;
        }
        out.index.rebuild(&out.patterns);
        Some(out)
    }

    /// Merges another attribute summary into this one (multi-broker
    /// summaries, §4.1: the union of the rows, re-normalized under
    /// covering). Both sides must already share one dense id space; the
    /// broker summary guarantees this by translating the incoming
    /// summary's ids through its merged intern table first.
    pub fn merge(&mut self, other: &PatternSummary) {
        for row in &other.patterns {
            self.insert_ids(row.pattern.clone(), &row.ids);
        }
        for (lit, ids) in &other.literals {
            // Fast path: if no wildcard row covers the literal, merge
            // directly into the literal map. Only anchor-bucket rows can
            // match the literal.
            if let Some(pos) = self
                .index
                .value_candidates(lit)
                .find(|&i| self.patterns[i].pattern.matches(lit))
            {
                idlist_merge(&mut self.patterns[pos].ids, ids);
            } else {
                idlist_merge(self.literals.entry(lit.clone()).or_default(), ids);
            }
        }
    }

    /// Iterates over every subscription id mentioned in this summary.
    pub fn all_ids(&self) -> impl Iterator<Item = DenseId> + '_ {
        self.literals
            .values()
            .flat_map(|l| l.iter().copied())
            .chain(self.patterns.iter().flat_map(|r| r.ids.iter().copied()))
    }

    /// Checks the deep structural invariants of the summary. Compiled
    /// only for tests and debug builds; the property tests call it after
    /// every insertion, merge, removal and wire round-trip.
    ///
    /// Invariants:
    ///
    /// * every id list (literal and wildcard rows) is non-empty, sorted
    ///   and deduplicated;
    /// * rows are pairwise incomparable under [`Pattern::covers`] — no
    ///   wildcard row covers another row, and no literal key is matched
    ///   by any wildcard row (it would have joined that row);
    /// * the anchor-byte index is exactly what a fresh rebuild over the
    ///   row vector produces (index↔row coherence — the index is derived
    ///   state and must never drift from the rows it summarizes).
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    #[cfg(any(test, debug_assertions))]
    pub fn validate(&self) {
        use crate::idlist::validate_idlist;
        for (lit, ids) in &self.literals {
            assert!(!ids.is_empty(), "literal row {lit:?} has no ids");
            validate_idlist(ids);
        }
        for row in &self.patterns {
            assert!(
                !row.ids.is_empty(),
                "wildcard row {} has no ids",
                row.pattern
            );
            validate_idlist(&row.ids);
        }
        for (i, a) in self.patterns.iter().enumerate() {
            for (j, b) in self.patterns.iter().enumerate() {
                assert!(
                    i == j || !a.pattern.covers(&b.pattern),
                    "row {} covers row {}",
                    a.pattern,
                    b.pattern
                );
            }
            for lit in self.literals.keys() {
                assert!(
                    !a.pattern.matches(lit),
                    "literal row {lit:?} is covered by wildcard row {}",
                    a.pattern
                );
            }
        }
        let mut fresh = PatternIndex::default();
        fresh.rebuild(&self.patterns);
        assert!(
            fresh == self.index,
            "pattern index out of sync with the row vector"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Standalone-structure tests use small integers as dense ids
    /// directly; the intern-table mapping is the broker summary's job.
    fn id(k: u32) -> DenseId {
        k
    }

    fn pat(s: &str) -> Pattern {
        Pattern::parse(s).unwrap()
    }

    /// Sorted copies, for comparisons that ignore bucket visit order.
    fn sorted(mut ids: IdList) -> IdList {
        ids.sort();
        ids
    }

    #[test]
    fn paper_fig5_example() {
        // SACS for attribute symbol: row `OT*` (prefix, paper's `>* OT`)
        // carrying S1 and S2.
        let mut sacs = PatternSummary::new();
        sacs.insert(pat("OTE"), id(1));
        sacs.insert(pat("OT*"), id(2));
        assert_eq!(sacs.row_count(), 1);
        assert_eq!(sacs.rows().next().unwrap().0, pat("OT*"));
        assert_eq!(sacs.query("OTE"), vec![id(1), id(2)]);
        // False positive by design: the generalized row matches OTX for S1.
        assert_eq!(sacs.query("OTX"), vec![id(1), id(2)]);
        assert!(sacs.query("XOT").is_empty());
    }

    #[test]
    fn covered_constraint_joins_existing_row() {
        let mut sacs = PatternSummary::new();
        sacs.insert(pat("m*t"), id(1));
        sacs.insert(pat("microsoft"), id(2));
        sacs.insert(pat("micronet"), id(3));
        assert_eq!(sacs.row_count(), 1);
        assert_eq!(sacs.query("mt"), vec![id(1), id(2), id(3)]);
    }

    #[test]
    fn general_constraint_substitutes_several_rows() {
        let mut sacs = PatternSummary::new();
        sacs.insert(pat("microsoft"), id(1));
        sacs.insert(pat("micronet"), id(2));
        sacs.insert(pat("apple"), id(3));
        assert_eq!(sacs.row_count(), 3);
        sacs.insert(pat("m*t"), id(4));
        // microsoft and micronet are absorbed; apple stays.
        assert_eq!(sacs.row_count(), 2);
        assert_eq!(sacs.query("microsoft"), vec![id(1), id(2), id(4)]);
        assert_eq!(sacs.query("apple"), vec![id(3)]);
    }

    #[test]
    fn incomparable_rows_stay_separate() {
        let mut sacs = PatternSummary::new();
        sacs.insert(pat("OT*"), id(1));
        sacs.insert(pat("*SE"), id(2));
        assert_eq!(sacs.row_count(), 2);
        assert_eq!(sorted(sacs.query("OTSE")), vec![id(1), id(2)]);
        assert_eq!(sacs.query("OTE"), vec![id(1)]);
        assert_eq!(sacs.query("NYSE"), vec![id(2)]);
    }

    #[test]
    fn universal_pattern_absorbs_everything() {
        let mut sacs = PatternSummary::new();
        sacs.insert(pat("a*"), id(1));
        sacs.insert(pat("*b"), id(2));
        sacs.insert(pat("lit"), id(4));
        sacs.insert(pat("*"), id(3));
        assert_eq!(sacs.row_count(), 1);
        assert_eq!(sacs.query("zzz"), vec![id(1), id(2), id(3), id(4)]);
    }

    #[test]
    fn no_false_negatives_after_generalization() {
        let mut sacs = PatternSummary::new();
        sacs.insert(pat("microsoft"), id(1));
        sacs.insert(pat("m*t"), id(2));
        // Every value matching the original constraint still matches.
        assert!(sacs.query("microsoft").contains(&id(1)));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut sacs = PatternSummary::new();
        sacs.insert(pat("OT*"), id(1));
        sacs.insert(pat("OT*"), id(1));
        assert_eq!(sacs.row_count(), 1);
        assert_eq!(sacs.id_list_len(), 1);
        sacs.insert(pat("lit"), id(2));
        sacs.insert(pat("lit"), id(2));
        assert_eq!(sacs.row_count(), 2);
        assert_eq!(sacs.id_list_len(), 2);
    }

    #[test]
    fn removal_drops_empty_rows() {
        let mut sacs = PatternSummary::new();
        sacs.insert(pat("OT*"), id(1));
        sacs.insert(pat("OTE"), id(2));
        sacs.remove(id(1));
        assert_eq!(sacs.row_count(), 1);
        // The generalized row remains for id(2); still no false negatives.
        assert_eq!(sacs.query("OTE"), vec![id(2)]);
        sacs.remove(id(2));
        assert!(sacs.is_empty());
    }

    #[test]
    fn remove_remap_shifts_survivors() {
        let mut sacs = PatternSummary::new();
        sacs.insert(pat("OT*"), id(1));
        sacs.insert(pat("OTE"), id(2));
        sacs.insert(pat("*SE"), id(3));
        // Vacate slot 2: id 3 becomes id 2, id 1 stays.
        sacs.remove_remap(id(2));
        assert_eq!(sacs.query("OTE"), vec![id(1)]);
        assert_eq!(sacs.query("NYSE"), vec![id(2)]);
        sacs.validate();
    }

    #[test]
    fn remap_renumbers_all_rows() {
        let mut sacs = PatternSummary::new();
        sacs.insert(pat("OT*"), id(0));
        sacs.insert(pat("lit"), id(1));
        // Open a hole at slot 1 (a new id interned in the middle).
        sacs.remap_ids(|d| if d >= 1 { d + 1 } else { d });
        assert_eq!(sacs.query("OTX"), vec![id(0)]);
        assert_eq!(sacs.query("lit"), vec![id(2)]);
        sacs.validate();
    }

    #[test]
    fn merge_renormalizes_under_covering() {
        let mut a = PatternSummary::new();
        a.insert(pat("microsoft"), id(1));
        let mut b = PatternSummary::new();
        b.insert(pat("m*t"), id(2));
        a.merge(&b);
        assert_eq!(a.row_count(), 1);
        assert_eq!(a.rows().next().unwrap().0, pat("m*t"));
        assert_eq!(a.query("microsoft"), vec![id(1), id(2)]);
        // And the symmetric direction.
        let mut c = PatternSummary::new();
        c.insert(pat("m*t"), id(2));
        let mut d = PatternSummary::new();
        d.insert(pat("microsoft"), id(1));
        c.merge(&d);
        assert_eq!(c.row_count(), 1);
        assert_eq!(c.query("microsoft"), vec![id(1), id(2)]);
    }

    #[test]
    fn rows_pairwise_incomparable_invariant() {
        let mut sacs = PatternSummary::new();
        for (k, s) in ["a*", "*b", "ab", "abc", "a*c", "*a*", "xyz"]
            .iter()
            .enumerate()
        {
            sacs.insert(pat(s), id(k as u32));
        }
        let rows: Vec<Pattern> = sacs.rows().map(|(p, _)| p).collect();
        for (i, r1) in rows.iter().enumerate() {
            for (j, r2) in rows.iter().enumerate() {
                if i != j {
                    assert!(!r1.covers(r2), "row {r1} covers row {r2}");
                }
            }
        }
    }

    #[test]
    fn query_empty_summary() {
        let sacs = PatternSummary::new();
        assert!(sacs.query("anything").is_empty());
    }

    #[test]
    fn many_literals_fast_path() {
        let mut sacs = PatternSummary::new();
        for k in 0..5000u32 {
            sacs.insert(pat(&format!("lit{k}")), id(k));
        }
        assert_eq!(sacs.row_count(), 5000);
        assert_eq!(sacs.query("lit4999"), vec![id(4999)]);
        // A late wildcard absorbs the lot.
        sacs.insert(pat("lit*"), id(9999));
        assert_eq!(sacs.row_count(), 1);
        assert_eq!(sacs.id_list_len(), 5001);
        assert!(sacs.query("lit77").contains(&id(77)));
    }

    #[test]
    fn rows_iteration_deterministic() {
        let mut a = PatternSummary::new();
        let mut b = PatternSummary::new();
        for k in [3u32, 1, 2] {
            a.insert(pat(&format!("v{k}")), id(k));
        }
        for k in [1u32, 2, 3] {
            b.insert(pat(&format!("v{k}")), id(k));
        }
        let ra: Vec<_> = a.rows().map(|(p, _)| p.to_string()).collect();
        let rb: Vec<_> = b.rows().map(|(p, _)| p.to_string()).collect();
        assert_eq!(ra, rb);
        assert_eq!(ra, vec!["v1", "v2", "v3"]);
    }

    #[test]
    fn index_prunes_disjoint_anchors() {
        // 26 prefix rows, one suffix row, one residual row: a query only
        // tests its own buckets plus the residual.
        let mut sacs = PatternSummary::new();
        for (k, c) in ('a'..='z').enumerate() {
            sacs.insert(pat(&format!("{c}{c}*")), id(k as u32));
        }
        sacs.insert(pat("*zz"), id(100));
        sacs.insert(pat("*mid*"), id(101));
        assert_eq!(sacs.residual_rows(), 1);

        let mut out = IdList::new();
        let cost = sacs.query_into("qqx", &mut out);
        assert_eq!(out, vec![id(16)]);
        // Tested: prefix['q'] (1 row) + no suffix bucket for 'x' + the
        // residual row = 2 of 28 wildcard rows.
        assert_eq!(cost.rows_touched, 2);
        assert_eq!(cost.rows_pruned, 26);

        let cost = sacs.query_into("zzz", &mut out);
        assert_eq!(cost.rows_pruned, 25); // prefix['z'] + suffix['z'] + residual
    }

    #[test]
    fn indexed_query_equals_scan_reference() {
        let mut sacs = PatternSummary::new();
        let patterns = [
            "OT*", "*SE", "O*E", "*T*", "lit", "", "*", "a*b*c", "zz*", "*zz",
        ];
        for (k, s) in patterns.iter().enumerate() {
            sacs.insert(pat(s), id(k as u32));
        }
        for value in ["", "OTSE", "OTE", "abc", "aXbYc", "lit", "zz", "zzz", "q"] {
            assert_eq!(
                sorted(sacs.query(value)),
                sorted(sacs.query_scan(value)),
                "value {value:?}"
            );
        }
    }

    #[test]
    fn validate_accepts_every_mutation_path() {
        let mut sacs = PatternSummary::new();
        sacs.validate();
        for (k, s) in ["a*", "*b", "ab", "a*c", "*a*", "xyz"].iter().enumerate() {
            sacs.insert(pat(s), id(k as u32));
            sacs.validate();
        }
        let mut other = PatternSummary::new();
        other.insert(pat("x*"), id(40));
        other.insert(pat("ab"), id(41));
        sacs.merge(&other);
        sacs.validate();
        sacs.remove(id(0));
        sacs.validate();
    }

    #[test]
    #[should_panic(expected = "out of sync")]
    fn validate_rejects_stale_index() {
        let mut sacs = PatternSummary::new();
        sacs.insert(pat("OT*"), id(1));
        // Corrupt the derived state behind the API's back: a new row the
        // anchor buckets know nothing about.
        sacs.patterns.push(PatternRow {
            pattern: pat("*SE"),
            ids: vec![id(2)],
        });
        sacs.validate();
    }

    #[test]
    #[should_panic(expected = "covers")]
    fn validate_rejects_comparable_rows() {
        let mut sacs = PatternSummary::new();
        sacs.insert(pat("O*"), id(1));
        sacs.patterns.push(PatternRow {
            pattern: pat("OT*"),
            ids: vec![id(2)],
        });
        sacs.index.rebuild(&sacs.patterns);
        sacs.validate();
    }

    #[test]
    fn wire_conversion_rebuilds_index() {
        // The serde impls funnel through `PatternSummaryWire` (the index
        // is derived state); the conversion pair must reconstruct it.
        let mut sacs = PatternSummary::new();
        sacs.insert(pat("OT*"), id(1));
        sacs.insert(pat("*SE"), id(2));
        sacs.insert(pat("lit"), id(3));
        let back = PatternSummary::from(PatternSummaryWire::from(sacs.clone()));
        assert_eq!(back, sacs);
        assert_eq!(sorted(back.query("OTSE")), vec![id(1), id(2)]);
        assert_eq!(back.query("lit"), vec![id(3)]);
    }
}
