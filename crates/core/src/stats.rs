//! Summary size accounting — the paper's equations (1) and (2) (§5.1).
//!
//! The paper measures the network bandwidth of summary propagation as the
//! byte size of the two data structures:
//!
//! * Eq. (1): `AACS = Σᵢ (2·n_srᵢ + n_eᵢ)·s_st  +  Σᵢ L_aᵢ·s_id`
//! * Eq. (2): `SACS = Σᵢ n_rᵢ·s_svᵢ  +  Σᵢ L_sᵢ·s_id`
//!
//! where `n_sr`/`n_e` are the sub-range/equality row counts per arithmetic
//! attribute, `n_r` the row count per string attribute, `L_a`/`L_s` the id
//! list lengths, `s_st` the arithmetic storage width, `s_sv` the string
//! value size and `s_id` the subscription id width. [`SummaryStats`]
//! extracts the counts from a [`BrokerSummary`] and [`SizeParams`] supplies
//! the widths (Table 2 defaults: `s_st = s_id = 4`).

use serde::{Deserialize, Serialize};

use crate::summary::BrokerSummary;

/// Storage widths used by the size model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeParams {
    /// `s_st`: bytes per arithmetic value (Table 2: 4).
    pub arith_width: usize,
    /// `s_id`: bytes per subscription id (Table 2: 4).
    pub id_width: usize,
}

impl Default for SizeParams {
    fn default() -> Self {
        // Table 2 of the paper.
        SizeParams {
            arith_width: 4,
            id_width: 4,
        }
    }
}

/// Aggregated structural counts of one summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Σ n_sr: sub-range rows across arithmetic attributes.
    pub range_rows: usize,
    /// Σ n_e: equality rows across arithmetic attributes.
    pub point_rows: usize,
    /// Σ L_a: id-list entries across arithmetic attributes.
    pub arith_ids: usize,
    /// Σ n_r: rows across string attributes.
    pub pattern_rows: usize,
    /// Σ L_s: id-list entries across string attributes.
    pub string_ids: usize,
    /// Σ of the rendered byte lengths of all row patterns (the exact
    /// realization of `n_r · s_sv` for the actual strings stored).
    pub pattern_bytes: usize,
}

impl SummaryStats {
    /// Collects the counts from a summary.
    pub fn of(summary: &BrokerSummary) -> Self {
        let mut stats = SummaryStats::default();
        for (attr, spec) in summary.schema().iter() {
            if spec.kind.is_arithmetic() {
                if let Some(s) = summary.arith_summary(attr) {
                    stats.range_rows += s.range_rows();
                    stats.point_rows += s.point_rows();
                    stats.arith_ids += s.id_list_len();
                }
            } else if let Some(s) = summary.string_summary(attr) {
                stats.pattern_rows += s.row_count();
                stats.string_ids += s.id_list_len();
                stats.pattern_bytes += s.pattern_bytes();
            }
        }
        stats
    }

    /// Eq. (1): the AACS byte size.
    pub fn aacs_size(&self, p: SizeParams) -> usize {
        (2 * self.range_rows + self.point_rows) * p.arith_width + self.arith_ids * p.id_width
    }

    /// Eq. (2): the SACS byte size, using the actual stored pattern bytes
    /// for `Σ n_r·s_sv`.
    pub fn sacs_size(&self, p: SizeParams) -> usize {
        self.pattern_bytes + self.string_ids * p.id_width
    }

    /// `TB`: the total summary size, Eq. (1) + Eq. (2) — the bandwidth a
    /// broker pays to ship this summary.
    pub fn total_size(&self, p: SizeParams) -> usize {
        self.aacs_size(p) + self.sacs_size(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_types::{stock_schema, BrokerId, LocalSubId, NumOp, StrOp, Subscription};

    #[test]
    fn fig4_fig5_counts() {
        let schema = stock_schema();
        let mut summary = BrokerSummary::new(schema.clone());
        // S1 of Fig. 3 (restricted to the attributes of Figs. 4–5).
        let s1 = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Eq, "OTE")
            .unwrap()
            .num("price", NumOp::Lt, 8.70)
            .unwrap()
            .num("price", NumOp::Gt, 8.30)
            .unwrap()
            .build()
            .unwrap();
        // S2 of Fig. 3 (symbol prefix + price equality).
        let s2 = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Prefix, "OT")
            .unwrap()
            .num("price", NumOp::Eq, 8.20)
            .unwrap()
            .build()
            .unwrap();
        summary.insert(BrokerId(0), LocalSubId(1), &s1);
        summary.insert(BrokerId(0), LocalSubId(2), &s2);
        let stats = SummaryStats::of(&summary);
        // AACS for price: one sub-range (8.30, 8.70) and one equality 8.20.
        assert_eq!(stats.range_rows, 1);
        assert_eq!(stats.point_rows, 1);
        assert_eq!(stats.arith_ids, 2);
        // SACS for symbol: single generalized row `OT*` with both ids.
        assert_eq!(stats.pattern_rows, 1);
        assert_eq!(stats.string_ids, 2);
        assert_eq!(stats.pattern_bytes, 3); // "OT*"
    }

    #[test]
    fn equation_arithmetic() {
        let stats = SummaryStats {
            range_rows: 2,
            point_rows: 3,
            arith_ids: 10,
            pattern_rows: 4,
            string_ids: 7,
            pattern_bytes: 40,
        };
        let p = SizeParams::default();
        // (2·2 + 3)·4 + 10·4 = 28 + 40 = 68.
        assert_eq!(stats.aacs_size(p), 68);
        // 40 + 7·4 = 68.
        assert_eq!(stats.sacs_size(p), 68);
        assert_eq!(stats.total_size(p), 136);
    }

    #[test]
    fn empty_summary_is_zero_bytes() {
        let summary = BrokerSummary::new(stock_schema());
        let stats = SummaryStats::of(&summary);
        assert_eq!(stats.total_size(SizeParams::default()), 0);
    }
}
