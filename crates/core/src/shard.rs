//! Shard-per-core matching: a [`BrokerSummary`] partitioned by dense-id
//! range behind lock-free snapshot reads.
//!
//! [`ShardedSummary`] keeps the canonical, wire-faithful summary (the
//! *flat* [`BrokerSummary`]) behind a writer mutex and publishes a
//! **derived** [`ShardSet`] through a [`SnapshotCell`]: `subscribe` /
//! `unsubscribe` / `merge` mutate the flat summary, re-derive the shard
//! partition off to the side, and flip it in with one pointer swap —
//! matching never blocks, and matching threads never block a writer.
//!
//! # Shards are representation-free derived state
//!
//! Shard `k` owns the contiguous dense-id range `bounds[k] ..
//! bounds[k+1]` (word-aligned so per-shard match bitmaps merge
//! word-wise). Its rows are the *flat* summary's rows with posting
//! lists restricted to the shard's range and rebased to shard-local
//! ids. Because SACS row formation depends on insertion order (covering
//! and absorption), shards are **never** built by re-inserting
//! subscriptions — that could place an id under a different covering
//! pattern than the flat build and change the candidate set. Splitting
//! the flat rows instead guarantees, row by row:
//!
//! ```text
//! matched(shard k) == matched(flat) ∩ [bounds[k], bounds[k+1])
//! ```
//!
//! so the union over shards equals the flat kernel's output *exactly*
//! (same ids, same false positives), and the wire format and digest are
//! untouched — the codec encodes the flat summary, and a decoder
//! rebuilds the partition from it, exactly like the intern table.
//!
//! # Per-shard kernel layout
//!
//! Per-shard AACS rows are laid out for cache-linear, branch-poor
//! probing: the disjoint sorted sub-ranges become two flat `u64` key
//! arrays (`lo_keys` / `hi_keys`, struct-of-arrays so a binary search
//! touches one contiguous cache-dense array, and the final containment
//! test is two unsigned compares with no `Interval` enum dispatch) plus
//! a CSR posting array. Keys are the standard order-preserving
//! transform of the IEEE-754 bits — `Num` excludes NaN and normalizes
//! `-0.0`, so `num_key(a) <= num_key(b) ⟺ a <= b` — with
//! open/closed bounds folded into the key (`Excl` lower bounds add one
//! ulp-key, `Excl` upper bounds subtract one), so a row satisfies a
//! value `v` iff `lo_key <= key(v) && key(v) <= hi_key`.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use subsum_telemetry::Count;
use subsum_types::{Event, LowerBound, Num, Schema, Subscription, SubscriptionId, UpperBound};

use crate::idlist::{idlist_range_slice, DenseId, IdList, SubIdList};
use crate::snapshot::{SnapshotCell, SnapshotReader};
use crate::summary::{BrokerSummary, MatchOutcome, MatchStats};
use crate::{PatternSummary, RangeSummary, SummaryDigest};

/// Per-shard kernel invocations (the fan-out width of sharded matching).
static CNT_SHARD_FANOUT: Count = Count::new(subsum_telemetry::names::MATCH_SHARD_FANOUT);
/// Nanoseconds spent merging per-shard bitmaps and extracting the
/// sorted output.
static CNT_SHARD_MERGE_NS: Count = Count::new(subsum_telemetry::names::MATCH_SHARD_MERGE_NS);

/// The order-preserving `u64` key of a `Num`: sign-flipped IEEE-754
/// bits. Total-order-isomorphic to `Num`'s `Ord` because `Num` excludes
/// NaN and normalizes `-0.0` at construction.
#[inline]
fn num_key(v: Num) -> u64 {
    let bits = v.get().to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// The smallest value key satisfying a lower bound. Keys are bijective
/// with the non-NaN floats, so `Excl(x)` is exactly "the key after
/// `x`"; `Excl(+inf)` saturates to an unsatisfiable key, which is the
/// correct (empty) semantics.
#[inline]
fn lower_key(b: LowerBound) -> u64 {
    match b {
        LowerBound::NegInf => 0,
        LowerBound::Incl(x) => num_key(x),
        LowerBound::Excl(x) => num_key(x).saturating_add(1),
    }
}

/// The largest value key satisfying an upper bound (mirror of
/// [`lower_key`]).
#[inline]
fn upper_key(b: UpperBound) -> u64 {
    match b {
        UpperBound::PosInf => u64::MAX,
        UpperBound::Incl(x) => num_key(x),
        UpperBound::Excl(x) => num_key(x).saturating_sub(1),
    }
}

/// One shard's AACS in the flat, probe-friendly layout: sorted key
/// arrays over the disjoint sub-range rows plus CSR posting storage,
/// and the same for the equality (AACS_E) rows.
#[derive(Debug, Clone, Default)]
struct ShardRanges {
    /// Lower-bound key per sub-range row, ascending.
    lo_keys: Vec<u64>,
    /// Upper-bound key per sub-range row (same row order).
    hi_keys: Vec<u64>,
    /// CSR offsets into `range_postings`, length `rows + 1`.
    range_offsets: Vec<u32>,
    /// Shard-local dense postings of the sub-range rows.
    range_postings: Vec<DenseId>,
    /// Equality-row value keys, ascending.
    point_keys: Vec<u64>,
    /// CSR offsets into `point_postings`, length `points + 1`.
    point_offsets: Vec<u32>,
    /// Shard-local dense postings of the equality rows.
    point_postings: Vec<DenseId>,
}

impl ShardRanges {
    /// Splits `src`'s rows down to the dense range `[lo, hi)`, rebasing
    /// postings to shard-local ids. `None` when no posting survives.
    fn derive(src: &RangeSummary, lo: DenseId, hi: DenseId) -> Option<ShardRanges> {
        let mut out = ShardRanges::default();
        out.range_offsets.push(0);
        for row in src.ranges() {
            let slice = idlist_range_slice(&row.ids, lo, hi);
            if slice.is_empty() {
                continue;
            }
            out.lo_keys.push(lower_key(row.interval.lo()));
            out.hi_keys.push(upper_key(row.interval.hi()));
            out.range_postings.extend(slice.iter().map(|&d| d - lo));
            out.range_offsets.push(out.range_postings.len() as u32);
        }
        out.point_offsets.push(0);
        for (v, ids) in src.points() {
            let slice = idlist_range_slice(ids, lo, hi);
            if slice.is_empty() {
                continue;
            }
            out.point_keys.push(num_key(v));
            out.point_postings.extend(slice.iter().map(|&d| d - lo));
            out.point_offsets.push(out.point_postings.len() as u32);
        }
        if out.lo_keys.is_empty() && out.point_keys.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// Appends the postings of the (at most one, by disjointness) row
    /// containing the value with key `key`, then the equality row.
    /// Equivalent to [`RangeSummary::query_into`] restricted to this
    /// shard's postings; cost accounting matches its shape.
    #[inline]
    fn query_into(&self, key: u64, out: &mut IdList, stats: &mut MatchStats) {
        if !self.lo_keys.is_empty() {
            let probes = (usize::BITS - self.lo_keys.len().leading_zeros()) as usize;
            stats.rows_scanned += probes;
            stats.rows_pruned += self.lo_keys.len().saturating_sub(probes);
            // Last row whose lower bound admits `key`; the two compares
            // below replace the enum-dispatching `Interval::contains`.
            let idx = self.lo_keys.partition_point(|&lo| lo <= key);
            if idx > 0 && key <= self.hi_keys[idx - 1] {
                let a = self.range_offsets[idx - 1] as usize;
                let b = self.range_offsets[idx] as usize;
                out.extend_from_slice(&self.range_postings[a..b]);
            }
        }
        if !self.point_keys.is_empty() {
            stats.rows_scanned += 1;
            stats.rows_pruned += self.point_keys.len() - 1;
            if let Ok(i) = self.point_keys.binary_search(&key) {
                let a = self.point_offsets[i] as usize;
                let b = self.point_offsets[i + 1] as usize;
                out.extend_from_slice(&self.point_postings[a..b]);
            }
        }
    }
}

/// One shard: the flat summary's rows restricted to a contiguous dense
/// range, in shard-local id space.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    /// First global dense id of the shard (a multiple of 64).
    base: u32,
    /// Per-attribute flat AACS layouts (`None` where empty).
    arith: Vec<Option<ShardRanges>>,
    /// Per-attribute SACS restrictions (`None` where empty).
    strings: Vec<Option<PatternSummary>>,
    /// `required[local]` — the flat table's counter thresholds for this
    /// shard's dense slice.
    required: Vec<u32>,
}

impl Shard {
    fn len(&self) -> usize {
        self.required.len()
    }
}

/// A published shard partition: derived state, rebuilt from the flat
/// summary on every mutation and swapped in atomically.
#[derive(Debug, Clone)]
pub(crate) struct ShardSet {
    schema: Schema,
    /// Partition bounds over the global dense space: shard `k` owns
    /// `bounds[k] .. bounds[k+1]`; interior bounds are multiples of 64.
    bounds: Vec<u32>,
    /// The flat intern-table id list (global dense id -> full id).
    ids: SubIdList,
    shards: Vec<Shard>,
}

impl ShardSet {
    fn derive(flat: &BrokerSummary, shard_count: usize) -> ShardSet {
        let n = flat.intern_table().ids_slice().len();
        let bounds = partition_bounds(n, shard_count);
        let shards = bounds
            .windows(2)
            .map(|w| Shard {
                base: w[0],
                arith: flat
                    .arith_slots()
                    .iter()
                    .map(|s| s.as_ref().and_then(|s| ShardRanges::derive(s, w[0], w[1])))
                    .collect(),
                strings: flat
                    .string_slots()
                    .iter()
                    .map(|s| s.as_ref().and_then(|s| s.filter_rebase(w[0], w[1])))
                    .collect(),
                required: flat.intern_table().required_slice()[w[0] as usize..w[1] as usize]
                    .to_vec(),
            })
            .collect();
        ShardSet {
            schema: flat.schema().clone(),
            bounds,
            ids: flat.intern_table().ids_slice().to_vec(),
            shards,
        }
    }
}

/// The deterministic partition function: `n` dense ids split into at
/// most `shard_count` contiguous ranges of equal word-aligned size
/// (every interior bound is a multiple of 64, so shard-local bitmap
/// words map to disjoint global words and merge by copy/OR). Returns
/// the `bounds` array, length `shards + 1`.
pub(crate) fn partition_bounds(n: usize, shard_count: usize) -> Vec<u32> {
    let s = shard_count.max(1);
    let chunk = n.div_ceil(s).div_ceil(64).max(1) * 64;
    let mut bounds: Vec<u32> = Vec::with_capacity(s + 1);
    bounds.push(0);
    let mut at = 0usize;
    while at < n {
        at = (at + chunk).min(n);
        bounds.push(at as u32);
    }
    if bounds.len() == 1 {
        // Empty summary: keep one (empty) shard so matching has a
        // well-formed partition to walk.
        bounds.push(0);
    }
    bounds
}

/// Per-shard working memory of the epoch-counter kernel — the same
/// lazily-invalidated arrays as [`crate::MatchScratch`], sized to the
/// shard's local dense space.
#[derive(Debug, Clone, Default)]
struct ShardKernel {
    per_attr: IdList,
    hits: Vec<u32>,
    stamp: Vec<u64>,
    seen: Vec<u64>,
    touched: Vec<DenseId>,
    /// Shard-local matched bitmap; cleared during the merge phase.
    words: Vec<u64>,
    token: u64,
}

impl ShardKernel {
    /// Runs the counter kernel for one shard over one event, setting
    /// bits in `self.words` (shard-local). Returns the highest local
    /// word index written + 1, or 0 when nothing matched.
    fn run(
        &mut self,
        shard: &Shard,
        schema: &Schema,
        event: &Event,
        stats: &mut MatchStats,
    ) -> usize {
        CNT_SHARD_FANOUT.inc();
        let n = shard.len();
        if self.hits.len() < n {
            self.hits.resize(n, 0);
            self.stamp.resize(n, 0);
            self.seen.resize(n, 0);
        }
        if self.words.len() < n.div_ceil(64) {
            self.words.resize(n.div_ceil(64), 0);
        }
        let epoch = self.token + 1;
        let mut attr_token = epoch;
        for (attr, value) in event.iter() {
            self.per_attr.clear();
            if schema.kind(attr).is_arithmetic() {
                if let Some(s) = shard.arith.get(attr.index()).and_then(Option::as_ref) {
                    if let Some(v) = value.as_num() {
                        s.query_into(num_key(v), &mut self.per_attr, stats);
                    }
                }
            } else if let Some(s) = shard.strings.get(attr.index()).and_then(Option::as_ref) {
                if let Some(v) = value.as_str() {
                    let cost = s.query_into(v, &mut self.per_attr);
                    stats.rows_scanned += cost.rows_touched;
                    stats.rows_pruned += cost.rows_pruned;
                }
            }
            attr_token += 1;
            for &d in self.per_attr.iter() {
                let di = d as usize;
                if self.seen[di] == attr_token {
                    continue;
                }
                self.seen[di] = attr_token;
                stats.ids_collected += 1;
                if self.stamp[di] == epoch {
                    self.hits[di] += 1;
                } else {
                    self.stamp[di] = epoch;
                    self.hits[di] = 1;
                    self.touched.push(d);
                }
            }
        }
        self.token = attr_token;
        stats.candidates += self.touched.len();
        let mut top = 0usize;
        for &d in self.touched.iter() {
            let di = d as usize;
            if self.hits[di] == shard.required[di] {
                let w = di / 64;
                self.words[w] |= 1u64 << (di % 64);
                top = top.max(w + 1);
            }
        }
        self.touched.clear();
        top
    }
}

/// Reusable working memory for [`ShardedSummary::match_event_into`]:
/// one [`ShardKernel`] per shard, the snapshot reader slot, and the
/// outcome buffer. Like [`crate::MatchScratch`], a warm scratch makes
/// the sharded steady-state match loop allocation-free — pinning a
/// snapshot is two atomic stores and a load.
#[derive(Debug, Default)]
pub struct ShardScratch {
    /// Registered lazily against the summary's snapshot cell on first
    /// use (the only allocating step besides kernel growth).
    reader: Option<SnapshotReader<ShardSet>>,
    kernels: Vec<ShardKernel>,
    outcome: MatchOutcome,
}

impl ShardScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        ShardScratch::default()
    }

    /// The outcome of the most recent match served by this scratch.
    pub fn outcome(&self) -> &MatchOutcome {
        &self.outcome
    }
}

/// A [`BrokerSummary`] sharded by dense-id range behind an epoch-stamped
/// snapshot pointer.
///
/// All methods take `&self`: writers serialize on an internal mutex
/// around the canonical flat summary and publish derived [`ShardSet`]
/// versions through a [`SnapshotCell`]; readers pin a snapshot without
/// locking, so a `ShardedSummary` can be shared across a worker pool
/// while subscribe/unsubscribe churn runs concurrently.
///
/// The sharded matcher's `matched` output is **identical** to the flat
/// [`BrokerSummary::match_event_into`] — same candidates, same sorted
/// order (see the module docs for why); work counters differ (per-shard
/// probes are accounted per shard).
#[derive(Debug)]
pub struct ShardedSummary {
    flat: Mutex<BrokerSummary>,
    shard_count: usize,
    cell: Arc<SnapshotCell<ShardSet>>,
}

impl ShardedSummary {
    /// Creates an empty sharded summary over `schema` targeting
    /// `shard_count` shards (small populations may yield fewer, since
    /// shards are word-aligned).
    pub fn new(schema: Schema, shard_count: usize) -> Self {
        ShardedSummary::from_flat(BrokerSummary::new(schema), shard_count)
    }

    /// Shards an existing flat summary (e.g. one rebuilt by a wire
    /// decode — the partition is derived state and never travels).
    pub fn from_flat(flat: BrokerSummary, shard_count: usize) -> Self {
        let set = ShardSet::derive(&flat, shard_count);
        ShardedSummary {
            flat: Mutex::new(flat),
            shard_count,
            cell: Arc::new(SnapshotCell::new(set)),
        }
    }

    /// The configured shard-count target.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    fn lock_flat(&self) -> MutexGuard<'_, BrokerSummary> {
        match self.flat.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Runs `f` over the canonical flat summary (wire encoding, stats,
    /// digests — everything representation-level goes through here).
    pub fn with_flat<R>(&self, f: impl FnOnce(&BrokerSummary) -> R) -> R {
        f(&self.lock_flat())
    }

    /// A clone of the canonical flat summary.
    pub fn to_flat(&self) -> BrokerSummary {
        self.lock_flat().clone()
    }

    /// Consumes the sharded view, returning the canonical flat summary.
    pub fn into_flat(self) -> BrokerSummary {
        self.flat.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    /// The canonical digest — computed on the flat summary, so it is
    /// byte-identical to an unsharded build of the same subscriptions.
    pub fn digest(&self) -> SummaryDigest {
        self.lock_flat().digest()
    }

    /// The number of subscriptions summarized.
    pub fn subscription_count(&self) -> usize {
        self.lock_flat().subscription_count()
    }

    /// Mutates the flat summary under the writer lock, then derives and
    /// publishes a fresh shard partition. Readers keep matching against
    /// the previous version until the pointer flip.
    fn mutate<R>(&self, f: impl FnOnce(&mut BrokerSummary) -> R) -> R {
        let mut flat = self.lock_flat();
        let out = f(&mut flat);
        let set = ShardSet::derive(&flat, self.shard_count);
        self.cell.publish(set);
        out
    }

    /// As [`BrokerSummary::insert`]; concurrent matching is never
    /// stalled.
    pub fn insert(
        &self,
        broker: subsum_types::BrokerId,
        local: subsum_types::LocalSubId,
        sub: &Subscription,
    ) -> SubscriptionId {
        self.mutate(|flat| flat.insert(broker, local, sub))
    }

    /// As [`BrokerSummary::insert_with_id`].
    pub fn insert_with_id(&self, id: SubscriptionId, sub: &Subscription) {
        self.mutate(|flat| flat.insert_with_id(id, sub));
    }

    /// As [`BrokerSummary::remove`].
    pub fn remove(&self, id: SubscriptionId) {
        self.mutate(|flat| flat.remove(id));
    }

    /// As [`BrokerSummary::merge`].
    pub fn merge(&self, other: &BrokerSummary) {
        self.mutate(|flat| flat.merge(other));
    }

    /// Snapshot/reclamation counters of the underlying cell.
    pub fn snapshot_stats(&self) -> crate::snapshot::SnapshotStats {
        self.cell.stats()
    }

    /// Matches one event against the current shard snapshot — the
    /// sharded drop-in for [`BrokerSummary::match_event_into`], with
    /// byte-identical `matched` output.
    ///
    /// Pins the snapshot lock-free, runs the per-shard counter kernels
    /// in ascending shard order, then merges the per-shard bitmaps
    /// word-wise and extracts set bits in ascending global dense order —
    /// which is ascending [`SubscriptionId`] order, so the output is
    /// sorted with no sort. Zero heap allocations at steady state.
    pub fn match_event_into<'s>(
        &self,
        event: &Event,
        scratch: &'s mut ShardScratch,
    ) -> &'s MatchOutcome {
        // A scratch may be re-targeted across summaries (like
        // `MatchScratch` across brokers): drop a reader registered on a
        // different cell, then (re)register — the only non-steady-state
        // step.
        if scratch
            .reader
            .as_ref()
            .is_some_and(|r| !r.reads(&self.cell))
        {
            scratch.reader = None;
        }
        // Destructured so the pin guard borrows only the reader field
        // while the kernels and the outcome stay independently mutable.
        let ShardScratch {
            reader,
            kernels,
            outcome,
        } = scratch;
        let reader = reader.get_or_insert_with(|| self.cell.reader());
        let set = reader.pin();
        let mut stats = MatchStats::default();
        if kernels.len() < set.shards.len() {
            kernels.resize_with(set.shards.len(), ShardKernel::default);
        }
        let mut tops = 0usize;
        for (shard, kernel) in set.shards.iter().zip(kernels.iter_mut()) {
            tops += kernel.run(shard, &set.schema, event, &mut stats);
        }
        // Merge phase: per-shard words map to disjoint global words
        // (bases are multiples of 64), so walking shards in partition
        // order *is* the word-wise merge, feeding the same sorted
        // extraction as the flat kernel.
        let merge_start = Instant::now();
        outcome.matched.clear();
        if tops > 0 {
            for (shard, kernel) in set.shards.iter().zip(kernels.iter_mut()) {
                let base = shard.base;
                for w in 0..kernel.words.len() {
                    let mut bits = kernel.words[w];
                    if bits == 0 {
                        continue;
                    }
                    kernel.words[w] = 0;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let global = base as usize + w * 64 + b;
                        outcome.matched.push(set.ids[global]);
                    }
                }
            }
        }
        CNT_SHARD_MERGE_NS.add(merge_start.elapsed().as_nanos() as u64);
        outcome.stats = stats;
        outcome
    }

    /// Matches a batch of events, fanning the **shards** out across
    /// `workers` threads: worker `j` runs the kernels of shards `j, j +
    /// W, …` for every event, and a final pass merges the per-shard
    /// bitmap words into per-event sorted outputs. All workers read one
    /// pinned snapshot; concurrent publishes are invisible to the batch
    /// and never block it.
    ///
    /// Returns one sorted id list per event, identical to per-event
    /// [`ShardedSummary::match_event_into`] output.
    pub fn match_batch_fanout(&self, events: &[Event], workers: usize) -> Vec<Vec<SubscriptionId>> {
        let mut reader = self.cell.reader();
        let set = reader.pin();
        let shard_count = set.shards.len();
        let w = workers.max(1).min(shard_count.max(1));
        // words[shard][event] — each worker writes only its own shards'
        // rows, so the matrix splits mutably by shard.
        let mut words: Vec<Vec<u64>> = Vec::with_capacity(shard_count);
        for shard in &set.shards {
            words.push(vec![0u64; shard.len().div_ceil(64) * events.len()]);
        }
        {
            let mut slots: Vec<Option<(usize, &Shard, &mut Vec<u64>)>> = words
                .iter_mut()
                .enumerate()
                .map(|(k, buf)| Some((k, &set.shards[k], buf)))
                .collect();
            std::thread::scope(|scope| {
                for j in 0..w {
                    let mut mine: Vec<(usize, &Shard, &mut Vec<u64>)> = Vec::new();
                    for slot in slots.iter_mut().skip(j).step_by(w) {
                        if let Some(item) = slot.take() {
                            mine.push(item);
                        }
                    }
                    let schema = &set.schema;
                    scope.spawn(move || {
                        let mut kernel = ShardKernel::default();
                        let mut stats = MatchStats::default();
                        for (_, shard, buf) in mine.iter_mut() {
                            let stride = shard.len().div_ceil(64);
                            for (e, event) in events.iter().enumerate() {
                                let top = kernel.run(shard, schema, event, &mut stats);
                                if top > 0 {
                                    let row = &mut buf[e * stride..e * stride + stride];
                                    for (dst, src) in
                                        row.iter_mut().zip(kernel.words.iter_mut()).take(top)
                                    {
                                        *dst = *src;
                                        *src = 0;
                                    }
                                }
                            }
                        }
                    });
                }
            });
        }
        // Word-wise merge into per-event sorted extractions.
        let merge_start = Instant::now();
        let mut out = Vec::with_capacity(events.len());
        for e in 0..events.len() {
            let mut matched = Vec::new();
            for (k, shard) in set.shards.iter().enumerate() {
                let stride = shard.len().div_ceil(64);
                let row = &words[k][e * stride..(e + 1) * stride];
                for (wi, &bits) in row.iter().enumerate() {
                    let mut bits = bits;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let global = shard.base as usize + wi * 64 + b;
                        matched.push(set.ids[global]);
                    }
                }
            }
            out.push(matched);
        }
        CNT_SHARD_MERGE_NS.add(merge_start.elapsed().as_nanos() as u64);
        out
    }

    /// Deep validation of the published partition against the canonical
    /// flat summary — shard-coherence checks layered on top of
    /// [`BrokerSummary::validate`]. See `validate_set`.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    #[cfg(any(test, debug_assertions))]
    pub fn validate(&self) {
        let flat = self.lock_flat();
        flat.validate();
        let mut reader = self.cell.reader();
        let set = reader.pin();
        validate_set(&flat, &set);
    }
}

impl Clone for ShardedSummary {
    /// Clones the canonical summary and derives a fresh partition (the
    /// snapshot cell and its reader registrations are per-instance).
    fn clone(&self) -> Self {
        ShardedSummary::from_flat(self.to_flat(), self.shard_count)
    }
}

/// Shard-coherence invariants, checked in tests and debug builds:
///
/// * the partition covers `0..n` contiguously with word-aligned
///   interior bounds, and the id table equals the flat intern table;
/// * per shard, `required` mirrors the flat thresholds and every
///   posting is in shard-local range;
/// * per-shard AACS keys are sorted with each row's `lo <= hi`, and
///   CSR offsets are monotone and exhaustive;
/// * splitting loses nothing: for every attribute, the multiset of
///   (row, global id) postings across shards equals the flat summary's
///   rows exactly (ranges by bound keys, points by value key, SACS rows
///   by rendered pattern).
///
/// # Panics
///
/// Panics on the first violated invariant.
#[cfg(any(test, debug_assertions))]
pub(crate) fn validate_set(flat: &BrokerSummary, set: &ShardSet) {
    let n = flat.intern_table().ids_slice().len();
    assert_eq!(&set.ids, flat.intern_table().ids_slice(), "shard id table");
    assert!(set.bounds.len() >= 2, "partition has at least one shard");
    assert_eq!(set.bounds[0], 0, "partition starts at 0");
    assert_eq!(
        *set.bounds.last().unwrap_or(&0) as usize,
        n,
        "partition covers the dense space"
    );
    assert_eq!(set.shards.len(), set.bounds.len() - 1, "bounds/shards");
    for w in set.bounds.windows(2) {
        assert!(w[0] <= w[1], "bounds monotone");
    }
    for &b in &set.bounds[1..set.bounds.len() - 1] {
        assert_eq!(b % 64, 0, "interior bound word-aligned");
    }
    for (k, shard) in set.shards.iter().enumerate() {
        let (lo, hi) = (set.bounds[k], set.bounds[k + 1]);
        assert_eq!(shard.base, lo, "shard base matches partition");
        assert_eq!(shard.len(), (hi - lo) as usize, "shard length");
        assert_eq!(
            shard.required,
            &flat.intern_table().required_slice()[lo as usize..hi as usize],
            "shard required thresholds"
        );
        for ranges in shard.arith.iter().flatten() {
            assert!(
                ranges.lo_keys.windows(2).all(|w| w[0] < w[1]),
                "shard lo keys strictly ascending"
            );
            for (i, &lo_k) in ranges.lo_keys.iter().enumerate() {
                assert!(lo_k <= ranges.hi_keys[i], "row keys ordered");
            }
            assert_csr(&ranges.range_offsets, &ranges.range_postings, shard.len());
            assert!(
                ranges.point_keys.windows(2).all(|w| w[0] < w[1]),
                "shard point keys strictly ascending"
            );
            assert_csr(&ranges.point_offsets, &ranges.point_postings, shard.len());
        }
        for sacs in shard.strings.iter().flatten() {
            sacs.validate();
            for (_, ids) in sacs.rows() {
                for &d in ids {
                    assert!((d as usize) < shard.len(), "SACS posting in range");
                }
            }
        }
    }
    // Nothing lost, nothing invented: shard postings reassemble the
    // flat rows exactly.
    for (attr, slot) in flat.arith_slots().iter().enumerate() {
        let mut flat_rows: Vec<(u64, u64, DenseId)> = Vec::new();
        if let Some(s) = slot {
            for row in s.ranges() {
                for &d in &row.ids {
                    flat_rows.push((
                        lower_key(row.interval.lo()),
                        upper_key(row.interval.hi()),
                        d,
                    ));
                }
            }
            for (v, ids) in s.points() {
                for &d in ids {
                    flat_rows.push((num_key(v), u64::MAX, d));
                }
            }
        }
        let mut shard_rows: Vec<(u64, u64, DenseId)> = Vec::new();
        for shard in &set.shards {
            if let Some(r) = shard.arith.get(attr).and_then(Option::as_ref) {
                for (i, &lo_k) in r.lo_keys.iter().enumerate() {
                    let (a, b) = (r.range_offsets[i] as usize, r.range_offsets[i + 1] as usize);
                    for &d in &r.range_postings[a..b] {
                        shard_rows.push((lo_k, r.hi_keys[i], shard.base + d));
                    }
                }
                for (i, &pk) in r.point_keys.iter().enumerate() {
                    let (a, b) = (r.point_offsets[i] as usize, r.point_offsets[i + 1] as usize);
                    for &d in &r.point_postings[a..b] {
                        shard_rows.push((pk, u64::MAX, shard.base + d));
                    }
                }
            }
        }
        flat_rows.sort_unstable();
        shard_rows.sort_unstable();
        assert_eq!(
            flat_rows, shard_rows,
            "AACS postings reassemble (attr {attr})"
        );
    }
    for (attr, slot) in flat.string_slots().iter().enumerate() {
        let mut flat_rows: Vec<(String, DenseId)> = Vec::new();
        if let Some(s) = slot {
            for (pattern, ids) in s.rows() {
                for &d in ids {
                    flat_rows.push((pattern.to_string(), d));
                }
            }
        }
        let mut shard_rows: Vec<(String, DenseId)> = Vec::new();
        for shard in &set.shards {
            if let Some(s) = shard.strings.get(attr).and_then(Option::as_ref) {
                for (pattern, ids) in s.rows() {
                    for &d in ids {
                        shard_rows.push((pattern.to_string(), shard.base + d));
                    }
                }
            }
        }
        flat_rows.sort_unstable();
        shard_rows.sort_unstable();
        assert_eq!(
            flat_rows, shard_rows,
            "SACS postings reassemble (attr {attr})"
        );
    }
}

#[cfg(any(test, debug_assertions))]
fn assert_csr(offsets: &[u32], postings: &[DenseId], local_len: usize) {
    assert!(!offsets.is_empty(), "CSR has a leading offset");
    assert_eq!(offsets[0], 0, "CSR starts at 0");
    assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "CSR monotone");
    assert_eq!(
        *offsets.last().unwrap_or(&0) as usize,
        postings.len(),
        "CSR exhaustive"
    );
    for &d in postings {
        assert!((d as usize) < local_len, "posting in shard range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_types::{stock_schema, BrokerId, LocalSubId, NumOp, StrOp};

    fn n(v: f64) -> Num {
        Num::new(v).unwrap()
    }

    fn population(count: u32) -> (Schema, Vec<(SubscriptionId, Subscription)>) {
        let schema = stock_schema();
        let mut subs = Vec::new();
        for i in 0..count {
            let lo = (i % 40) as f64;
            let mut b = Subscription::builder(&schema)
                .num("price", NumOp::Ge, lo)
                .unwrap()
                .num("price", NumOp::Lt, lo + 17.0)
                .unwrap();
            if i % 3 == 0 {
                let prefix = [b'A' + (i % 26) as u8];
                b = b
                    .str_op(
                        "symbol",
                        StrOp::Prefix,
                        std::str::from_utf8(&prefix).unwrap(),
                    )
                    .unwrap();
            }
            if i % 5 == 0 {
                b = b.num("volume", NumOp::Eq, (i % 9) as f64 * 100.0).unwrap();
            }
            if i % 7 == 0 {
                b = b.str_op("exchange", StrOp::Suffix, "SE").unwrap();
            }
            let sub = b.build().unwrap();
            let id = SubscriptionId::new(BrokerId((i % 4) as u16), LocalSubId(i), sub.attr_mask());
            subs.push((id, sub));
        }
        (schema, subs)
    }

    fn events(schema: &Schema) -> Vec<Event> {
        (0..12u32)
            .map(|k| {
                let symbol = [b'A' + ((k * 3) % 26) as u8];
                Event::builder(schema)
                    .num("price", 3.0 + k as f64 * 4.5)
                    .unwrap()
                    .num("volume", (k % 9) as f64 * 100.0)
                    .unwrap()
                    .str("symbol", String::from_utf8(symbol.to_vec()).unwrap())
                    .unwrap()
                    .str(
                        "exchange",
                        if k % 2 == 0 { "NYSE" } else { "LSE" }.to_string(),
                    )
                    .unwrap()
                    .build()
            })
            .collect()
    }

    #[test]
    fn num_key_is_order_isomorphic() {
        let values = [
            f64::NEG_INFINITY,
            -1.0e300,
            -2.5,
            -1.0,
            -f64::MIN_POSITIVE,
            0.0,
            f64::MIN_POSITIVE,
            0.5,
            1.0,
            2.5,
            1.0e300,
            f64::INFINITY,
        ];
        for a in values {
            for b in values {
                assert_eq!(
                    num_key(n(a)) <= num_key(n(b)),
                    n(a) <= n(b),
                    "key order mismatch for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn bound_keys_match_bound_semantics() {
        let probes = [-3.0, -1.0, 0.0, 0.5, 1.0, 1.5, 2.0, 100.0];
        let bounds_lo = [
            LowerBound::NegInf,
            LowerBound::Incl(n(1.0)),
            LowerBound::Excl(n(1.0)),
        ];
        let bounds_hi = [
            UpperBound::PosInf,
            UpperBound::Incl(n(1.0)),
            UpperBound::Excl(n(1.0)),
        ];
        for v in probes {
            let kv = num_key(n(v));
            for lo in bounds_lo {
                assert_eq!(lower_key(lo) <= kv, lo.admits(n(v)), "{lo:?} vs {v}");
            }
            for hi in bounds_hi {
                assert_eq!(kv <= upper_key(hi), hi.admits(n(v)), "{hi:?} vs {v}");
            }
        }
    }

    #[test]
    fn partition_bounds_are_word_aligned_and_cover() {
        for (count, s) in [
            (0usize, 4usize),
            (1, 1),
            (63, 8),
            (64, 2),
            (1000, 3),
            (8000, 8),
        ] {
            let bounds = partition_bounds(count, s);
            assert!(bounds.len() >= 2);
            assert!(bounds.len() - 1 <= s.max(1));
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap() as usize, count);
            for b in &bounds[1..bounds.len() - 1] {
                assert_eq!(b % 64, 0, "interior bound aligned ({count}, {s})");
            }
        }
    }

    #[test]
    fn sharded_matches_flat_exactly() {
        let (schema, subs) = population(300);
        let mut flat = BrokerSummary::new(schema.clone());
        for (id, sub) in &subs {
            flat.insert_with_id(*id, sub);
        }
        let mut flat_scratch = crate::MatchScratch::new();
        for shards in [1usize, 2, 3, 8] {
            let sharded = ShardedSummary::from_flat(flat.clone(), shards);
            sharded.validate();
            let mut scratch = ShardScratch::new();
            for event in events(&schema) {
                let expect = flat
                    .match_event_into(&event, &mut flat_scratch)
                    .matched
                    .clone();
                let got = sharded.match_event_into(&event, &mut scratch);
                assert_eq!(got.matched, expect, "shards={shards}");
            }
        }
    }

    #[test]
    fn fanout_batch_matches_per_event_path() {
        let (schema, subs) = population(257);
        let sharded = ShardedSummary::new(schema.clone(), 4);
        for (id, sub) in &subs {
            sharded.insert_with_id(*id, sub);
        }
        let events = events(&schema);
        let mut scratch = ShardScratch::new();
        for workers in [1usize, 2, 4, 8] {
            let batch = sharded.match_batch_fanout(&events, workers);
            assert_eq!(batch.len(), events.len());
            for (event, got) in events.iter().zip(&batch) {
                let expect = &sharded.match_event_into(event, &mut scratch).matched;
                assert_eq!(got, expect, "workers={workers}");
            }
        }
    }

    #[test]
    fn mutation_republishes_and_digest_tracks_flat() {
        let (schema, subs) = population(100);
        let sharded = ShardedSummary::new(schema.clone(), 3);
        let mut flat = BrokerSummary::new(schema.clone());
        for (id, sub) in &subs {
            sharded.insert_with_id(*id, sub);
            flat.insert_with_id(*id, sub);
        }
        assert_eq!(sharded.digest(), flat.digest());
        assert_eq!(sharded.snapshot_stats().flips, subs.len() as u64);
        sharded.validate();
        // Remove half, still coherent and equal to the flat build.
        for (id, _) in subs.iter().step_by(2) {
            sharded.remove(*id);
            flat.remove(*id);
        }
        assert_eq!(sharded.digest(), flat.digest());
        sharded.validate();
        let mut scratch = ShardScratch::new();
        let mut flat_scratch = crate::MatchScratch::new();
        for event in events(&schema) {
            assert_eq!(
                sharded.match_event_into(&event, &mut scratch).matched,
                flat.match_event_into(&event, &mut flat_scratch).matched
            );
        }
    }

    #[test]
    fn merge_through_sharded_equals_flat_merge() {
        let (schema, subs) = population(120);
        let mut left = BrokerSummary::new(schema.clone());
        let mut right = BrokerSummary::new(schema.clone());
        for (i, (id, sub)) in subs.iter().enumerate() {
            if i % 2 == 0 {
                left.insert_with_id(*id, sub);
            } else {
                right.insert_with_id(*id, sub);
            }
        }
        let sharded = ShardedSummary::from_flat(left.clone(), 3);
        sharded.merge(&right);
        left.merge(&right);
        assert_eq!(sharded.digest(), left.digest());
        sharded.validate();
        let mut scratch = ShardScratch::new();
        let mut flat_scratch = crate::MatchScratch::new();
        for event in events(&schema) {
            assert_eq!(
                sharded.match_event_into(&event, &mut scratch).matched,
                left.match_event_into(&event, &mut flat_scratch).matched
            );
        }
    }

    #[test]
    fn scratch_retargets_across_summaries() {
        let (schema, subs) = population(80);
        let a = ShardedSummary::new(schema.clone(), 2);
        let b = ShardedSummary::new(schema.clone(), 5);
        for (id, sub) in &subs {
            a.insert_with_id(*id, sub);
            b.insert_with_id(*id, sub);
        }
        let mut scratch = ShardScratch::new();
        for event in events(&schema) {
            let got_a = a.match_event_into(&event, &mut scratch).matched.clone();
            let got_b = b.match_event_into(&event, &mut scratch).matched.clone();
            assert_eq!(got_a, got_b);
        }
    }

    #[test]
    fn empty_summary_matches_nothing() {
        let schema = stock_schema();
        let sharded = ShardedSummary::new(schema.clone(), 4);
        let mut scratch = ShardScratch::new();
        for event in events(&schema) {
            assert!(sharded
                .match_event_into(&event, &mut scratch)
                .matched
                .is_empty());
        }
        sharded.validate();
    }

    // ---- negative corruption tests: validate_set must catch every
    // ---- class of shard-coherence violation.

    fn corrupt_panics(corrupt: impl Fn(&mut ShardSet) + std::panic::UnwindSafe) -> bool {
        let (_, subs) = population(200);
        let mut flat = BrokerSummary::new(stock_schema());
        for (id, sub) in &subs {
            flat.insert_with_id(*id, sub);
        }
        let mut set = ShardSet::derive(&flat, 3);
        corrupt(&mut set);
        std::panic::catch_unwind(move || validate_set(&flat, &set)).is_err()
    }

    #[test]
    fn validate_accepts_derived_set() {
        assert!(!corrupt_panics(|_| ()));
    }

    #[test]
    fn validate_rejects_misaligned_bound() {
        assert!(corrupt_panics(|set| {
            // Move an interior bound off word alignment.
            let mid = set.bounds.len() / 2;
            set.bounds[mid] += 1;
        }));
    }

    #[test]
    fn validate_rejects_dropped_posting() {
        assert!(corrupt_panics(|set| {
            for shard in &mut set.shards {
                for ranges in shard.arith.iter_mut().flatten() {
                    if !ranges.range_postings.is_empty() {
                        ranges.range_postings.pop();
                        if let Some(last) = ranges.range_offsets.last_mut() {
                            *last -= 1;
                        }
                        return;
                    }
                }
            }
        }));
    }

    #[test]
    fn validate_rejects_wrong_required_threshold() {
        assert!(corrupt_panics(|set| {
            if let Some(shard) = set.shards.first_mut() {
                if let Some(r) = shard.required.first_mut() {
                    *r += 1;
                }
            }
        }));
    }

    #[test]
    fn validate_rejects_out_of_range_posting() {
        assert!(corrupt_panics(|set| {
            for shard in &mut set.shards {
                for ranges in shard.arith.iter_mut().flatten() {
                    if let Some(p) = ranges.range_postings.first_mut() {
                        *p = u32::MAX;
                        return;
                    }
                }
            }
        }));
    }

    #[test]
    fn validate_rejects_reordered_keys() {
        assert!(corrupt_panics(|set| {
            for shard in &mut set.shards {
                for ranges in shard.arith.iter_mut().flatten() {
                    if ranges.lo_keys.len() >= 2 {
                        ranges.lo_keys.swap(0, 1);
                        return;
                    }
                }
            }
        }));
    }

    #[test]
    fn validate_rejects_tampered_id_table() {
        assert!(corrupt_panics(|set| {
            if set.ids.len() >= 2 {
                set.ids.swap(0, 1);
            }
        }));
    }
}
