//! Shard-per-core matching: a [`BrokerSummary`] partitioned by dense-id
//! range behind lock-free snapshot reads.
//!
//! [`ShardedSummary`] keeps the canonical, wire-faithful summary (the
//! *flat* [`BrokerSummary`]) behind a writer mutex and publishes a
//! **derived** [`ShardSet`] through a [`SnapshotCell`]: `subscribe` /
//! `unsubscribe` / `merge` mutate the flat summary, re-derive the shard
//! partition off to the side, and flip it in with one pointer swap —
//! matching never blocks, and matching threads never block a writer.
//!
//! # Shards are representation-free derived state
//!
//! Shard `k` owns the contiguous dense-id range `bounds[k] ..
//! bounds[k+1]` (word-aligned so per-shard match bitmaps merge
//! word-wise). Its rows are the *flat* summary's rows with posting
//! lists restricted to the shard's range and rebased to shard-local
//! ids. Because SACS row formation depends on insertion order (covering
//! and absorption), shards are **never** built by re-inserting
//! subscriptions — that could place an id under a different covering
//! pattern than the flat build and change the candidate set. Splitting
//! the flat rows instead guarantees, row by row:
//!
//! ```text
//! matched(shard k) == matched(flat) ∩ [bounds[k], bounds[k+1])
//! ```
//!
//! so the union over shards equals the flat kernel's output *exactly*
//! (same ids, same false positives), and the wire format and digest are
//! untouched — the codec encodes the flat summary, and a decoder
//! rebuilds the partition from it, exactly like the intern table.
//!
//! # Per-shard kernel layout
//!
//! Each shard carries a compiled [`MatchPlan`] (see [`crate::plan`]):
//! the disjoint sorted AACS sub-ranges as two flat `u64` key arrays
//! (struct-of-arrays, branchless lower-bound search, containment as two
//! unsigned compares with no `Interval` enum dispatch), AACS_E values
//! as a sorted key array, and every posting list — AACS, AACS_E and
//! SACS — laid back to back in one dense-u32 arena with CSR offsets.
//! Plans are compiled once per shard at snapshot-flip time, so the
//! publish path always probes a frozen plan; retired plans leave with
//! their [`ShardSet`] through the snapshot epoch machinery.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use subsum_telemetry::Count;
use subsum_types::{Event, Schema, Subscription, SubscriptionId};

use crate::idlist::{DenseId, IdList, SubIdList};
use crate::plan::{lower_key, num_key, upper_key, MatchPlan};
use crate::snapshot::{SnapshotCell, SnapshotReader};
use crate::summary::{BrokerSummary, MatchOutcome, MatchStats};
use crate::{PatternSummary, SummaryDigest};

/// Per-shard kernel invocations (the fan-out width of sharded matching).
static CNT_SHARD_FANOUT: Count = Count::new(subsum_telemetry::names::MATCH_SHARD_FANOUT);
/// Nanoseconds spent merging per-shard bitmaps and extracting the
/// sorted output.
static CNT_SHARD_MERGE_NS: Count = Count::new(subsum_telemetry::names::MATCH_SHARD_MERGE_NS);

/// One shard: the flat summary's rows restricted to a contiguous dense
/// range, in shard-local id space, compiled into a frozen probe plan.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    /// First global dense id of the shard (a multiple of 64).
    base: u32,
    /// The compiled columnar plan over this shard's rows.
    plan: MatchPlan,
    /// Per-attribute SACS restrictions (`None` where empty). The plan
    /// borrows candidate selection and the pattern tests from these
    /// summaries; only posting storage is compiled into the arena.
    strings: Vec<Option<PatternSummary>>,
    /// `required[local]` — the flat table's counter thresholds for this
    /// shard's dense slice.
    required: Vec<u32>,
}

impl Shard {
    fn len(&self) -> usize {
        self.required.len()
    }
}

/// A published shard partition: derived state, rebuilt from the flat
/// summary on every mutation and swapped in atomically.
#[derive(Debug, Clone)]
pub(crate) struct ShardSet {
    /// Partition bounds over the global dense space: shard `k` owns
    /// `bounds[k] .. bounds[k+1]`; interior bounds are multiples of 64.
    bounds: Vec<u32>,
    /// The flat intern-table id list (global dense id -> full id).
    ids: SubIdList,
    shards: Vec<Shard>,
}

impl ShardSet {
    /// Derives the partition from the flat rows and compiles one frozen
    /// [`MatchPlan`] per shard — this is the snapshot-flip-time compile:
    /// by the time the set is published through the [`SnapshotCell`],
    /// every plan is immutable and the publish path never compiles.
    fn derive(flat: &BrokerSummary, shard_count: usize) -> ShardSet {
        let n = flat.intern_table().ids_slice().len();
        let bounds = partition_bounds(n, shard_count);
        let shards = bounds
            .windows(2)
            .map(|w| {
                let strings: Vec<Option<PatternSummary>> = flat
                    .string_slots()
                    .iter()
                    .map(|s| s.as_ref().and_then(|s| s.filter_rebase(w[0], w[1])))
                    .collect();
                let plan = MatchPlan::compile(flat.arith_slots(), &strings, w[0], w[1]);
                Shard {
                    base: w[0],
                    plan,
                    strings,
                    required: flat.intern_table().required_slice()[w[0] as usize..w[1] as usize]
                        .to_vec(),
                }
            })
            .collect();
        ShardSet {
            bounds,
            ids: flat.intern_table().ids_slice().to_vec(),
            shards,
        }
    }
}

/// The deterministic partition function: `n` dense ids split into at
/// most `shard_count` contiguous ranges of equal word-aligned size
/// (every interior bound is a multiple of 64, so shard-local bitmap
/// words map to disjoint global words and merge by copy/OR). Returns
/// the `bounds` array, length `shards + 1`.
pub(crate) fn partition_bounds(n: usize, shard_count: usize) -> Vec<u32> {
    let s = shard_count.max(1);
    let chunk = n.div_ceil(s).div_ceil(64).max(1) * 64;
    let mut bounds: Vec<u32> = Vec::with_capacity(s + 1);
    bounds.push(0);
    let mut at = 0usize;
    while at < n {
        at = (at + chunk).min(n);
        bounds.push(at as u32);
    }
    if bounds.len() == 1 {
        // Empty summary: keep one (empty) shard so matching has a
        // well-formed partition to walk.
        bounds.push(0);
    }
    bounds
}

/// Per-shard working memory of the compiled-plan kernel — the packed
/// `(epoch, count)` state array and dedup stamps of
/// [`crate::MatchScratch`], sized to the shard's local dense space.
#[derive(Debug, Clone, Default)]
struct ShardKernel {
    /// Matched wildcard-row position buffer for the string probe.
    rows: IdList,
    /// Packed `(epoch << 16) | count` kernel state per local dense id.
    state: Vec<u64>,
    /// Per-attribute dedup stamps (multi-contributor string rows only).
    seen: Vec<u64>,
    /// Shard-local matched bitmap; cleared during the merge phase.
    words: Vec<u64>,
    token: u64,
}

impl ShardKernel {
    /// Probes one shard's frozen plan with one event, setting bits in
    /// `self.words` (shard-local). Returns the highest local word index
    /// written + 1, or 0 when nothing matched.
    fn run(&mut self, shard: &Shard, event: &Event, stats: &mut MatchStats) -> usize {
        CNT_SHARD_FANOUT.inc();
        let n = shard.len();
        if self.state.len() < n {
            self.state.resize(n, 0);
            self.seen.resize(n, 0);
            self.words.resize(n.div_ceil(64), 0);
        }
        let (lo, hi) = shard.plan.probe_into(
            event,
            &shard.strings,
            &shard.required,
            &mut self.rows,
            &mut self.state,
            &mut self.seen,
            &mut self.words,
            &mut self.token,
            stats,
        );
        if lo <= hi {
            hi + 1
        } else {
            0
        }
    }
}

/// Reusable working memory for [`ShardedSummary::match_event_into`]:
/// one [`ShardKernel`] per shard, the snapshot reader slot, and the
/// outcome buffer. Like [`crate::MatchScratch`], a warm scratch makes
/// the sharded steady-state match loop allocation-free — pinning a
/// snapshot is two atomic stores and a load.
#[derive(Debug, Default)]
pub struct ShardScratch {
    /// Registered lazily against the summary's snapshot cell on first
    /// use (the only allocating step besides kernel growth).
    reader: Option<SnapshotReader<ShardSet>>,
    kernels: Vec<ShardKernel>,
    outcome: MatchOutcome,
}

impl ShardScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        ShardScratch::default()
    }

    /// The outcome of the most recent match served by this scratch.
    pub fn outcome(&self) -> &MatchOutcome {
        &self.outcome
    }
}

/// A [`BrokerSummary`] sharded by dense-id range behind an epoch-stamped
/// snapshot pointer.
///
/// All methods take `&self`: writers serialize on an internal mutex
/// around the canonical flat summary and publish derived [`ShardSet`]
/// versions through a [`SnapshotCell`]; readers pin a snapshot without
/// locking, so a `ShardedSummary` can be shared across a worker pool
/// while subscribe/unsubscribe churn runs concurrently.
///
/// The sharded matcher's `matched` output is **identical** to the flat
/// [`BrokerSummary::match_event_into`] — same candidates, same sorted
/// order (see the module docs for why); work counters differ (per-shard
/// probes are accounted per shard).
#[derive(Debug)]
pub struct ShardedSummary {
    flat: Mutex<BrokerSummary>,
    shard_count: usize,
    cell: Arc<SnapshotCell<ShardSet>>,
}

impl ShardedSummary {
    /// Creates an empty sharded summary over `schema` targeting
    /// `shard_count` shards (small populations may yield fewer, since
    /// shards are word-aligned).
    pub fn new(schema: Schema, shard_count: usize) -> Self {
        ShardedSummary::from_flat(BrokerSummary::new(schema), shard_count)
    }

    /// Shards an existing flat summary (e.g. one rebuilt by a wire
    /// decode — the partition is derived state and never travels).
    pub fn from_flat(flat: BrokerSummary, shard_count: usize) -> Self {
        let set = ShardSet::derive(&flat, shard_count);
        ShardedSummary {
            flat: Mutex::new(flat),
            shard_count,
            cell: Arc::new(SnapshotCell::new(set)),
        }
    }

    /// The configured shard-count target.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    fn lock_flat(&self) -> MutexGuard<'_, BrokerSummary> {
        match self.flat.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Runs `f` over the canonical flat summary (wire encoding, stats,
    /// digests — everything representation-level goes through here).
    pub fn with_flat<R>(&self, f: impl FnOnce(&BrokerSummary) -> R) -> R {
        f(&self.lock_flat())
    }

    /// A clone of the canonical flat summary.
    pub fn to_flat(&self) -> BrokerSummary {
        self.lock_flat().clone()
    }

    /// Consumes the sharded view, returning the canonical flat summary.
    pub fn into_flat(self) -> BrokerSummary {
        self.flat.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    /// The canonical digest — computed on the flat summary, so it is
    /// byte-identical to an unsharded build of the same subscriptions.
    pub fn digest(&self) -> SummaryDigest {
        self.lock_flat().digest()
    }

    /// The number of subscriptions summarized.
    pub fn subscription_count(&self) -> usize {
        self.lock_flat().subscription_count()
    }

    /// Mutates the flat summary under the writer lock, then derives and
    /// publishes a fresh shard partition. Readers keep matching against
    /// the previous version until the pointer flip.
    fn mutate<R>(&self, f: impl FnOnce(&mut BrokerSummary) -> R) -> R {
        let mut flat = self.lock_flat();
        let out = f(&mut flat);
        let set = ShardSet::derive(&flat, self.shard_count);
        self.cell.publish(set);
        out
    }

    /// As [`BrokerSummary::insert`]; concurrent matching is never
    /// stalled.
    pub fn insert(
        &self,
        broker: subsum_types::BrokerId,
        local: subsum_types::LocalSubId,
        sub: &Subscription,
    ) -> SubscriptionId {
        self.mutate(|flat| flat.insert(broker, local, sub))
    }

    /// As [`BrokerSummary::insert_with_id`].
    pub fn insert_with_id(&self, id: SubscriptionId, sub: &Subscription) {
        self.mutate(|flat| flat.insert_with_id(id, sub));
    }

    /// As [`BrokerSummary::remove`].
    pub fn remove(&self, id: SubscriptionId) {
        self.mutate(|flat| flat.remove(id));
    }

    /// As [`BrokerSummary::merge`].
    pub fn merge(&self, other: &BrokerSummary) {
        self.mutate(|flat| flat.merge(other));
    }

    /// Snapshot/reclamation counters of the underlying cell.
    pub fn snapshot_stats(&self) -> crate::snapshot::SnapshotStats {
        self.cell.stats()
    }

    /// Matches one event against the current shard snapshot — the
    /// sharded drop-in for [`BrokerSummary::match_event_into`], with
    /// byte-identical `matched` output.
    ///
    /// Pins the snapshot lock-free, runs the per-shard counter kernels
    /// in ascending shard order, then merges the per-shard bitmaps
    /// word-wise and extracts set bits in ascending global dense order —
    /// which is ascending [`SubscriptionId`] order, so the output is
    /// sorted with no sort. Zero heap allocations at steady state.
    pub fn match_event_into<'s>(
        &self,
        event: &Event,
        scratch: &'s mut ShardScratch,
    ) -> &'s MatchOutcome {
        // A scratch may be re-targeted across summaries (like
        // `MatchScratch` across brokers): drop a reader registered on a
        // different cell, then (re)register — the only non-steady-state
        // step.
        if scratch
            .reader
            .as_ref()
            .is_some_and(|r| !r.reads(&self.cell))
        {
            scratch.reader = None;
        }
        // Destructured so the pin guard borrows only the reader field
        // while the kernels and the outcome stay independently mutable.
        let ShardScratch {
            reader,
            kernels,
            outcome,
        } = scratch;
        let reader = reader.get_or_insert_with(|| self.cell.reader());
        let set = reader.pin();
        let mut stats = MatchStats::default();
        if kernels.len() < set.shards.len() {
            kernels.resize_with(set.shards.len(), ShardKernel::default);
        }
        let mut tops = 0usize;
        for (shard, kernel) in set.shards.iter().zip(kernels.iter_mut()) {
            tops += kernel.run(shard, event, &mut stats);
        }
        // Merge phase: per-shard words map to disjoint global words
        // (bases are multiples of 64), so walking shards in partition
        // order *is* the word-wise merge, feeding the same sorted
        // extraction as the flat kernel.
        let merge_start = Instant::now();
        outcome.matched.clear();
        if tops > 0 {
            for (shard, kernel) in set.shards.iter().zip(kernels.iter_mut()) {
                let base = shard.base;
                for w in 0..kernel.words.len() {
                    let mut bits = kernel.words[w];
                    if bits == 0 {
                        continue;
                    }
                    kernel.words[w] = 0;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let global = base as usize + w * 64 + b;
                        outcome.matched.push(set.ids[global]);
                    }
                }
            }
        }
        CNT_SHARD_MERGE_NS.add(merge_start.elapsed().as_nanos() as u64);
        outcome.stats = stats;
        outcome
    }

    /// Matches a batch of events, fanning the **shards** out across
    /// `workers` threads: worker `j` runs the kernels of shards `j, j +
    /// W, …` for every event, and a final pass merges the per-shard
    /// bitmap words into per-event sorted outputs. All workers read one
    /// pinned snapshot; concurrent publishes are invisible to the batch
    /// and never block it.
    ///
    /// Returns one sorted id list per event, identical to per-event
    /// [`ShardedSummary::match_event_into`] output.
    pub fn match_batch_fanout(&self, events: &[Event], workers: usize) -> Vec<Vec<SubscriptionId>> {
        let mut reader = self.cell.reader();
        let set = reader.pin();
        let shard_count = set.shards.len();
        let w = workers.max(1).min(shard_count.max(1));
        // words[shard][event] — each worker writes only its own shards'
        // rows, so the matrix splits mutably by shard.
        let mut words: Vec<Vec<u64>> = Vec::with_capacity(shard_count);
        for shard in &set.shards {
            words.push(vec![0u64; shard.len().div_ceil(64) * events.len()]);
        }
        {
            let mut slots: Vec<Option<(usize, &Shard, &mut Vec<u64>)>> = words
                .iter_mut()
                .enumerate()
                .map(|(k, buf)| Some((k, &set.shards[k], buf)))
                .collect();
            std::thread::scope(|scope| {
                for j in 0..w {
                    let mut mine: Vec<(usize, &Shard, &mut Vec<u64>)> = Vec::new();
                    for slot in slots.iter_mut().skip(j).step_by(w) {
                        if let Some(item) = slot.take() {
                            mine.push(item);
                        }
                    }
                    scope.spawn(move || {
                        let mut kernel = ShardKernel::default();
                        let mut stats = MatchStats::default();
                        for (_, shard, buf) in mine.iter_mut() {
                            let stride = shard.len().div_ceil(64);
                            for (e, event) in events.iter().enumerate() {
                                let top = kernel.run(shard, event, &mut stats);
                                if top > 0 {
                                    let row = &mut buf[e * stride..e * stride + stride];
                                    for (dst, src) in
                                        row.iter_mut().zip(kernel.words.iter_mut()).take(top)
                                    {
                                        *dst = *src;
                                        *src = 0;
                                    }
                                }
                            }
                        }
                    });
                }
            });
        }
        // Word-wise merge into per-event sorted extractions.
        let merge_start = Instant::now();
        let mut out = Vec::with_capacity(events.len());
        for e in 0..events.len() {
            let mut matched = Vec::new();
            for (k, shard) in set.shards.iter().enumerate() {
                let stride = shard.len().div_ceil(64);
                let row = &words[k][e * stride..(e + 1) * stride];
                for (wi, &bits) in row.iter().enumerate() {
                    let mut bits = bits;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let global = shard.base as usize + wi * 64 + b;
                        matched.push(set.ids[global]);
                    }
                }
            }
            out.push(matched);
        }
        CNT_SHARD_MERGE_NS.add(merge_start.elapsed().as_nanos() as u64);
        out
    }

    /// Deep validation of the published partition against the canonical
    /// flat summary — shard-coherence checks layered on top of
    /// [`BrokerSummary::validate`]. See `validate_set`.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    #[cfg(any(test, debug_assertions))]
    pub fn validate(&self) {
        let flat = self.lock_flat();
        flat.validate();
        let mut reader = self.cell.reader();
        let set = reader.pin();
        validate_set(&flat, &set);
    }
}

impl Clone for ShardedSummary {
    /// Clones the canonical summary and derives a fresh partition (the
    /// snapshot cell and its reader registrations are per-instance).
    fn clone(&self) -> Self {
        ShardedSummary::from_flat(self.to_flat(), self.shard_count)
    }
}

/// Shard-coherence invariants, checked in tests and debug builds:
///
/// * the partition covers `0..n` contiguously with word-aligned
///   interior bounds, and the id table equals the flat intern table;
/// * per shard, `required` mirrors the flat thresholds and every
///   posting is in shard-local range;
/// * per-shard plan keys are sorted with each row's `lo <= hi`, CSR
///   offsets are monotone within the arena, and the whole plan equals a
///   fresh compile of the flat rows restricted to the shard;
/// * splitting loses nothing: for every attribute, the multiset of
///   (row, global id) postings across shards — read back out of the
///   compiled plan banks — equals the flat summary's rows exactly
///   (ranges by bound keys, points by value key, SACS rows by rendered
///   pattern).
///
/// # Panics
///
/// Panics on the first violated invariant.
#[cfg(any(test, debug_assertions))]
pub(crate) fn validate_set(flat: &BrokerSummary, set: &ShardSet) {
    let n = flat.intern_table().ids_slice().len();
    assert_eq!(&set.ids, flat.intern_table().ids_slice(), "shard id table");
    assert!(set.bounds.len() >= 2, "partition has at least one shard");
    assert_eq!(set.bounds[0], 0, "partition starts at 0");
    assert_eq!(
        *set.bounds.last().unwrap_or(&0) as usize,
        n,
        "partition covers the dense space"
    );
    assert_eq!(set.shards.len(), set.bounds.len() - 1, "bounds/shards");
    for w in set.bounds.windows(2) {
        assert!(w[0] <= w[1], "bounds monotone");
    }
    for &b in &set.bounds[1..set.bounds.len() - 1] {
        assert_eq!(b % 64, 0, "interior bound word-aligned");
    }
    for (k, shard) in set.shards.iter().enumerate() {
        let (lo, hi) = (set.bounds[k], set.bounds[k + 1]);
        assert_eq!(shard.base, lo, "shard base matches partition");
        assert_eq!(shard.len(), (hi - lo) as usize, "shard length");
        assert_eq!(
            shard.required,
            &flat.intern_table().required_slice()[lo as usize..hi as usize],
            "shard required thresholds"
        );
        for bank in shard.plan.arith.iter().flatten() {
            assert!(
                bank.lo_keys.windows(2).all(|w| w[0] < w[1]),
                "shard lo keys strictly ascending"
            );
            for (i, &lo_k) in bank.lo_keys.iter().enumerate() {
                assert!(lo_k <= bank.hi_keys[i], "row keys ordered");
            }
            assert_csr(
                &bank.range_offsets,
                bank.lo_keys.len(),
                &shard.plan.arena,
                shard.len(),
            );
            assert!(
                bank.point_keys.windows(2).all(|w| w[0] < w[1]),
                "shard point keys strictly ascending"
            );
            assert_csr(
                &bank.point_offsets,
                bank.point_keys.len(),
                &shard.plan.arena,
                shard.len(),
            );
        }
        for sacs in shard.strings.iter().flatten() {
            sacs.validate();
            for (_, ids) in sacs.rows() {
                for &d in ids {
                    assert!((d as usize) < shard.len(), "SACS posting in range");
                }
            }
        }
        // The frozen plan is a pure function of the flat rows restricted
        // to the shard: a fresh compile must reproduce it byte for byte.
        let recompiled = MatchPlan::compile(flat.arith_slots(), &shard.strings, lo, hi);
        assert!(
            shard.plan == recompiled,
            "shard plan out of sync with the flat rows"
        );
    }
    // Nothing lost, nothing invented: shard postings reassemble the
    // flat rows exactly.
    for (attr, slot) in flat.arith_slots().iter().enumerate() {
        let mut flat_rows: Vec<(u64, u64, DenseId)> = Vec::new();
        if let Some(s) = slot {
            for row in s.ranges() {
                for &d in &row.ids {
                    flat_rows.push((
                        lower_key(row.interval.lo()),
                        upper_key(row.interval.hi()),
                        d,
                    ));
                }
            }
            for (v, ids) in s.points() {
                for &d in ids {
                    flat_rows.push((num_key(v), u64::MAX, d));
                }
            }
        }
        let mut shard_rows: Vec<(u64, u64, DenseId)> = Vec::new();
        for shard in &set.shards {
            if let Some(bank) = shard.plan.arith.get(attr).and_then(Option::as_ref) {
                for (i, &lo_k) in bank.lo_keys.iter().enumerate() {
                    let (a, b) = (
                        bank.range_offsets[i] as usize,
                        bank.range_offsets[i + 1] as usize,
                    );
                    for &d in &shard.plan.arena[a..b] {
                        shard_rows.push((lo_k, bank.hi_keys[i], shard.base + d));
                    }
                }
                for (i, &pk) in bank.point_keys.iter().enumerate() {
                    let (a, b) = (
                        bank.point_offsets[i] as usize,
                        bank.point_offsets[i + 1] as usize,
                    );
                    for &d in &shard.plan.arena[a..b] {
                        shard_rows.push((pk, u64::MAX, shard.base + d));
                    }
                }
            }
        }
        flat_rows.sort_unstable();
        shard_rows.sort_unstable();
        assert_eq!(
            flat_rows, shard_rows,
            "AACS postings reassemble (attr {attr})"
        );
    }
    for (attr, slot) in flat.string_slots().iter().enumerate() {
        let mut flat_rows: Vec<(String, DenseId)> = Vec::new();
        if let Some(s) = slot {
            for (pattern, ids) in s.rows() {
                for &d in ids {
                    flat_rows.push((pattern.to_string(), d));
                }
            }
        }
        let mut shard_rows: Vec<(String, DenseId)> = Vec::new();
        for shard in &set.shards {
            if let Some(s) = shard.strings.get(attr).and_then(Option::as_ref) {
                for (pattern, ids) in s.rows() {
                    for &d in ids {
                        shard_rows.push((pattern.to_string(), shard.base + d));
                    }
                }
            }
        }
        flat_rows.sort_unstable();
        shard_rows.sort_unstable();
        assert_eq!(
            flat_rows, shard_rows,
            "SACS postings reassemble (attr {attr})"
        );
    }
}

/// CSR offsets of one plan bank: `rows + 1` long, monotone, pointing
/// into the shared arena, every referenced posting in shard-local
/// range. Offsets are absolute arena positions (banks share one arena),
/// so no leading zero is required.
#[cfg(any(test, debug_assertions))]
fn assert_csr(offsets: &[u32], rows: usize, arena: &[DenseId], local_len: usize) {
    assert_eq!(offsets.len(), rows + 1, "CSR spans the rows");
    assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "CSR monotone");
    assert!(
        *offsets.last().unwrap_or(&0) as usize <= arena.len(),
        "CSR inside the arena"
    );
    for w in offsets.windows(2) {
        for &d in &arena[w[0] as usize..w[1] as usize] {
            assert!((d as usize) < local_len, "posting in shard range");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_types::{stock_schema, BrokerId, LocalSubId, NumOp, StrOp};

    fn population(count: u32) -> (Schema, Vec<(SubscriptionId, Subscription)>) {
        let schema = stock_schema();
        let mut subs = Vec::new();
        for i in 0..count {
            let lo = (i % 40) as f64;
            let mut b = Subscription::builder(&schema)
                .num("price", NumOp::Ge, lo)
                .unwrap()
                .num("price", NumOp::Lt, lo + 17.0)
                .unwrap();
            if i % 3 == 0 {
                let prefix = [b'A' + (i % 26) as u8];
                b = b
                    .str_op(
                        "symbol",
                        StrOp::Prefix,
                        std::str::from_utf8(&prefix).unwrap(),
                    )
                    .unwrap();
            }
            if i % 5 == 0 {
                b = b.num("volume", NumOp::Eq, (i % 9) as f64 * 100.0).unwrap();
            }
            if i % 7 == 0 {
                b = b.str_op("exchange", StrOp::Suffix, "SE").unwrap();
            }
            let sub = b.build().unwrap();
            let id = SubscriptionId::new(BrokerId((i % 4) as u16), LocalSubId(i), sub.attr_mask());
            subs.push((id, sub));
        }
        (schema, subs)
    }

    fn events(schema: &Schema) -> Vec<Event> {
        (0..12u32)
            .map(|k| {
                let symbol = [b'A' + ((k * 3) % 26) as u8];
                Event::builder(schema)
                    .num("price", 3.0 + k as f64 * 4.5)
                    .unwrap()
                    .num("volume", (k % 9) as f64 * 100.0)
                    .unwrap()
                    .str("symbol", String::from_utf8(symbol.to_vec()).unwrap())
                    .unwrap()
                    .str(
                        "exchange",
                        if k % 2 == 0 { "NYSE" } else { "LSE" }.to_string(),
                    )
                    .unwrap()
                    .build()
            })
            .collect()
    }

    #[test]
    fn partition_bounds_are_word_aligned_and_cover() {
        for (count, s) in [
            (0usize, 4usize),
            (1, 1),
            (63, 8),
            (64, 2),
            (1000, 3),
            (8000, 8),
        ] {
            let bounds = partition_bounds(count, s);
            assert!(bounds.len() >= 2);
            assert!(bounds.len() - 1 <= s.max(1));
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap() as usize, count);
            for b in &bounds[1..bounds.len() - 1] {
                assert_eq!(b % 64, 0, "interior bound aligned ({count}, {s})");
            }
        }
    }

    #[test]
    fn sharded_matches_flat_exactly() {
        let (schema, subs) = population(300);
        let mut flat = BrokerSummary::new(schema.clone());
        for (id, sub) in &subs {
            flat.insert_with_id(*id, sub);
        }
        let mut flat_scratch = crate::MatchScratch::new();
        for shards in [1usize, 2, 3, 8] {
            let sharded = ShardedSummary::from_flat(flat.clone(), shards);
            sharded.validate();
            let mut scratch = ShardScratch::new();
            for event in events(&schema) {
                let expect = flat
                    .match_event_into(&event, &mut flat_scratch)
                    .matched
                    .clone();
                let got = sharded.match_event_into(&event, &mut scratch);
                assert_eq!(got.matched, expect, "shards={shards}");
            }
        }
    }

    #[test]
    fn fanout_batch_matches_per_event_path() {
        let (schema, subs) = population(257);
        let sharded = ShardedSummary::new(schema.clone(), 4);
        for (id, sub) in &subs {
            sharded.insert_with_id(*id, sub);
        }
        let events = events(&schema);
        let mut scratch = ShardScratch::new();
        for workers in [1usize, 2, 4, 8] {
            let batch = sharded.match_batch_fanout(&events, workers);
            assert_eq!(batch.len(), events.len());
            for (event, got) in events.iter().zip(&batch) {
                let expect = &sharded.match_event_into(event, &mut scratch).matched;
                assert_eq!(got, expect, "workers={workers}");
            }
        }
    }

    #[test]
    fn mutation_republishes_and_digest_tracks_flat() {
        let (schema, subs) = population(100);
        let sharded = ShardedSummary::new(schema.clone(), 3);
        let mut flat = BrokerSummary::new(schema.clone());
        for (id, sub) in &subs {
            sharded.insert_with_id(*id, sub);
            flat.insert_with_id(*id, sub);
        }
        assert_eq!(sharded.digest(), flat.digest());
        assert_eq!(sharded.snapshot_stats().flips, subs.len() as u64);
        sharded.validate();
        // Remove half, still coherent and equal to the flat build.
        for (id, _) in subs.iter().step_by(2) {
            sharded.remove(*id);
            flat.remove(*id);
        }
        assert_eq!(sharded.digest(), flat.digest());
        sharded.validate();
        let mut scratch = ShardScratch::new();
        let mut flat_scratch = crate::MatchScratch::new();
        for event in events(&schema) {
            assert_eq!(
                sharded.match_event_into(&event, &mut scratch).matched,
                flat.match_event_into(&event, &mut flat_scratch).matched
            );
        }
    }

    #[test]
    fn merge_through_sharded_equals_flat_merge() {
        let (schema, subs) = population(120);
        let mut left = BrokerSummary::new(schema.clone());
        let mut right = BrokerSummary::new(schema.clone());
        for (i, (id, sub)) in subs.iter().enumerate() {
            if i % 2 == 0 {
                left.insert_with_id(*id, sub);
            } else {
                right.insert_with_id(*id, sub);
            }
        }
        let sharded = ShardedSummary::from_flat(left.clone(), 3);
        sharded.merge(&right);
        left.merge(&right);
        assert_eq!(sharded.digest(), left.digest());
        sharded.validate();
        let mut scratch = ShardScratch::new();
        let mut flat_scratch = crate::MatchScratch::new();
        for event in events(&schema) {
            assert_eq!(
                sharded.match_event_into(&event, &mut scratch).matched,
                left.match_event_into(&event, &mut flat_scratch).matched
            );
        }
    }

    #[test]
    fn scratch_retargets_across_summaries() {
        let (schema, subs) = population(80);
        let a = ShardedSummary::new(schema.clone(), 2);
        let b = ShardedSummary::new(schema.clone(), 5);
        for (id, sub) in &subs {
            a.insert_with_id(*id, sub);
            b.insert_with_id(*id, sub);
        }
        let mut scratch = ShardScratch::new();
        for event in events(&schema) {
            let got_a = a.match_event_into(&event, &mut scratch).matched.clone();
            let got_b = b.match_event_into(&event, &mut scratch).matched.clone();
            assert_eq!(got_a, got_b);
        }
    }

    #[test]
    fn empty_summary_matches_nothing() {
        let schema = stock_schema();
        let sharded = ShardedSummary::new(schema.clone(), 4);
        let mut scratch = ShardScratch::new();
        for event in events(&schema) {
            assert!(sharded
                .match_event_into(&event, &mut scratch)
                .matched
                .is_empty());
        }
        sharded.validate();
    }

    // ---- negative corruption tests: validate_set must catch every
    // ---- class of shard-coherence violation.

    fn corrupt_panics(corrupt: impl Fn(&mut ShardSet) + std::panic::UnwindSafe) -> bool {
        let (_, subs) = population(200);
        let mut flat = BrokerSummary::new(stock_schema());
        for (id, sub) in &subs {
            flat.insert_with_id(*id, sub);
        }
        let mut set = ShardSet::derive(&flat, 3);
        corrupt(&mut set);
        std::panic::catch_unwind(move || validate_set(&flat, &set)).is_err()
    }

    #[test]
    fn validate_accepts_derived_set() {
        assert!(!corrupt_panics(|_| ()));
    }

    #[test]
    fn validate_rejects_misaligned_bound() {
        assert!(corrupt_panics(|set| {
            // Move an interior bound off word alignment.
            let mid = set.bounds.len() / 2;
            set.bounds[mid] += 1;
        }));
    }

    #[test]
    fn validate_rejects_dropped_posting() {
        assert!(corrupt_panics(|set| {
            for shard in &mut set.shards {
                if shard.plan.arena.pop().is_some() {
                    return;
                }
            }
        }));
    }

    #[test]
    fn validate_rejects_wrong_required_threshold() {
        assert!(corrupt_panics(|set| {
            if let Some(shard) = set.shards.first_mut() {
                if let Some(r) = shard.required.first_mut() {
                    *r += 1;
                }
            }
        }));
    }

    #[test]
    fn validate_rejects_out_of_range_posting() {
        assert!(corrupt_panics(|set| {
            for shard in &mut set.shards {
                if let Some(p) = shard.plan.arena.first_mut() {
                    *p = u32::MAX;
                    return;
                }
            }
        }));
    }

    #[test]
    fn validate_rejects_reordered_keys() {
        assert!(corrupt_panics(|set| {
            for shard in &mut set.shards {
                for bank in shard.plan.arith.iter_mut().flatten() {
                    if bank.lo_keys.len() >= 2 {
                        bank.lo_keys.swap(0, 1);
                        return;
                    }
                }
            }
        }));
    }

    #[test]
    fn validate_rejects_tampered_id_table() {
        assert!(corrupt_panics(|set| {
            if set.ids.len() >= 2 {
                set.ids.swap(0, 1);
            }
        }));
    }
}
