//! AACS — Arithmetic Attribute Constraint Summaries (paper §3.1, Fig. 4).
//!
//! For each arithmetic attribute, a broker maintains two structures:
//!
//! * **AACS_SR** — rows of *non-overlapping sub-ranges* of the values
//!   constrained by subscriptions, each row carrying the list of
//!   subscription ids whose constraint is satisfied throughout the row;
//! * **AACS_E** — equality values outside the sub-ranges, again with id
//!   lists per row.
//!
//! This implementation keeps the sub-range partition *exact*: when a new
//! constraint's range partially overlaps existing rows, rows are split so
//! that every row's id list holds precisely the subscriptions satisfied on
//! the whole row. Arithmetic matching therefore introduces no false
//! positives (string SACS summarization is the lossy part; see
//! [`sacs`](crate::sacs)).
//!
//! Posting lists hold **dense ids** — `u32` indices into the owning
//! [`BrokerSummary`](crate::BrokerSummary)'s intern table — so a row is a
//! flat 4-byte sorted array rather than a vector of multi-word id
//! structs. A standalone `RangeSummary` simply interprets ids as opaque
//! ordered integers; callers that combine summaries must guarantee a
//! shared dense space (the broker summary does, via its intern table).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use subsum_types::{Interval, IntervalSet, Num};

use crate::idlist::{idlist_insert, idlist_merge, idlist_remap, idlist_remove_remap};
pub use crate::idlist::{DenseId, IdList};
use crate::sacs::QueryCost;

/// One sub-range row of AACS_SR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeRow {
    /// The non-overlapping sub-range this row represents.
    pub interval: Interval,
    /// Subscriptions whose constraint is satisfied by every value in the
    /// sub-range (dense ids, sorted).
    pub ids: IdList,
}

/// The arithmetic constraint summary for a single attribute.
///
/// # Example
///
/// ```
/// use subsum_core::RangeSummary;
/// use subsum_types::{Interval, Num};
/// # fn n(v: f64) -> Num { Num::new(v).unwrap() }
/// let mut aacs = RangeSummary::new();
/// // S1: 8.30 < price < 8.70 (Fig. 4); dense id 1.
/// aacs.insert_interval(Interval::open(n(8.30), n(8.70)), 1);
/// // S2: price = 8.20; dense id 2.
/// aacs.insert_point(n(8.20), 2);
/// assert_eq!(aacs.query(n(8.40)), vec![1]);
/// assert_eq!(aacs.query(n(8.20)), vec![2]);
/// assert!(aacs.query(n(9.0)).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RangeSummary {
    /// AACS_SR: disjoint, sorted sub-ranges.
    ranges: Vec<RangeRow>,
    /// AACS_E: equality values.
    points: BTreeMap<Num, IdList>,
}

impl RangeSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        RangeSummary::default()
    }

    /// Returns `true` if no constraint has been summarized.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty() && self.points.is_empty()
    }

    /// Number of sub-range rows (`n_sr` in the paper's size equations).
    pub fn range_rows(&self) -> usize {
        self.ranges.len()
    }

    /// Number of equality rows (`n_e` in the paper's size equations).
    pub fn point_rows(&self) -> usize {
        self.points.len()
    }

    /// Total subscription-id list length across all rows (`L_a` in the
    /// paper's size equations).
    pub fn id_list_len(&self) -> usize {
        self.ranges.iter().map(|r| r.ids.len()).sum::<usize>()
            + self.points.values().map(|l| l.len()).sum::<usize>()
    }

    /// The sub-range rows, sorted and disjoint.
    pub fn ranges(&self) -> &[RangeRow] {
        &self.ranges
    }

    /// The equality rows in ascending value order.
    pub fn points(&self) -> impl Iterator<Item = (Num, &IdList)> {
        self.points.iter().map(|(k, v)| (*k, v))
    }

    /// Records that subscription `id` constrains this attribute to `set`
    /// (the normalized interval-set form of its conjunction).
    pub fn insert_set(&mut self, set: &IntervalSet, id: DenseId) {
        for iv in set.iter() {
            self.insert_interval(*iv, id);
        }
    }

    /// Records an equality constraint `attr = v` for subscription `id`
    /// (an AACS_E row).
    pub fn insert_point(&mut self, v: Num, id: DenseId) {
        idlist_insert(self.points.entry(v).or_default(), id);
    }

    /// As [`RangeSummary::insert_point`] with several ids at once (used
    /// when decoding and merging summaries).
    pub fn insert_point_ids(&mut self, v: Num, ids: &[DenseId]) {
        if ids.is_empty() {
            return;
        }
        idlist_merge(self.points.entry(v).or_default(), ids);
    }

    /// Records a range constraint for subscription `id`, splitting
    /// existing rows as needed to keep the partition exact. Degenerate
    /// point intervals are routed to AACS_E.
    pub fn insert_interval(&mut self, iv: Interval, id: DenseId) {
        self.insert_interval_ids(iv, &[id]);
    }

    /// As [`RangeSummary::insert_interval`] but attaching several ids at
    /// once (used when merging summaries).
    pub fn insert_interval_ids(&mut self, iv: Interval, ids: &[DenseId]) {
        if iv.is_empty() || ids.is_empty() {
            return;
        }
        if let Some(p) = iv.as_point() {
            let list = self.points.entry(p).or_default();
            idlist_merge(list, ids);
            return;
        }
        let mut result: Vec<RangeRow> = Vec::with_capacity(self.ranges.len() + 2);
        // Degenerate fragments produced by splitting are routed to
        // AACS_E so the partition holds only proper ranges (keeps the
        // structure canonical for wire round-trips).
        let mut degenerate: Vec<(Num, IdList)> = Vec::new();
        let mut route = |interval: Interval, ids: IdList, result: &mut Vec<RangeRow>| {
            if let Some(p) = interval.as_point() {
                degenerate.push((p, ids));
            } else {
                result.push(RangeRow { interval, ids });
            }
        };
        // Parts of `iv` not covered by any existing row.
        let mut remaining = IntervalSet::from_interval(iv);
        for row in self.ranges.drain(..) {
            let inter = row.interval.intersect(&iv);
            if inter.is_empty() {
                result.push(row);
                continue;
            }
            // Row fragments outside `iv` keep the old id list.
            for part in row.interval.subtract(&iv) {
                route(part, row.ids.clone(), &mut result);
            }
            // The overlap gains the new ids.
            let mut merged = row.ids;
            idlist_merge(&mut merged, ids);
            route(inter, merged, &mut result);
            remaining = remaining.intersect(&interval_complement(&inter));
        }
        for part in remaining.iter() {
            route(*part, ids.to_vec(), &mut result);
        }
        result.sort_by(|a, b| cmp_lo(&a.interval, &b.interval));
        self.ranges = result;
        self.coalesce();
        for (p, ids) in degenerate {
            idlist_merge(self.points.entry(p).or_default(), &ids);
        }
    }

    /// Merges adjacent rows with identical id lists back into one row
    /// (keeps `n_sr` minimal after splits and removals).
    fn coalesce(&mut self) {
        let mut out: Vec<RangeRow> = Vec::with_capacity(self.ranges.len());
        for row in self.ranges.drain(..) {
            match out.last_mut() {
                Some(last) if last.ids == row.ids => {
                    let union = IntervalSet::from_interval(last.interval)
                        .union(&IntervalSet::from_interval(row.interval));
                    let mut parts = union.iter();
                    if let (Some(&merged), None) = (parts.next(), parts.next()) {
                        last.interval = merged;
                        continue;
                    }
                    out.push(row);
                }
                _ => out.push(row),
            }
        }
        self.ranges = out;
    }

    /// All subscription ids whose constraint on this attribute is
    /// satisfied by the value `v` — the `Check_for_a_value_match
    /// (type arithmetic)` procedure of §3.3: scan the sub-ranges first,
    /// then the equality values.
    pub fn query(&self, v: Num) -> IdList {
        let mut out = IdList::new();
        self.query_into(v, &mut out);
        out
    }

    /// As [`RangeSummary::query`], appending into a caller buffer (hot
    /// path for the matcher).
    ///
    /// Returns the honest probe cost for the §5.2.4 accounting, in the
    /// same [`QueryCost`] shape the SACS index reports: `rows_touched`
    /// counts the `⌈log₂ n_sr⌉ + 1` comparisons of the binary search over
    /// the sub-range partition plus one equality-map probe when AACS_E is
    /// non-empty; `rows_pruned` counts the rows a naive linear scan would
    /// have visited but the searches skipped.
    pub fn query_into(&self, v: Num, out: &mut IdList) -> QueryCost {
        let mut cost = QueryCost::default();
        if !self.ranges.is_empty() {
            // Binary search over the disjoint sorted rows.
            let probes = (usize::BITS - self.ranges.len().leading_zeros()) as usize;
            cost.rows_touched += probes;
            cost.rows_pruned += self.ranges.len().saturating_sub(probes);
            let idx = self
                .ranges
                .partition_point(|row| upper_below(&row.interval, v));
            if let Some(row) = self.ranges.get(idx) {
                if row.interval.contains(v) {
                    out.extend_from_slice(&row.ids);
                }
            }
        }
        if !self.points.is_empty() {
            cost.rows_touched += 1;
            cost.rows_pruned += self.points.len() - 1;
            if let Some(list) = self.points.get(&v) {
                out.extend_from_slice(list);
            }
        }
        cost
    }

    /// Removes every occurrence of `id`, dropping empty rows. The dense
    /// space is left unchanged — use [`RangeSummary::remove_remap`] when
    /// the intern table slot itself is being vacated.
    pub fn remove(&mut self, id: DenseId) {
        for row in &mut self.ranges {
            if let Ok(pos) = row.ids.binary_search(&id) {
                row.ids.remove(pos);
            }
        }
        self.ranges.retain(|r| !r.ids.is_empty());
        self.coalesce();
        self.points.retain(|_, list| {
            if let Ok(pos) = list.binary_search(&id) {
                list.remove(pos);
            }
            !list.is_empty()
        });
    }

    /// Removes `gone` from every posting list and decrements every dense
    /// id above it — one pass over all postings, performed when the
    /// owning summary drops slot `gone` from its intern table.
    pub(crate) fn remove_remap(&mut self, gone: DenseId) {
        for row in &mut self.ranges {
            idlist_remove_remap(&mut row.ids, gone);
        }
        self.ranges.retain(|r| !r.ids.is_empty());
        self.coalesce();
        self.points.retain(|_, list| {
            idlist_remove_remap(list, gone);
            !list.is_empty()
        });
    }

    /// Applies a strictly monotone dense-id renumbering to every posting
    /// list (intern-table growth or merge translation).
    pub(crate) fn remap_ids(&mut self, map: impl Fn(DenseId) -> DenseId + Copy) {
        for row in &mut self.ranges {
            idlist_remap(&mut row.ids, map);
        }
        for list in self.points.values_mut() {
            idlist_remap(list, map);
        }
    }

    /// Merges another attribute summary into this one (multi-broker
    /// summaries, §4.1: "values for the same numeric attributes are simply
    /// merged"). Both sides must already share one dense id space; the
    /// broker summary guarantees this by translating the incoming
    /// summary's ids through its merged intern table first.
    pub fn merge(&mut self, other: &RangeSummary) {
        for row in &other.ranges {
            self.insert_interval_ids(row.interval, &row.ids);
        }
        for (v, ids) in &other.points {
            let list = self.points.entry(*v).or_default();
            idlist_merge(list, ids);
        }
    }

    /// Iterates over every subscription id mentioned in this summary
    /// (with repetition across rows).
    pub fn all_ids(&self) -> impl Iterator<Item = DenseId> + '_ {
        self.ranges
            .iter()
            .flat_map(|r| r.ids.iter().copied())
            .chain(self.points.values().flat_map(|l| l.iter().copied()))
    }

    /// Checks the deep structural invariants of the summary. Compiled
    /// only for tests and debug builds; the property tests call it after
    /// every insertion, merge, removal and wire round-trip.
    ///
    /// Invariants:
    ///
    /// * AACS_SR rows form a disjoint partition sorted by lower bound
    ///   (§3.1, Fig. 4);
    /// * no row is empty or degenerate — point rows live in AACS_E;
    /// * every id list (rows and equality values) is non-empty, sorted
    ///   and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    #[cfg(any(test, debug_assertions))]
    pub fn validate(&self) {
        use crate::idlist::validate_idlist;
        for pair in self.ranges.windows(2) {
            assert!(
                cmp_lo(&pair[0].interval, &pair[1].interval) == std::cmp::Ordering::Less,
                "AACS_SR rows out of order: {} then {}",
                pair[0].interval,
                pair[1].interval
            );
            assert!(
                pair[0].interval.intersect(&pair[1].interval).is_empty(),
                "AACS_SR rows overlap: {} and {}",
                pair[0].interval,
                pair[1].interval
            );
        }
        for row in &self.ranges {
            assert!(!row.interval.is_empty(), "empty AACS_SR row interval");
            assert!(
                row.interval.as_point().is_none(),
                "degenerate AACS_SR row {} belongs in AACS_E",
                row.interval
            );
            assert!(
                !row.ids.is_empty(),
                "AACS_SR row {} has no ids",
                row.interval
            );
            validate_idlist(&row.ids);
        }
        for (v, ids) in &self.points {
            assert!(!ids.is_empty(), "AACS_E row {v} has no ids");
            validate_idlist(ids);
        }
        // Per-id range/point disjointness: an id never carries both a
        // sub-range row containing a value and an equality row at that
        // value. IntervalSet normalization guarantees this at insert
        // time (a point adjacent to a range unions into it); the
        // compiled plan's probe relies on it to skip per-attribute
        // dedup on arithmetic banks.
        for (v, ids) in &self.points {
            let idx = self
                .ranges
                .partition_point(|row| upper_below(&row.interval, *v));
            let Some(row) = self.ranges.get(idx) else {
                continue;
            };
            if !row.interval.contains(*v) {
                continue;
            }
            let (mut i, mut j) = (0, 0);
            while i < ids.len() && j < row.ids.len() {
                match ids[i].cmp(&row.ids[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => panic!(
                        "dense id {} appears in AACS_E {v} and the covering AACS_SR row {}",
                        ids[i], row.interval
                    ),
                }
            }
        }
    }
}

/// `true` if the interval lies entirely below `v`.
fn upper_below(iv: &Interval, v: Num) -> bool {
    match iv.hi() {
        subsum_types::UpperBound::PosInf => false,
        subsum_types::UpperBound::Incl(b) => b < v,
        subsum_types::UpperBound::Excl(b) => b <= v,
    }
}

/// The complement of an interval as an interval set.
fn interval_complement(iv: &Interval) -> IntervalSet {
    let mut parts = Vec::with_capacity(2);
    for p in Interval::ALL.subtract(iv) {
        parts.push(p);
    }
    parts.into_iter().fold(IntervalSet::empty(), |acc, p| {
        acc.union(&IntervalSet::from_interval(p))
    })
}

fn cmp_lo(a: &Interval, b: &Interval) -> std::cmp::Ordering {
    // Disjoint intervals order by any interior point; compare by lower
    // bound key (NegInf first, then value, exclusive after inclusive).
    fn key(iv: &Interval) -> (bool, Option<(Num, u8)>) {
        match iv.lo() {
            subsum_types::LowerBound::NegInf => (false, None),
            subsum_types::LowerBound::Incl(v) => (true, Some((v, 0))),
            subsum_types::LowerBound::Excl(v) => (true, Some((v, 1))),
        }
    }
    key(a).cmp(&key(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: f64) -> Num {
        Num::new(v).unwrap()
    }

    /// Standalone-structure tests use small integers as dense ids
    /// directly; the intern-table mapping is the broker summary's job.
    fn id(k: u32) -> DenseId {
        k
    }

    #[test]
    fn paper_fig4_example() {
        let mut aacs = RangeSummary::new();
        aacs.insert_interval(Interval::open(n(8.30), n(8.70)), id(1));
        aacs.insert_point(n(8.20), id(2));
        assert_eq!(aacs.range_rows(), 1);
        assert_eq!(aacs.point_rows(), 1);
        assert_eq!(aacs.query(n(8.40)), vec![id(1)]);
        assert_eq!(aacs.query(n(8.20)), vec![id(2)]);
        assert!(aacs.query(n(8.30)).is_empty());
        assert!(aacs.query(n(8.70)).is_empty());
    }

    #[test]
    fn overlapping_ranges_split_exactly() {
        let mut aacs = RangeSummary::new();
        aacs.insert_interval(Interval::closed(n(1.0), n(5.0)), id(1));
        aacs.insert_interval(Interval::closed(n(3.0), n(8.0)), id(2));
        assert_eq!(aacs.range_rows(), 3);
        assert_eq!(aacs.query(n(2.0)), vec![id(1)]);
        assert_eq!(aacs.query(n(4.0)), vec![id(1), id(2)]);
        assert_eq!(aacs.query(n(6.0)), vec![id(2)]);
        assert!(aacs.query(n(9.0)).is_empty());
    }

    #[test]
    fn identical_ranges_share_one_row() {
        let mut aacs = RangeSummary::new();
        let iv = Interval::open(n(0.0), n(1.0));
        aacs.insert_interval(iv, id(1));
        aacs.insert_interval(iv, id(2));
        aacs.insert_interval(iv, id(3));
        assert_eq!(aacs.range_rows(), 1);
        assert_eq!(aacs.id_list_len(), 3);
        assert_eq!(aacs.query(n(0.5)), vec![id(1), id(2), id(3)]);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut aacs = RangeSummary::new();
        let iv = Interval::open(n(0.0), n(1.0));
        aacs.insert_interval(iv, id(1));
        aacs.insert_interval(iv, id(1));
        assert_eq!(aacs.id_list_len(), 1);
        aacs.insert_point(n(5.0), id(1));
        aacs.insert_point(n(5.0), id(1));
        assert_eq!(aacs.point_rows(), 1);
        assert_eq!(aacs.query(n(5.0)), vec![id(1)]);
    }

    #[test]
    fn nested_range_splits_into_three() {
        let mut aacs = RangeSummary::new();
        aacs.insert_interval(Interval::closed(n(0.0), n(10.0)), id(1));
        aacs.insert_interval(Interval::closed(n(4.0), n(6.0)), id(2));
        assert_eq!(aacs.range_rows(), 3);
        assert_eq!(aacs.query(n(5.0)), vec![id(1), id(2)]);
        assert_eq!(aacs.query(n(1.0)), vec![id(1)]);
        assert_eq!(aacs.query(n(7.0)), vec![id(1)]);
    }

    #[test]
    fn point_interval_goes_to_aacse() {
        let mut aacs = RangeSummary::new();
        aacs.insert_interval(Interval::closed(n(3.0), n(3.0)), id(1));
        assert_eq!(aacs.range_rows(), 0);
        assert_eq!(aacs.point_rows(), 1);
        assert_eq!(aacs.query(n(3.0)), vec![id(1)]);
    }

    #[test]
    fn interval_set_with_hole() {
        // volume ≠ 130000.
        let mut aacs = RangeSummary::new();
        let set = IntervalSet::all().without_point(n(130000.0));
        aacs.insert_set(&set, id(2));
        assert!(aacs.query(n(130000.0)).is_empty());
        assert_eq!(aacs.query(n(132700.0)), vec![id(2)]);
        assert_eq!(aacs.query(n(0.0)), vec![id(2)]);
    }

    #[test]
    fn removal_drops_rows_and_recoalesces() {
        let mut aacs = RangeSummary::new();
        aacs.insert_interval(Interval::closed(n(0.0), n(10.0)), id(1));
        aacs.insert_interval(Interval::closed(n(4.0), n(6.0)), id(2));
        aacs.insert_point(n(20.0), id(2));
        assert_eq!(aacs.range_rows(), 3);
        aacs.remove(id(2));
        // The three fragments of id(1) coalesce back into one row.
        assert_eq!(aacs.range_rows(), 1);
        assert_eq!(aacs.point_rows(), 0);
        assert_eq!(aacs.query(n(5.0)), vec![id(1)]);
        aacs.remove(id(1));
        assert!(aacs.is_empty());
    }

    #[test]
    fn remove_remap_shifts_survivors() {
        let mut aacs = RangeSummary::new();
        aacs.insert_interval(Interval::closed(n(0.0), n(10.0)), id(1));
        aacs.insert_interval(Interval::closed(n(4.0), n(6.0)), id(2));
        aacs.insert_point(n(20.0), id(3));
        // Vacate slot 2: id 3 becomes id 2, id 1 stays.
        aacs.remove_remap(id(2));
        assert_eq!(aacs.range_rows(), 1);
        assert_eq!(aacs.query(n(5.0)), vec![id(1)]);
        assert_eq!(aacs.query(n(20.0)), vec![id(2)]);
        aacs.validate();
    }

    #[test]
    fn remap_renumbers_all_rows() {
        let mut aacs = RangeSummary::new();
        aacs.insert_interval(Interval::closed(n(0.0), n(5.0)), id(0));
        aacs.insert_point(n(9.0), id(1));
        // Open a hole at slot 1 (a new id interned in the middle).
        aacs.remap_ids(|d| if d >= 1 { d + 1 } else { d });
        assert_eq!(aacs.query(n(1.0)), vec![id(0)]);
        assert_eq!(aacs.query(n(9.0)), vec![id(2)]);
        aacs.validate();
    }

    #[test]
    fn merge_combines_summaries() {
        let mut a = RangeSummary::new();
        a.insert_interval(Interval::closed(n(0.0), n(5.0)), id(1));
        a.insert_point(n(9.0), id(1));
        let mut b = RangeSummary::new();
        b.insert_interval(Interval::closed(n(3.0), n(8.0)), id(2));
        b.insert_point(n(9.0), id(2));
        a.merge(&b);
        assert_eq!(a.query(n(4.0)), vec![id(1), id(2)]);
        assert_eq!(a.query(n(9.0)), vec![id(1), id(2)]);
        assert_eq!(a.query(n(7.0)), vec![id(2)]);
    }

    #[test]
    fn query_with_many_disjoint_rows() {
        let mut aacs = RangeSummary::new();
        for k in 0..100u32 {
            let lo = n(k as f64 * 10.0);
            let hi = n(k as f64 * 10.0 + 5.0);
            aacs.insert_interval(Interval::closed(lo, hi), id(k));
        }
        assert_eq!(aacs.range_rows(), 100);
        assert_eq!(aacs.query(n(503.0)), vec![id(50)]);
        assert!(aacs.query(n(507.0)).is_empty());
        assert_eq!(aacs.query(n(0.0)), vec![id(0)]);
        assert_eq!(aacs.query(n(995.0)), vec![id(99)]);
    }

    #[test]
    fn query_cost_reports_probes_and_pruning() {
        let mut aacs = RangeSummary::new();
        for k in 0..8u32 {
            let lo = n(k as f64 * 10.0);
            let hi = n(k as f64 * 10.0 + 5.0);
            aacs.insert_interval(Interval::closed(lo, hi), id(k));
        }
        aacs.insert_point(n(777.0), id(8));
        let mut out = IdList::new();
        let cost = aacs.query_into(n(42.0), &mut out);
        // ⌈log₂ 8⌉ + 1 = 4 binary-search comparisons plus 1 AACS_E probe.
        assert_eq!(cost.rows_touched, 5);
        // 8 − 4 range rows skipped plus 1 − 1 equality rows skipped.
        assert_eq!(cost.rows_pruned, 4);
        let empty = RangeSummary::new();
        assert_eq!(empty.query_into(n(1.0), &mut out), QueryCost::default());
    }

    #[test]
    fn validate_accepts_every_mutation_path() {
        let mut aacs = RangeSummary::new();
        aacs.validate();
        aacs.insert_interval(Interval::closed(n(0.0), n(10.0)), id(1));
        aacs.insert_interval(Interval::open(n(4.0), n(6.0)), id(2));
        aacs.insert_point(n(20.0), id(3));
        aacs.validate();
        let mut other = RangeSummary::new();
        other.insert_interval(Interval::greater_than(n(8.0)), id(4));
        aacs.merge(&other);
        aacs.validate();
        aacs.remove(id(2));
        aacs.validate();
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn validate_rejects_overlapping_partition() {
        let mut aacs = RangeSummary::new();
        aacs.insert_interval(Interval::closed(n(0.0), n(5.0)), id(1));
        // Corrupt the partition behind the API's back: a second row
        // overlapping the first.
        aacs.ranges.push(RangeRow {
            interval: Interval::closed(n(3.0), n(8.0)),
            ids: vec![id(2)],
        });
        aacs.validate();
    }

    #[test]
    #[should_panic(expected = "not strictly sorted")]
    fn validate_rejects_unsorted_id_list() {
        let mut aacs = RangeSummary::new();
        aacs.insert_interval(Interval::closed(n(0.0), n(5.0)), id(1));
        aacs.ranges[0].ids = vec![id(2), id(1)];
        aacs.validate();
    }

    #[test]
    fn unbounded_ranges() {
        let mut aacs = RangeSummary::new();
        aacs.insert_interval(Interval::greater_than(n(130000.0)), id(2));
        aacs.insert_interval(Interval::less_than(n(8.05)), id(3));
        assert_eq!(aacs.query(n(1e9)), vec![id(2)]);
        assert_eq!(aacs.query(n(-1e9)), vec![id(3)]);
        assert!(aacs.query(n(100.0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "appears in AACS_E")]
    fn validate_rejects_point_inside_same_ids_range() {
        let mut aacs = RangeSummary::new();
        aacs.insert_interval(Interval::closed(n(0.0), n(10.0)), id(1));
        // A point for the same id inside its own range row can never
        // arise from normalized interval sets; injected directly, it
        // must be rejected — the compiled plan's dedup-free arithmetic
        // probe depends on it.
        aacs.points.insert(n(5.0), vec![id(1)]);
        aacs.validate();
    }

    #[test]
    fn churn_leaves_no_empty_rows_and_restores_structure() {
        // Regression guard for remove/remove_remap compaction: churn
        // (insert → remove → re-insert) must leave validate()-clean
        // structures with no empty rows or point entries, and removing
        // everything one side inserted must restore the exact structure
        // (digest equality is asserted at the broker-summary level by
        // the proptests; structural equality here is stronger).
        let build_base = || {
            let mut aacs = RangeSummary::new();
            aacs.insert_interval(Interval::closed(n(0.0), n(10.0)), id(1));
            aacs.insert_interval(Interval::open(n(2.0), n(4.0)), id(3));
            aacs.insert_point(n(20.0), id(5));
            aacs
        };
        let base = build_base();
        let mut churned = build_base();
        // Splitting insert, then full removal of the splitter.
        churned.insert_interval(Interval::closed(n(3.0), n(12.0)), id(2));
        churned.insert_point(n(30.0), id(2));
        churned.validate();
        churned.remove(id(2));
        churned.validate();
        for row in churned.ranges() {
            assert!(!row.ids.is_empty(), "empty row survived churn");
        }
        assert!(
            churned.points().all(|(_, ids)| !ids.is_empty()),
            "empty point entry survived churn"
        );
        assert_eq!(churned, base, "removal did not restore the structure");
        // Re-insert after removal: same structure as inserting fresh.
        churned.insert_interval(Interval::closed(n(3.0), n(12.0)), id(2));
        churned.validate();
        let mut fresh = build_base();
        fresh.insert_interval(Interval::closed(n(3.0), n(12.0)), id(2));
        assert_eq!(churned, fresh, "re-insert after removal diverged");
        // `remove_remap` compacts the same way while shifting the dense
        // space.
        let mut remapped = build_base();
        remapped.insert_interval(Interval::closed(n(3.0), n(12.0)), id(2));
        remapped.remove_remap(id(2));
        remapped.validate();
        for row in remapped.ranges() {
            assert!(!row.ids.is_empty(), "empty row survived remove_remap");
        }
        assert!(remapped.points().all(|(_, ids)| !ids.is_empty()));
    }
}
