//! Per-broker subscription summaries and the Algorithm 1 matcher.
//!
//! The paradigm of the paper (§2.3) is *subscription-summary-centric*:
//! each incoming subscription is dissolved into its attribute–value
//! constraints, which merge into the per-attribute summary structures
//! ([`RangeSummary`] for arithmetic attributes, [`PatternSummary`] for
//! strings). There are no subscription entities inside a summary — only
//! rows with subscription-id lists.
//!
//! Matching an event (Algorithm 1, §3.3) scans the summary structure of
//! each event attribute, collects the satisfied id lists, counts per-id
//! how many *attributes* were satisfied, and reports the ids whose counter
//! equals the number of attributes recorded in their `c3` mask.

use serde::{Deserialize, Serialize};

use subsum_telemetry::{Count, Stage};
use subsum_types::{Event, NormalizedAttr, Schema, Subscription, SubscriptionId};

use crate::aacs::{IdList, RangeSummary};
use crate::idlist::{idlist_insert, idlist_merge};
use crate::sacs::PatternSummary;

/// Telemetry stages of the summary hot paths (recorded only while the
/// global recorder is enabled; see `subsum-telemetry`).
static STAGE_INSERT: Stage = Stage::new(subsum_telemetry::names::CORE_SUMMARY_INSERT);
static STAGE_MERGE: Stage = Stage::new(subsum_telemetry::names::CORE_SUMMARY_MERGE);
static STAGE_MATCH: Stage = Stage::new(subsum_telemetry::names::CORE_SUMMARY_MATCH);
/// Matches served by a warm (previously used) [`MatchScratch`] — i.e.
/// matches that performed no steady-state heap allocation.
static CNT_SCRATCH_REUSE: Count = Count::new(subsum_telemetry::names::MATCH_SCRATCH_REUSE);

/// A complete subscription summary for one (or, after merging, several)
/// broker(s): one AACS per arithmetic attribute and one SACS per string
/// attribute of the schema.
///
/// # Guarantees
///
/// * **No false negatives.** If a subscription inserted into the summary
///   matches an event exactly, [`BrokerSummary::match_event`] reports its
///   id.
/// * **False positives possible.** SACS generalization (`m*t` standing in
///   for `microsoft`) and per-attribute union semantics for multi-pattern
///   conjunctions can report non-matching ids; the owning broker
///   re-verifies against its exact subscription store before notifying
///   consumers.
///
/// # Example
///
/// ```
/// use subsum_core::BrokerSummary;
/// use subsum_types::{stock_schema, Subscription, Event, NumOp, StrOp,
///                    SubscriptionId, BrokerId, LocalSubId};
/// # fn main() -> Result<(), subsum_types::TypeError> {
/// let schema = stock_schema();
/// let sub = Subscription::builder(&schema)
///     .str_op("symbol", StrOp::Eq, "OTE")?
///     .num("price", NumOp::Lt, 8.70)?
///     .num("price", NumOp::Gt, 8.30)?
///     .build()?;
/// let mut summary = BrokerSummary::new(schema.clone());
/// let id = summary.insert(BrokerId(0), LocalSubId(1), &sub);
///
/// let event = Event::builder(&schema)
///     .str("symbol", "OTE")?
///     .num("price", 8.40)?
///     .build();
/// assert_eq!(summary.match_event(&event), vec![id]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrokerSummary {
    schema: Schema,
    /// Indexed by attribute id; `None` for string attributes.
    arith: Vec<Option<RangeSummary>>,
    /// Indexed by attribute id; `None` for arithmetic attributes.
    strings: Vec<Option<PatternSummary>>,
    /// The sorted distinct subscription ids present in any row — a
    /// maintained counter-cache so `subscription_count` is `O(1)` instead
    /// of flattening every id list. Invariant: equals
    /// [`BrokerSummary::subscription_ids`].
    known: IdList,
}

impl BrokerSummary {
    /// Creates an empty summary over `schema`.
    pub fn new(schema: Schema) -> Self {
        let n = schema.len();
        BrokerSummary {
            schema,
            arith: vec![None; n],
            strings: vec![None; n],
            known: IdList::new(),
        }
    }

    /// The schema this summary is defined over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Returns `true` if no subscription has been summarized.
    pub fn is_empty(&self) -> bool {
        self.arith.iter().flatten().all(RangeSummary::is_empty)
            && self.strings.iter().flatten().all(PatternSummary::is_empty)
    }

    /// Dissolves `sub` into the summary under the id
    /// `(broker, local, attr_mask(sub))` and returns that id.
    ///
    /// Arithmetic conjunctions are intersected into interval sets before
    /// insertion (Fig. 4 merges `price < 8.70 ∧ price > 8.30` into one
    /// sub-range); each string constraint inserts its over-approximating
    /// pattern.
    pub fn insert(
        &mut self,
        broker: subsum_types::BrokerId,
        local: subsum_types::LocalSubId,
        sub: &Subscription,
    ) -> SubscriptionId {
        let id = SubscriptionId::new(broker, local, sub.attr_mask());
        self.insert_with_id(id, sub);
        id
    }

    /// Dissolves `sub` under a pre-assigned id. The id's `c3` mask must
    /// equal `sub.attr_mask()` for the match counters to be meaningful.
    pub fn insert_with_id(&mut self, id: SubscriptionId, sub: &Subscription) {
        let _span = STAGE_INSERT.start();
        debug_assert_eq!(id.mask, sub.attr_mask(), "id mask must match constraints");
        let normalized = sub.normalize();
        let mut touched = false;
        for (attr, na) in normalized.iter() {
            match na {
                NormalizedAttr::Arithmetic(set) => {
                    // An unsatisfiable conjunction (empty set) leaves no
                    // trace: the id's counter can then never reach its
                    // mask count, so the subscription never matches —
                    // exactly the semantics of an unsatisfiable filter.
                    if set.is_empty() {
                        continue;
                    }
                    let slot = self.arith[attr.index()].get_or_insert_with(RangeSummary::new);
                    slot.insert_set(set, id);
                    touched = true;
                }
                NormalizedAttr::String(constraints) => {
                    let slot = self.strings[attr.index()].get_or_insert_with(PatternSummary::new);
                    for c in constraints {
                        // `≠` widens to the universal pattern: sound
                        // over-approximation, re-verified at the home
                        // broker.
                        slot.insert(c.over_approximation(), id);
                        touched = true;
                    }
                }
            }
        }
        // Only ids that left a trace in some row are "known": an
        // everywhere-unsatisfiable subscription is absent from the rows,
        // so it must not be counted either.
        if touched {
            idlist_insert(&mut self.known, id);
        }
    }

    /// Removes a subscription's traces from every attribute structure.
    ///
    /// SACS rows keep their (possibly generalized) patterns; summaries
    /// only ever become *more* precise again through
    /// [`BrokerSummary::rebuild`].
    pub fn remove(&mut self, id: SubscriptionId) {
        for attr in id.mask.iter() {
            if let Some(Some(s)) = self.arith.get_mut(attr.index()) {
                s.remove(id);
            }
            if let Some(Some(s)) = self.strings.get_mut(attr.index()) {
                s.remove(id);
            }
        }
        if let Ok(pos) = self.known.binary_search(&id) {
            self.known.remove(pos);
        }
    }

    /// Reconstructs a summary from an exact subscription store, shedding
    /// generalizations left behind by removals (maintenance, §3).
    pub fn rebuild<'a>(
        schema: Schema,
        subs: impl IntoIterator<Item = (SubscriptionId, &'a Subscription)>,
    ) -> Self {
        let mut summary = BrokerSummary::new(schema);
        for (id, sub) in subs {
            summary.insert_with_id(id, sub);
        }
        summary
    }

    /// Merges another broker's summary into this one (multi-broker
    /// summaries, §4.1): per-attribute structures merge by union.
    ///
    /// # Panics
    ///
    /// Panics if the schemata differ; brokers of one system share the
    /// schema by assumption (§3).
    pub fn merge(&mut self, other: &BrokerSummary) {
        let _span = STAGE_MERGE.start();
        assert!(
            self.schema.is_compatible(&other.schema),
            "cannot merge summaries over different schemata"
        );
        for (idx, slot) in other.arith.iter().enumerate() {
            if let Some(theirs) = slot {
                self.arith[idx]
                    .get_or_insert_with(RangeSummary::new)
                    .merge(theirs);
            }
        }
        for (idx, slot) in other.strings.iter().enumerate() {
            if let Some(theirs) = slot {
                self.strings[idx]
                    .get_or_insert_with(PatternSummary::new)
                    .merge(theirs);
            }
        }
        idlist_merge(&mut self.known, &other.known);
    }

    /// Inserts a raw AACS sub-range row (decoder and merge internals).
    pub(crate) fn insert_arith_row(
        &mut self,
        attr: subsum_types::AttrId,
        iv: subsum_types::Interval,
        ids: &[SubscriptionId],
    ) {
        if iv.is_empty() || ids.is_empty() {
            return;
        }
        self.arith[attr.index()]
            .get_or_insert_with(RangeSummary::new)
            .insert_interval_ids(iv, ids);
        idlist_merge(&mut self.known, ids);
    }

    /// Inserts a raw AACS equality row (decoder internals).
    pub(crate) fn insert_arith_point_row(
        &mut self,
        attr: subsum_types::AttrId,
        v: subsum_types::Num,
        ids: &[SubscriptionId],
    ) {
        if ids.is_empty() {
            return;
        }
        self.arith[attr.index()]
            .get_or_insert_with(RangeSummary::new)
            .insert_point_ids(v, ids);
        idlist_merge(&mut self.known, ids);
    }

    /// Inserts a raw SACS row (decoder internals).
    pub(crate) fn insert_string_row(
        &mut self,
        attr: subsum_types::AttrId,
        pattern: subsum_types::Pattern,
        ids: &[SubscriptionId],
    ) {
        if ids.is_empty() {
            return;
        }
        self.strings[attr.index()]
            .get_or_insert_with(PatternSummary::new)
            .insert_ids(pattern, ids);
        idlist_merge(&mut self.known, ids);
    }

    /// The AACS for an attribute, if any constraint was recorded.
    pub fn arith_summary(&self, attr: subsum_types::AttrId) -> Option<&RangeSummary> {
        self.arith.get(attr.index())?.as_ref()
    }

    /// The SACS for an attribute, if any constraint was recorded.
    pub fn string_summary(&self, attr: subsum_types::AttrId) -> Option<&PatternSummary> {
        self.strings.get(attr.index())?.as_ref()
    }

    /// Matches an event against the summary — Algorithm 1 of §3.3.
    ///
    /// Returns the ids of all subscriptions whose every constrained
    /// attribute is present in the event and satisfied by the summary
    /// structures (a superset of the exact matches; no false negatives).
    pub fn match_event(&self, event: &Event) -> Vec<SubscriptionId> {
        self.match_event_with_stats(event).matched
    }

    /// As [`BrokerSummary::match_event`], also reporting work counters
    /// for the computational-cost experiments (§5.2.4).
    ///
    /// Thin wrapper over [`BrokerSummary::match_event_into`] with a
    /// one-shot scratch; hot paths should hold a [`MatchScratch`] and
    /// call `match_event_into` directly.
    pub fn match_event_with_stats(&self, event: &Event) -> MatchOutcome {
        let mut scratch = MatchScratch::new();
        self.match_event_into(event, &mut scratch);
        scratch.outcome
    }

    /// Matches an event against the summary using caller-owned scratch
    /// buffers — the allocation-free hot path of Algorithm 1.
    ///
    /// The per-id counters of Algorithm 1 are realized by sorting the
    /// concatenation of the per-attribute id sets and counting run
    /// lengths — `O(P log P)` in the `P` collected ids, with far better
    /// constants than hashing each id. All working memory (the collected
    /// ids, the per-attribute set, the matched output) lives in
    /// `scratch`, so once the buffers have grown to the workload's
    /// high-water mark the matcher performs **zero heap allocations**
    /// (`sort_unstable` is in-place pdqsort; the per-attribute queries
    /// append into the scratch buffers).
    ///
    /// The returned reference borrows `scratch`; the outcome stays
    /// readable until the next `match_event_into` call with the same
    /// scratch.
    pub fn match_event_into<'s>(
        &self,
        event: &Event,
        scratch: &'s mut MatchScratch,
    ) -> &'s MatchOutcome {
        let _span = STAGE_MATCH.start();
        let MatchScratch {
            collected,
            per_attr,
            outcome,
            used,
        } = scratch;
        if *used {
            CNT_SCRATCH_REUSE.inc();
        }
        *used = true;
        collected.clear();
        outcome.matched.clear();
        let mut stats = MatchStats::default();

        // Step 1: per event attribute, collect satisfied id lists.
        for (attr, value) in event.iter() {
            per_attr.clear();
            // Attribute kinds partition into arithmetic and string, so a
            // plain branch covers them without a panicking fallback arm.
            if self.schema.kind(attr).is_arithmetic() {
                if let Some(s) = self.arith_summary(attr) {
                    if let Some(v) = value.as_num() {
                        stats.rows_scanned += s.query_into(v, per_attr);
                    }
                }
            } else if let Some(s) = self.string_summary(attr) {
                if let Some(v) = value.as_str() {
                    let cost = s.query_into(v, per_attr);
                    stats.rows_scanned += cost.rows_touched;
                    stats.rows_pruned += cost.rows_pruned;
                }
            }
            // Count each subscription once per *attribute* even when it
            // holds several satisfied constraints on it.
            per_attr.sort_unstable();
            per_attr.dedup();
            stats.ids_collected += per_attr.len();
            collected.extend_from_slice(per_attr);
        }

        // Step 2: a subscription matches when its counter equals the
        // number of attributes in its c3 mask. Equal ids are adjacent
        // after sorting; count run lengths.
        collected.sort_unstable();
        let mut i = 0;
        while i < collected.len() {
            let id = collected[i];
            let mut j = i + 1;
            while j < collected.len() && collected[j] == id {
                j += 1;
            }
            stats.candidates += 1;
            if (j - i) as u32 == id.mask.count() {
                outcome.matched.push(id);
            }
            i = j;
        }
        outcome.stats = stats;
        outcome
    }

    /// Reference implementation of Algorithm 1 as flat scans over every
    /// summary row, bypassing the SACS pattern index. Retained for
    /// differential testing and the benchmark's before/after comparison;
    /// `matched` equals [`BrokerSummary::match_event`] exactly (same
    /// sorted order).
    pub fn match_event_scan(&self, event: &Event) -> MatchOutcome {
        let mut collected = IdList::new();
        let mut per_attr = IdList::new();
        let mut stats = MatchStats::default();
        for (attr, value) in event.iter() {
            per_attr.clear();
            if self.schema.kind(attr).is_arithmetic() {
                if let Some(s) = self.arith_summary(attr) {
                    if let Some(v) = value.as_num() {
                        stats.rows_scanned += s.query_into(v, &mut per_attr);
                    }
                }
            } else if let Some(s) = self.string_summary(attr) {
                if let Some(v) = value.as_str() {
                    s.query_scan_into(v, &mut per_attr);
                    stats.rows_scanned += s.row_count();
                }
            }
            per_attr.sort_unstable();
            per_attr.dedup();
            stats.ids_collected += per_attr.len();
            collected.extend_from_slice(&per_attr);
        }
        collected.sort_unstable();
        let mut matched: Vec<SubscriptionId> = Vec::new();
        let mut i = 0;
        while i < collected.len() {
            let id = collected[i];
            let mut j = i + 1;
            while j < collected.len() && collected[j] == id {
                j += 1;
            }
            stats.candidates += 1;
            if (j - i) as u32 == id.mask.count() {
                matched.push(id);
            }
            i = j;
        }
        MatchOutcome { matched, stats }
    }

    /// The distinct subscription ids present anywhere in the summary,
    /// sorted — one flat pass over the id lists, no per-structure
    /// temporaries.
    pub fn subscription_ids(&self) -> Vec<SubscriptionId> {
        let mut ids: Vec<SubscriptionId> = self
            .arith
            .iter()
            .flatten()
            .flat_map(|s| s.all_ids())
            .chain(self.strings.iter().flatten().flat_map(|s| s.all_ids()))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The number of distinct subscriptions summarized — `O(1)`, served
    /// from the maintained id set.
    pub fn subscription_count(&self) -> usize {
        self.known.len()
    }

    /// Checks the deep structural invariants of the whole summary.
    /// Compiled only for tests and debug builds; the property tests call
    /// it after every insertion, merge, removal and wire round-trip.
    ///
    /// Invariants:
    ///
    /// * the per-attribute slot vectors span the schema, and a populated
    ///   slot sits on an attribute of the matching kind;
    /// * every per-attribute structure passes its own
    ///   [`RangeSummary::validate`] / [`PatternSummary::validate`];
    /// * the maintained `known` id cache equals the sorted distinct ids
    ///   actually present in the rows
    ///   ([`BrokerSummary::subscription_ids`]).
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    #[cfg(any(test, debug_assertions))]
    pub fn validate(&self) {
        assert_eq!(self.arith.len(), self.schema.len(), "AACS slots span the schema");
        assert_eq!(self.strings.len(), self.schema.len(), "SACS slots span the schema");
        for (idx, slot) in self.arith.iter().enumerate() {
            if let Some(s) = slot {
                assert!(
                    self.schema.kind(subsum_types::AttrId(idx as u16)).is_arithmetic(),
                    "AACS slot on non-arithmetic attribute {idx}"
                );
                s.validate();
            }
        }
        for (idx, slot) in self.strings.iter().enumerate() {
            if let Some(s) = slot {
                assert!(
                    !self.schema.kind(subsum_types::AttrId(idx as u16)).is_arithmetic(),
                    "SACS slot on arithmetic attribute {idx}"
                );
                s.validate();
            }
        }
        crate::idlist::validate_idlist(&self.known);
        assert!(
            self.known == self.subscription_ids(),
            "known-id cache out of sync with the summary rows"
        );
    }
}

/// Reusable working memory for [`BrokerSummary::match_event_into`].
///
/// Holds the matcher's collected-id and per-attribute buffers plus the
/// [`MatchOutcome`] it fills; reusing one scratch across events keeps the
/// steady-state match loop free of heap allocations. A scratch is tied to
/// no particular summary and may be reused across brokers.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Concatenated per-attribute id sets (Algorithm 1's multiset).
    collected: IdList,
    /// Per-attribute query buffer, deduplicated before concatenation.
    per_attr: IdList,
    /// The outcome of the most recent match.
    outcome: MatchOutcome,
    /// Whether this scratch has served a match before (drives the
    /// `match.scratch_reuse` telemetry counter).
    used: bool,
}

impl MatchScratch {
    /// Creates an empty scratch. Buffers grow on first use and are then
    /// retained.
    pub fn new() -> Self {
        MatchScratch::default()
    }

    /// The outcome of the most recent [`BrokerSummary::match_event_into`]
    /// served by this scratch.
    pub fn outcome(&self) -> &MatchOutcome {
        &self.outcome
    }
}

impl std::fmt::Display for BrokerSummary {
    /// Renders the summary in the tabular style of the paper's Figs. 4–5:
    /// one AACS block per arithmetic attribute (ranges, then equality
    /// values) and one SACS block per string attribute, each row with its
    /// subscription-id list.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut empty = true;
        for (attr, spec) in self.schema.iter() {
            if spec.kind.is_arithmetic() {
                if let Some(a) = self.arith_summary(attr) {
                    if a.is_empty() {
                        continue;
                    }
                    empty = false;
                    writeln!(f, "AACS for attribute {}", spec.name)?;
                    for row in a.ranges() {
                        write!(f, "  {} ->", row.interval)?;
                        for id in &row.ids {
                            write!(f, " {id}")?;
                        }
                        writeln!(f)?;
                    }
                    for (v, ids) in a.points() {
                        write!(f, "  = {v} ->")?;
                        for id in ids {
                            write!(f, " {id}")?;
                        }
                        writeln!(f)?;
                    }
                }
            } else if let Some(s) = self.string_summary(attr) {
                if s.is_empty() {
                    continue;
                }
                empty = false;
                writeln!(f, "SACS for attribute {}", spec.name)?;
                for (pattern, ids) in s.rows() {
                    write!(f, "  {pattern} ->")?;
                    for id in ids {
                        write!(f, " {id}")?;
                    }
                    writeln!(f)?;
                }
            }
        }
        if empty {
            writeln!(f, "(empty summary)")?;
        }
        Ok(())
    }
}

/// The result of matching one event against a summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchOutcome {
    /// Matched subscription ids, sorted.
    pub matched: Vec<SubscriptionId>,
    /// Work counters for the §5.2.4 computational analysis.
    pub stats: MatchStats,
}

/// Work counters accumulated during one [`BrokerSummary::match_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchStats {
    /// Summary rows actually probed across all event attributes (the T₁
    /// term): binary-search comparisons plus the equality probe for
    /// AACS, literal probe plus index-selected wildcard rows for SACS.
    pub rows_scanned: usize,
    /// SACS wildcard rows the pattern index skipped without testing —
    /// the scan work the pre-index matcher would have performed.
    pub rows_pruned: usize,
    /// Total ids collected from satisfied rows (the P of the T₂ term).
    pub ids_collected: usize,
    /// Distinct candidate subscriptions whose counters were checked.
    pub candidates: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsum_types::{stock_schema, BrokerId, LocalSubId, NumOp, StrOp};

    fn schema() -> Schema {
        stock_schema()
    }

    fn sub1(schema: &Schema) -> Subscription {
        Subscription::builder(schema)
            .str_pattern("exchange", "N*SE")
            .unwrap()
            .str_op("symbol", StrOp::Eq, "OTE")
            .unwrap()
            .num("price", NumOp::Lt, 8.70)
            .unwrap()
            .num("price", NumOp::Gt, 8.30)
            .unwrap()
            .build()
            .unwrap()
    }

    fn sub2(schema: &Schema) -> Subscription {
        Subscription::builder(schema)
            .str_op("symbol", StrOp::Prefix, "OT")
            .unwrap()
            .num("price", NumOp::Eq, 8.20)
            .unwrap()
            .num("volume", NumOp::Gt, 130000.0)
            .unwrap()
            .num("low", NumOp::Lt, 8.05)
            .unwrap()
            .build()
            .unwrap()
    }

    fn fig2_event(schema: &Schema) -> Event {
        Event::builder(schema)
            .str("exchange", "NYSE")
            .unwrap()
            .str("symbol", "OTE")
            .unwrap()
            .date("when", 1057055125)
            .unwrap()
            .num("price", 8.40)
            .unwrap()
            .int("volume", 132700)
            .unwrap()
            .num("high", 8.80)
            .unwrap()
            .num("low", 8.22)
            .unwrap()
            .build()
    }

    #[test]
    fn paper_example1_matching() {
        // §3.3 Example 1: S1 matches the Fig. 2 event; S2's counter (2)
        // falls short of its four attributes.
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        let id1 = summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        let id2 = summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        let outcome = summary.match_event_with_stats(&fig2_event(&schema));
        assert_eq!(outcome.matched, vec![id1]);
        assert!(!outcome.matched.contains(&id2));
        // S1 and S2 were both candidates (both satisfied some attribute).
        assert_eq!(outcome.stats.candidates, 2);
    }

    #[test]
    fn counter_semantics_match_paper() {
        // From the worked example: S1's counter reaches 3 (exchange,
        // symbol, price); S2's reaches 2 (symbol, volume).
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        let e = fig2_event(&schema);
        // Check indirectly through per-attribute queries.
        let symbol = schema.attr_id("symbol").unwrap();
        let ids = summary.string_summary(symbol).unwrap().query("OTE");
        assert_eq!(ids.len(), 2);
        let price = schema.attr_id("price").unwrap();
        let ids = summary
            .arith_summary(price)
            .unwrap()
            .query(subsum_types::Num::new(8.40).unwrap());
        assert_eq!(ids.len(), 1);
        let volume = schema.attr_id("volume").unwrap();
        let ids = summary
            .arith_summary(volume)
            .unwrap()
            .query(subsum_types::Num::from(132700i64));
        assert_eq!(ids.len(), 1);
        // End-to-end result is just S1.
        assert_eq!(summary.match_event(&e).len(), 1);
    }

    #[test]
    fn no_match_when_attribute_missing_from_event() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        // Event without `exchange`: counter 2 < 3 attributes.
        let e = Event::builder(&schema)
            .str("symbol", "OTE")
            .unwrap()
            .num("price", 8.40)
            .unwrap()
            .build();
        assert!(summary.match_event(&e).is_empty());
    }

    #[test]
    fn multiple_constraints_same_attribute_count_once() {
        let schema = schema();
        let sub = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Prefix, "OT")
            .unwrap()
            .str_op("symbol", StrOp::Suffix, "E")
            .unwrap()
            .build()
            .unwrap();
        let mut summary = BrokerSummary::new(schema.clone());
        let id = summary.insert(BrokerId(0), LocalSubId(1), &sub);
        assert_eq!(id.mask.count(), 1);
        let e = Event::builder(&schema)
            .str("symbol", "OTE")
            .unwrap()
            .build();
        // Both constraints satisfied; the id must be reported exactly once.
        assert_eq!(summary.match_event(&e), vec![id]);
        // Union semantics (over-approximation): satisfying only one
        // pattern still reports the candidate...
        let e2 = Event::builder(&schema)
            .str("symbol", "OTX")
            .unwrap()
            .build();
        assert_eq!(summary.match_event(&e2), vec![id]);
        // ...and exact verification rejects it.
        assert!(!sub.matches(&e2));
    }

    #[test]
    fn remove_subscription() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        let id1 = summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        let id2 = summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        assert_eq!(summary.subscription_count(), 2);
        summary.remove(id1);
        assert_eq!(summary.subscription_ids(), vec![id2]);
        let e = fig2_event(&schema);
        assert!(summary.match_event(&e).is_empty());
        summary.remove(id2);
        assert!(summary.is_empty());
    }

    #[test]
    fn rebuild_equals_fresh_insertions() {
        let schema = schema();
        let s1 = sub1(&schema);
        let s2 = sub2(&schema);
        let mut summary = BrokerSummary::new(schema.clone());
        let id1 = summary.insert(BrokerId(1), LocalSubId(1), &s1);
        let id2 = summary.insert(BrokerId(1), LocalSubId(2), &s2);
        let rebuilt = BrokerSummary::rebuild(schema.clone(), [(id1, &s1), (id2, &s2)]);
        assert_eq!(summary, rebuilt);
    }

    #[test]
    fn merge_multi_broker() {
        let schema = schema();
        let mut a = BrokerSummary::new(schema.clone());
        let id1 = a.insert(BrokerId(1), LocalSubId(1), &sub1(&schema));
        let mut b = BrokerSummary::new(schema.clone());
        let id2 = b.insert(BrokerId(2), LocalSubId(1), &sub2(&schema));
        a.merge(&b);
        assert_eq!(a.subscription_ids(), {
            let mut v = vec![id1, id2];
            v.sort();
            v
        });
        let e = fig2_event(&schema);
        assert_eq!(a.match_event(&e), vec![id1]);
    }

    #[test]
    #[should_panic(expected = "different schemata")]
    fn merge_incompatible_schema_panics() {
        let a = BrokerSummary::new(schema());
        let other_schema = Schema::builder()
            .attr("x", subsum_types::AttrKind::Float)
            .unwrap()
            .build();
        let mut b = BrokerSummary::new(other_schema);
        b.merge(&a);
    }

    #[test]
    fn ne_constraint_over_approximates() {
        let schema = schema();
        let sub = Subscription::builder(&schema)
            .str_op("symbol", StrOp::Ne, "IBM")
            .unwrap()
            .build()
            .unwrap();
        let mut summary = BrokerSummary::new(schema.clone());
        let id = summary.insert(BrokerId(0), LocalSubId(1), &sub);
        let matching = Event::builder(&schema)
            .str("symbol", "OTE")
            .unwrap()
            .build();
        let excluded = Event::builder(&schema)
            .str("symbol", "IBM")
            .unwrap()
            .build();
        // Summary reports both (universal pattern)...
        assert_eq!(summary.match_event(&matching), vec![id]);
        assert_eq!(summary.match_event(&excluded), vec![id]);
        // ...exact matching separates them (tier-2 verification).
        assert!(sub.matches(&matching));
        assert!(!sub.matches(&excluded));
    }

    #[test]
    fn display_renders_paper_style_tables() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        let rendered = format!("{summary}");
        assert!(rendered.contains("AACS for attribute price"));
        assert!(rendered.contains("SACS for attribute symbol"));
        assert!(rendered.contains("(8.3, 8.7)"));
        assert!(rendered.contains("= 8.2"));
        assert!(rendered.contains("OT*"));
        assert!(rendered.contains("B0/s1"));
        let empty = BrokerSummary::new(schema);
        assert_eq!(format!("{empty}"), "(empty summary)\n");
    }

    #[test]
    fn match_is_superset_of_exact_never_misses() {
        let schema = schema();
        let subs = [sub1(&schema), sub2(&schema)];
        let mut summary = BrokerSummary::new(schema.clone());
        let ids: Vec<_> = subs
            .iter()
            .enumerate()
            .map(|(i, s)| summary.insert(BrokerId(0), LocalSubId(i as u32), s))
            .collect();
        let events = [
            fig2_event(&schema),
            Event::builder(&schema)
                .str("symbol", "OTE")
                .unwrap()
                .num("price", 8.20)
                .unwrap()
                .int("volume", 140000)
                .unwrap()
                .num("low", 8.00)
                .unwrap()
                .build(),
        ];
        for e in &events {
            let matched = summary.match_event(e);
            for (sub, id) in subs.iter().zip(&ids) {
                if sub.matches(e) {
                    assert!(matched.contains(id), "false negative for {id}");
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_reproduces_one_shot_outcome() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        let e = fig2_event(&schema);
        let one_shot = summary.match_event_with_stats(&e);
        let mut scratch = MatchScratch::new();
        for _ in 0..3 {
            let got = summary.match_event_into(&e, &mut scratch);
            assert_eq!(got, &one_shot);
        }
        assert_eq!(scratch.outcome(), &one_shot);
    }

    #[test]
    fn scan_reference_agrees_with_indexed_matcher() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        for e in [
            fig2_event(&schema),
            Event::builder(&schema)
                .str("symbol", "OTX")
                .unwrap()
                .build(),
            Event::builder(&schema).build(),
        ] {
            assert_eq!(
                summary.match_event(&e),
                summary.match_event_scan(&e).matched
            );
        }
    }

    #[test]
    fn known_ids_track_subscription_ids() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        let id1 = summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        let id2 = summary.insert(BrokerId(0), LocalSubId(2), &sub2(&schema));
        assert_eq!(summary.subscription_count(), 2);
        assert_eq!(summary.subscription_ids(), summary.known);
        // Unsatisfiable arithmetic conjunctions leave no trace and are
        // not counted.
        let unsat = Subscription::builder(&schema)
            .num("price", NumOp::Lt, 1.0)
            .unwrap()
            .num("price", NumOp::Gt, 2.0)
            .unwrap()
            .build()
            .unwrap();
        summary.insert(BrokerId(0), LocalSubId(3), &unsat);
        assert_eq!(summary.subscription_count(), 2);
        assert_eq!(summary.subscription_ids(), summary.known);
        summary.remove(id1);
        assert_eq!(summary.subscription_count(), 1);
        assert_eq!(summary.subscription_ids(), vec![id2]);
        assert_eq!(summary.subscription_ids(), summary.known);
    }

    #[test]
    fn validate_accepts_every_mutation_path() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.validate();
        let id1 = summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        summary.validate();
        let mut other = BrokerSummary::new(schema.clone());
        other.insert(BrokerId(1), LocalSubId(2), &sub2(&schema));
        summary.merge(&other);
        summary.validate();
        summary.remove(id1);
        summary.validate();
    }

    #[test]
    #[should_panic(expected = "known-id cache out of sync")]
    fn validate_rejects_stale_known_cache() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        summary.insert(BrokerId(0), LocalSubId(1), &sub1(&schema));
        // Corrupt the counter cache behind the API's back.
        summary.known.push(SubscriptionId::new(
            BrokerId(9),
            LocalSubId(9),
            subsum_types::AttrMask::empty(),
        ));
        summary.validate();
    }

    #[test]
    fn honest_stats_report_probes_and_pruning() {
        let schema = schema();
        let mut summary = BrokerSummary::new(schema.clone());
        // Disjoint prefix rows: a query should prune all but its own
        // anchor bucket.
        for (k, sym) in ["AA*", "BB*", "CC*", "DD*"].iter().enumerate() {
            let sub = Subscription::builder(&schema)
                .str_pattern("symbol", sym)
                .unwrap()
                .build()
                .unwrap();
            summary.insert(BrokerId(0), LocalSubId(k as u32), &sub);
        }
        let e = Event::builder(&schema)
            .str("symbol", "AAPL")
            .unwrap()
            .build();
        let outcome = summary.match_event_with_stats(&e);
        assert_eq!(outcome.matched.len(), 1);
        // Only the AA* row is probed; the other three are pruned.
        assert_eq!(outcome.stats.rows_scanned, 1);
        assert_eq!(outcome.stats.rows_pruned, 3);
    }
}
